//! Workspace-level integration tests: the whole pipeline on multi-routine
//! programs, cross-checking the analyzer against actual interpretation.

use panorama::{analyze_source, Options};

#[test]
fn multi_routine_program_full_pipeline() {
    let src = "
      PROGRAM main
      REAL grid(500), tmp(50), out(100)
      INTEGER it, k, niter, m
      niter = 100
      m = 40
      DO k = 1, 500
        grid(k) = float(k) * 0.01
      ENDDO
      DO it = 1, niter
        call relax(tmp, grid, m, it)
        call reduce(out, tmp, m, it)
      ENDDO
      END

      SUBROUTINE relax(t, g, m, it)
      REAL t(*), g(*)
      INTEGER m, it, k
      DO k = 1, m
        t(k) = g(k) + g(k + 1) + float(it)
      ENDDO
      END

      SUBROUTINE reduce(o, t, m, it)
      REAL o(*), t(*)
      REAL s
      INTEGER m, it, k
      s = 0.0
      DO k = 1, m
        s = s + t(k)
      ENDDO
      o(it) = s
      END
";
    let a = analyze_source(src, Options::default()).unwrap();
    // the it loop: tmp is a privatizable work array.
    let v = a.verdict("main", "it").unwrap();
    assert!(v.parallel_after_privatization, "{:?}", v.blockers);
    assert!(v.privatized.contains(&"tmp".to_string()));
    // grid is read-only inside the loop: no deps.
    let grid = v.arrays.iter().find(|x| x.array == "grid").unwrap();
    assert!(!grid.flow_dep && !grid.output_dep && !grid.anti_dep);
    // the initialization loop is parallel as-is.
    let init = a.verdict("main", "k").unwrap();
    assert!(init.parallel_as_is);
}

#[test]
fn verdicts_agree_with_execution_semantics() {
    // If the analyzer says the loop is parallel after privatization, then
    // running it with the derived plan must give bit-identical results.
    let src = "
      PROGRAM t
      REAL w(20), acc(200)
      INTEGER i, k, n
      n = 200
      DO i = 1, n
        DO k = 1, 20
          w(k) = float(i) / float(k)
        ENDDO
        acc(i) = w(1) + w(20) * 2.0
      ENDDO
      END
";
    let a = analyze_source(src, Options::default()).unwrap();
    let v = a.verdict("t", "i").unwrap();
    assert!(v.parallel_after_privatization);

    let sema = fortran::analyze(&a.program).unwrap();
    let m = interp::Machine::new(&a.program, &sema);
    let (seq, _) = m.run().unwrap();

    let mut plan = interp::ParallelPlan::new();
    plan.add(
        "t",
        "i",
        v.line,
        interp::LoopPlan {
            firstprivate: v.privatized.clone(),
            private_scalars: v.private_scalars.clone(),
            scalar_copy_out: v.private_scalars.clone(),
            sum_reductions: v.reductions.clone(),
            ..Default::default()
        },
    );
    let (par, _) = m.run_parallel(&plan, 3).unwrap();
    // acc (handle 1: w is declared first) must agree.
    assert_eq!(seq.arrays[1].data, par.arrays[1].data);
}

#[test]
fn nested_loop_verdicts_both_levels() {
    let src = "
      PROGRAM t
      REAL a(100, 100)
      INTEGER i, j
      DO i = 1, 100
        DO j = 1, 100
          a(j, i) = float(i + j)
        ENDDO
      ENDDO
      END
";
    let a = analyze_source(src, Options::default()).unwrap();
    let outer = a.verdict("t", "i").unwrap();
    let inner = a.verdict("t", "j").unwrap();
    // The outer loop must privatize the inner index j (a written scalar),
    // but needs nothing else; the inner loop is parallel outright.
    assert!(outer.parallel_after_privatization, "{outer:?}");
    assert!(outer.privatized.is_empty(), "{outer:?}");
    assert_eq!(outer.private_scalars, vec!["j".to_string()]);
    assert!(inner.parallel_as_is, "{inner:?}");
}

#[test]
fn trace_reproduces_fig5_structure() {
    // The Fig 1(b)/Fig 5 kernel traced: the trace must show the guarded
    // A(jmax) UE piece and the (jlow:jup) mod piece.
    let src = "
      PROGRAM fig1b
      REAL a(600)
      REAL q
      LOGICAL p
      INTEGER i, j, jlow, jup, jmax
      DO i = 1, 4
        DO j = jlow, jup
          a(j) = float(i + j)
        ENDDO
        IF (.NOT. p) THEN
          a(jmax) = float(i)
        ENDIF
        DO j = jlow, jup
          q = a(j) + a(jmax)
        ENDDO
      ENDDO
      END
";
    let a = analyze_source(
        src,
        Options {
            trace: true,
            ..Options::default()
        },
    )
    .unwrap();
    let text = a.trace.join("\n");
    assert!(text.contains("ue_in[a]"), "trace missing UE lines:\n{text}");
    assert!(text.contains("mod_in[a]"));
    assert!(text.contains("jmax"));
    assert!(text.contains("jlow"));
}

#[test]
fn goto_heavy_program_survives() {
    let src = "
      PROGRAM spaghetti
      REAL a(50)
      INTEGER i, k
      k = 1
5     IF (k .GT. 50) goto 99
      a(k) = float(k)
      k = k + 1
      goto 5
99    CONTINUE
      DO i = 1, 50
        a(i) = a(i) + 1.0
      ENDDO
      END
";
    let a = analyze_source(src, Options::default()).unwrap();
    // the backward-goto cycle condenses; the DO loop still analyzes —
    // conservatively serial or parallel, but the pipeline must not fail.
    assert_eq!(a.verdicts.len(), 1);
    // the DO loop itself has a(i) = a(i) + 1: per-element, no carried dep.
    let v = a.verdict("spaghetti", "i").unwrap();
    assert!(v.parallel_as_is, "{v:?}");
}

#[test]
fn two_dim_regions_flow_through() {
    let src = "
      PROGRAM t
      REAL u(64, 64), w(64, 64)
      INTEGER i, j, it
      DO it = 1, 10
        DO j = 1, 64
          DO i = 1, 64
            w(i, j) = float(i + j + it)
          ENDDO
        ENDDO
        DO j = 1, 64
          DO i = 1, 64
            u(i, j) = w(i, j) * 0.5
          ENDDO
        ENDDO
      ENDDO
      END
";
    let a = analyze_source(src, Options::default()).unwrap();
    let v = a.verdict("t", "it").unwrap();
    let w = v.arrays.iter().find(|x| x.array == "w").unwrap();
    assert!(w.privatizable, "2-D work array must privatize: {v:?}");
    assert!(v.parallel_after_privatization);
}
