//! Golden lint output over the benchsuite: the exact diagnostics for
//! every kernel are checked in at `tests/golden/benchsuite_lints.txt`
//! and must never change silently. CI re-derives the same bytes through
//! the `panorama --lint --json` CLI (see the `lint-golden` job).
//!
//! Regenerate after an intentional change with
//! `UPDATE_GOLDEN=1 cargo test -p panorama --test lint_golden`.

use panorama::{analyze_source, Options};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/benchsuite_lints.txt"
);

/// Renders one kernel's section, using the same `Display` the CLI's
/// `--lint` mode prints and the field layout `--json` exposes.
fn section(program: &str, label: &str, source: &str, opts: Options) -> String {
    let analysis = analyze_source(source, opts).unwrap();
    let mut out = format!("== {program} {label} ==\n");
    if analysis.lints.is_empty() {
        out.push_str("(none)\n");
    }
    for l in &analysis.lints {
        out.push_str(&format!("{l}\n"));
    }
    out
}

fn render() -> String {
    // Each kernel twice: the full analysis (alias-clean corpus — the
    // interesting fact is which codes do NOT fire) and the
    // `--no-interprocedural` ablation, where every CALL must carry its
    // P006 conservative-clobber witness.
    let mut out = String::new();
    for k in benchsuite::kernels() {
        out.push_str(&section(
            k.program,
            k.loop_label,
            k.source,
            Options::default(),
        ));
        out.push_str(&section(
            k.program,
            &format!("{} --no-interprocedural", k.loop_label),
            k.source,
            Options {
                interprocedural: false,
                ..Options::default()
            },
        ));
    }
    out
}

#[test]
fn benchsuite_lints_match_the_golden_file() {
    let got = render();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .unwrap_or_else(|e| panic!("missing golden file {GOLDEN}: {e}"));
    assert_eq!(
        got, want,
        "lint output drifted from tests/golden/benchsuite_lints.txt; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn golden_rendering_is_independent_of_noise_options() {
    // The lints derive from the AST and the technique toggles alone:
    // tracing, fuel accounting and the oracle must not perturb them.
    for k in benchsuite::kernels() {
        let base = section(k.program, k.loop_label, k.source, Options::default());
        let traced = section(
            k.program,
            k.loop_label,
            k.source,
            Options {
                trace: true,
                ..Options::default()
            },
        );
        assert_eq!(base, traced, "{}: trace changed lints", k.loop_label);
    }
}
