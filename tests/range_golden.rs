//! Golden range-lint output (P007 infeasible-guard, P008
//! subscript-out-of-declared-bounds, P009 loop-never-executes) over
//! the benchsuite, the range-flip kernels and the range-lint demo:
//! checked in at `tests/golden/range_lints.txt`, re-derived through
//! the `panorama --lint --json` CLI by the CI `range-golden` job.
//!
//! Regenerate after an intentional change with
//! `UPDATE_GOLDEN=1 cargo test -p panorama --test range_golden`.

use panorama::{analyze_source, LintCode, Options};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/range_lints.txt"
);

const RANGE_CODES: [LintCode; 3] = [
    LintCode::InfeasibleGuard,
    LintCode::SubscriptOutOfDeclaredBounds,
    LintCode::LoopNeverExecutes,
];

/// All (program, label, source) sections the golden covers.
fn corpus() -> Vec<(String, String, String)> {
    let mut out: Vec<(String, String, String)> = benchsuite::kernels()
        .iter()
        .map(|k| {
            (
                k.program.to_string(),
                k.loop_label.to_string(),
                k.source.to_string(),
            )
        })
        .collect();
    for k in benchsuite::range_kernels() {
        out.push(("range".to_string(), k.tag.to_string(), k.source.to_string()));
    }
    out.push((
        "range".to_string(),
        "rdemo".to_string(),
        benchsuite::range_lint_demo().to_string(),
    ));
    out
}

fn section(program: &str, label: &str, source: &str, opts: Options) -> String {
    let analysis = analyze_source(source, opts).unwrap();
    let range_lints: Vec<_> = analysis
        .lints
        .iter()
        .filter(|l| RANGE_CODES.contains(&l.code))
        .collect();
    let mut out = format!("== {program} {label} ==\n");
    if range_lints.is_empty() {
        out.push_str("(none)\n");
    }
    for l in range_lints {
        out.push_str(&format!("{l}\n"));
    }
    out
}

fn render() -> String {
    let mut out = String::new();
    for (program, label, source) in corpus() {
        out.push_str(&section(&program, &label, &source, Options::default()));
    }
    out
}

#[test]
fn range_lints_match_the_golden_file() {
    let got = render();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .unwrap_or_else(|e| panic!("missing golden file {GOLDEN}: {e}"));
    assert_eq!(
        got, want,
        "range lint output drifted from tests/golden/range_lints.txt; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn demo_kernel_fires_every_range_code() {
    // The golden must stay meaningful: the demo section pins all three
    // codes, in source-line order.
    let analysis = analyze_source(benchsuite::range_lint_demo(), Options::default()).unwrap();
    let codes: Vec<LintCode> = analysis
        .lints
        .iter()
        .filter(|l| RANGE_CODES.contains(&l.code))
        .map(|l| l.code)
        .collect();
    assert_eq!(
        codes,
        vec![
            LintCode::SubscriptOutOfDeclaredBounds,
            LintCode::InfeasibleGuard,
            LintCode::LoopNeverExecutes,
        ]
    );
}

#[test]
fn no_range_lints_without_the_pass() {
    // `--no-value-range` must silence exactly P007–P009 and nothing
    // else, for the whole corpus.
    for (program, label, source) in corpus() {
        let off = Options {
            value_range: false,
            ..Options::default()
        };
        let analysis = analyze_source(&source, off).unwrap();
        assert!(
            analysis
                .lints
                .iter()
                .all(|l| !RANGE_CODES.contains(&l.code)),
            "{program} {label}: range lint fired with value_range off"
        );
        let on = analyze_source(&source, Options::default()).unwrap();
        let non_range = |lints: &[panorama::Lint]| {
            lints
                .iter()
                .filter(|l| !RANGE_CODES.contains(&l.code))
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(
            non_range(&analysis.lints),
            non_range(&on.lints),
            "{program} {label}: value_range toggled a non-range lint"
        );
    }
}
