//! Cross-validation of the persistent summary cache (`dataflow::panostore`):
//! for every benchsuite kernel, the Fig. 1 kernels, the synthetic
//! scaling program and a fuzz-generator sweep, a **fresh-instance**
//! run warmed only from disk must emit a report byte-identical to a
//! cold uncached run. A disk tier that changed any verdict, region,
//! guard or lint — however slightly — fails here.
//!
//! The replay contract is strict byte identity of the serialized JSON
//! report, not structural equality: the wire codec must reconstruct
//! every summary exactly (`Disj::from_canonical_atoms` and friends
//! bypass re-normalization precisely so this holds).

use panorama::{driver, DiskCache, MemoryCache, Options, SummaryCache, TieredCache};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[path = "generator.rs"]
mod generator;
use generator::Gen;

/// A private scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "panorama-diskreplay-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn tiered(dir: &std::path::Path) -> Arc<dyn SummaryCache> {
    Arc::new(TieredCache::new(
        MemoryCache::new(),
        Arc::new(DiskCache::open(dir, None)),
    ))
}

/// Renders the canonical report JSON for `src` under `cache`.
fn report(src: &str, cache: Option<Arc<dyn SummaryCache>>) -> String {
    let req = driver::Request {
        source: src,
        opts: Options::default(),
        oracle: false,
        limits: panorama::FuelLimits::unlimited(),
        trace_spans: false,
        emit: false,
        precision: false,
    };
    let out = driver::run_with_cache(&req, cache).expect("analysis");
    serde_json::to_string(&out.json()).expect("serialize report")
}

/// Cold (uncached), cold-cached (populating `dir`), then warm from a
/// fresh tier over the same directory — all three byte-identical.
fn assert_replay(tag: &str, src: &str, dir: &std::path::Path) {
    let cold = report(src, None);
    let populate = report(src, Some(tiered(dir)));
    assert_eq!(cold, populate, "{tag}: cold cached run diverged");
    // Fresh instance: empty memory tier, summaries only on disk.
    let warm_cache = tiered(dir);
    let warm = report(src, Some(warm_cache.clone()));
    assert_eq!(cold, warm, "{tag}: warm-from-disk replay diverged");
    let snap = warm_cache.disk().expect("disk tier snapshot");
    assert!(snap.disabled.is_none(), "{tag}: tier disabled: {snap:?}");
    assert_eq!(snap.quarantined, 0, "{tag}: quarantined records: {snap:?}");
}

#[test]
fn benchsuite_kernels_replay_byte_identically_from_disk() {
    let scratch = Scratch::new("bench");
    let mut disk_was_hit = false;
    for k in benchsuite::kernels() {
        let dir = scratch.path().join(k.loop_label.replace('/', "_"));
        assert_replay(k.loop_label, k.source, &dir);
        let probe = tiered(&dir);
        let _ = report(k.source, Some(probe.clone()));
        disk_was_hit |= probe.disk().expect("tier").disk_hits > 0;
    }
    assert!(disk_was_hit, "no benchsuite kernel ever hit the disk tier");
}

#[test]
fn fig1_kernels_replay_byte_identically_from_disk() {
    let scratch = Scratch::new("fig1");
    for (label, _routine, _var, _arr, src) in benchsuite::fig1_kernels() {
        assert_replay(label, src, &scratch.path().join(label.replace('/', "_")));
    }
}

#[test]
fn synthetic_program_replays_byte_identically_from_disk() {
    let scratch = Scratch::new("synthetic");
    assert_replay(
        "synthetic",
        &benchsuite::synthetic_program(6, 48),
        scratch.path(),
    );
}

#[test]
fn fuzz_corpus_replays_byte_identically_from_disk() {
    // Seed range disjoint from fuzz_soundness.rs and
    // differential_oracle.rs, so the three suites jointly cover more of
    // the generator's space. All seeds share one directory: the store
    // must replay each program correctly out of a pool of everyone
    // else's segments (content-addressed keys make this safe).
    let scratch = Scratch::new("fuzz");
    for seed in 20_000..20_100u64 {
        let src = Gen::new(seed).program();
        assert_replay(&format!("seed {seed}"), &src, scratch.path());
    }
}

/// Race-oracle spot check: a warm-from-disk analysis must stay sound
/// under dynamic cross-validation exactly like a cold one.
#[test]
fn warm_replay_stays_sound_under_race_oracle() {
    let scratch = Scratch::new("oracle");
    let sources: Vec<(String, String)> = benchsuite::kernels()
        .iter()
        .take(4)
        .map(|k| (k.loop_label.to_string(), k.source.to_string()))
        .chain(std::iter::once((
            "seed 20_500".to_string(),
            Gen::new(20_500).program(),
        )))
        .collect();
    for (tag, src) in &sources {
        let dir = scratch.path().join(tag.replace(['/', ' '], "_"));
        // Populate the disk tier cold.
        let _ = report(src, Some(tiered(&dir)));
        // Warm fresh-instance run with the oracle on.
        let req = driver::Request {
            source: src,
            opts: Options::default(),
            oracle: true,
            limits: panorama::FuelLimits::unlimited(),
            trace_spans: false,
            emit: false,
            precision: false,
        };
        let out = driver::run_with_cache(&req, Some(tiered(&dir))).expect("analysis");
        let oracle = out.oracle.as_ref().expect("oracle report");
        assert!(
            oracle.sound(),
            "{tag}: warm replay produced a soundness violation"
        );
    }
}
