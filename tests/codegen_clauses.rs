//! Clause selection is load-bearing: for each data-sharing clause there
//! is a paired kernel where the *wrong* clause changes program output.
//! The differential harness catches the wrong plan and accepts panogen's.

use interp::{LoopPlan, Machine, ParallelPlan};
use panorama::{driver, Options};

struct Run {
    out: driver::Outcome,
}

impl Run {
    fn new(src: &str) -> Run {
        let req = driver::Request {
            opts: Options::full(),
            emit: true,
            ..driver::Request::new(src)
        };
        Run {
            out: driver::run(&req).unwrap(),
        }
    }

    fn machine(&self) -> Machine<'_> {
        Machine::new(&self.out.analysis.program, &self.out.analysis.sema)
    }

    fn transform(&self) -> &codegen::Transform {
        self.out.transform.as_ref().unwrap()
    }
}

/// FIRSTPRIVATE pair: the loop reads array cells it never writes, so a
/// zero-initialized PRIVATE copy computes different values.
const NEEDS_FIRSTPRIVATE: &str = "
      PROGRAM ka
      REAL w(20), a(10)
      INTEGER i, k
      DO k = 1, 20
        w(k) = float(k)
      ENDDO
      DO i = 1, 10
        DO k = 1, 10
          w(k) = w(k + 10) + float(i)
        ENDDO
        a(i) = w(1) + w(10)
      ENDDO
      END
";

#[test]
fn firstprivate_wrong_clause_diverges_selected_clause_matches() {
    let r = Run::new(NEEDS_FIRSTPRIVATE);
    let t = r.transform();
    let lt = t.loop_transform("ka", "i").expect("i loop transformed");
    assert!(
        lt.clauses.firstprivate.contains(&"w".to_string()),
        "{:?}",
        lt.clauses
    );
    assert!(lt.planned, "{:?}", lt.plan_note);

    let m = r.machine();
    let (seq, _) = m.run().unwrap();

    // panogen's plan (FIRSTPRIVATE w): byte-identical to serial.
    let (par, _) = m.run_parallel(&t.plan, 4).unwrap();
    assert_eq!(seq.arrays[1].data, par.arrays[1].data, "a diverged");

    // The deliberately wrong clause (PRIVATE w, zero-initialized):
    // the upward-exposed reads of w(11..20) see zeros and a differs.
    let mut wrong = ParallelPlan::new();
    wrong.add(
        "ka",
        "i",
        lt.line,
        LoopPlan {
            private_arrays: vec!["w".to_string()],
            private_scalars: vec!["k".to_string()],
            ..Default::default()
        },
    );
    let (bad, _) = m.run_parallel(&wrong, 4).unwrap();
    assert_ne!(
        seq.arrays[1].data, bad.arrays[1].data,
        "PRIVATE instead of FIRSTPRIVATE went unnoticed — kernel no longer discriminates"
    );
}

/// Scalar LASTPRIVATE pair: `m` is read after the loop; without scalar
/// copy-out the main frame keeps the pre-loop value.
const NEEDS_LASTPRIVATE_SCALAR: &str = "
      PROGRAM kb
      REAL a(10), r(2)
      INTEGER i, m
      DO i = 1, 10
        m = i * 2
        a(i) = float(m)
      ENDDO
      r(1) = float(m)
      END
";

#[test]
fn scalar_lastprivate_wrong_clause_diverges_selected_clause_matches() {
    let r = Run::new(NEEDS_LASTPRIVATE_SCALAR);
    let t = r.transform();
    let lt = t.loop_transform("kb", "i").expect("i loop transformed");
    assert!(
        lt.clauses.lastprivate.contains(&"m".to_string()),
        "{:?}",
        lt.clauses
    );
    assert!(lt.planned, "{:?}", lt.plan_note);

    let m = r.machine();
    let (seq, _) = m.run().unwrap();
    let (par, _) = m.run_parallel(&t.plan, 4).unwrap();
    assert_eq!(seq.arrays[1].data, par.arrays[1].data, "r diverged");

    // Wrong clause: m PRIVATE with no copy-out — r(1) sees the pre-loop
    // value instead of the sequentially-last one.
    let mut wrong = ParallelPlan::new();
    wrong.add(
        "kb",
        "i",
        lt.line,
        LoopPlan {
            private_scalars: vec!["m".to_string()],
            ..Default::default()
        },
    );
    let (bad, _) = m.run_parallel(&wrong, 4).unwrap();
    assert_ne!(
        seq.arrays[1].data, bad.arrays[1].data,
        "missing scalar LASTPRIVATE went unnoticed — kernel no longer discriminates"
    );
}

/// Array LASTPRIVATE pair: the privatized work array is read after the
/// loop; without copy-out the shared array keeps its initial zeros.
const NEEDS_LASTPRIVATE_ARRAY: &str = "
      PROGRAM kc
      REAL w(10), a(10), r(2)
      INTEGER i, k
      DO i = 1, 10
        DO k = 1, 10
          w(k) = float(i + k)
        ENDDO
        a(i) = w(1)
      ENDDO
      r(1) = w(5)
      END
";

#[test]
fn array_lastprivate_wrong_clause_diverges_selected_clause_matches() {
    let r = Run::new(NEEDS_LASTPRIVATE_ARRAY);
    let t = r.transform();
    let lt = t.loop_transform("kc", "i").expect("i loop transformed");
    assert!(
        lt.clauses.lastprivate.contains(&"w".to_string()),
        "{:?}",
        lt.clauses
    );
    assert!(lt.planned, "{:?}", lt.plan_note);

    let m = r.machine();
    let (seq, _) = m.run().unwrap();
    let (par, _) = m.run_parallel(&t.plan, 4).unwrap();
    assert_eq!(seq.arrays[2].data, par.arrays[2].data, "r diverged");

    // Wrong clause: w PRIVATE with no copy-out — the post-loop read of
    // w(5) sees the untouched shared array.
    let mut wrong = ParallelPlan::new();
    wrong.add(
        "kc",
        "i",
        lt.line,
        LoopPlan {
            private_arrays: vec!["w".to_string()],
            private_scalars: vec!["k".to_string()],
            ..Default::default()
        },
    );
    let (bad, _) = m.run_parallel(&wrong, 4).unwrap();
    assert_ne!(
        seq.arrays[2].data, bad.arrays[2].data,
        "missing array LASTPRIVATE went unnoticed — kernel no longer discriminates"
    );
}
