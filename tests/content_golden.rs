//! Golden content-lint output (P010 read-before-write, P011
//! redundant-store, P012 dead-initialization-loop) over the benchsuite,
//! the content-flip kernels and the content-lint demo, analyzed with
//! the content pass ON: checked in at `tests/golden/content_lints.txt`,
//! re-derived through the `panorama --content --lint --json` CLI by the
//! CI `content-golden` job.
//!
//! Regenerate after an intentional change with
//! `UPDATE_GOLDEN=1 cargo test -p panorama --test content_golden`.

use panorama::{analyze_source, LintCode, Options};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/content_lints.txt"
);

const CONTENT_CODES: [LintCode; 3] = [
    LintCode::ReadBeforeWrite,
    LintCode::RedundantStore,
    LintCode::DeadInitializationLoop,
];

fn content_opts() -> Options {
    Options {
        content: true,
        ..Options::default()
    }
}

/// All (program, label, source) sections the golden covers.
fn corpus() -> Vec<(String, String, String)> {
    let mut out: Vec<(String, String, String)> = benchsuite::kernels()
        .iter()
        .map(|k| {
            (
                k.program.to_string(),
                k.loop_label.to_string(),
                k.source.to_string(),
            )
        })
        .collect();
    for k in benchsuite::content_kernels() {
        out.push((
            "content".to_string(),
            k.tag.to_string(),
            k.source.to_string(),
        ));
    }
    out.push((
        "content".to_string(),
        "cdemo".to_string(),
        benchsuite::content_lint_demo().to_string(),
    ));
    out
}

fn section(program: &str, label: &str, source: &str, opts: Options) -> String {
    let analysis = analyze_source(source, opts).unwrap();
    let content_lints: Vec<_> = analysis
        .lints
        .iter()
        .filter(|l| CONTENT_CODES.contains(&l.code))
        .collect();
    let mut out = format!("== {program} {label} ==\n");
    if content_lints.is_empty() {
        out.push_str("(none)\n");
    }
    for l in content_lints {
        out.push_str(&format!("{l}\n"));
    }
    out
}

fn render() -> String {
    let mut out = String::new();
    for (program, label, source) in corpus() {
        out.push_str(&section(&program, &label, &source, content_opts()));
    }
    out
}

#[test]
fn content_lints_match_the_golden_file() {
    let got = render();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .unwrap_or_else(|e| panic!("missing golden file {GOLDEN}: {e}"));
    assert_eq!(
        got, want,
        "content lint output drifted from tests/golden/content_lints.txt; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn demo_kernel_fires_every_content_code() {
    // The golden must stay meaningful: the demo section pins all three
    // codes, in source-line order.
    let analysis = analyze_source(benchsuite::content_lint_demo(), content_opts()).unwrap();
    let codes: Vec<LintCode> = analysis
        .lints
        .iter()
        .filter(|l| CONTENT_CODES.contains(&l.code))
        .map(|l| l.code)
        .collect();
    assert_eq!(
        codes,
        vec![
            LintCode::RedundantStore,
            LintCode::DeadInitializationLoop,
            LintCode::ReadBeforeWrite,
        ]
    );
}

#[test]
fn no_content_lints_without_the_pass() {
    // The default (content off) must produce exactly zero P010–P012 and
    // leave every other lint untouched, for the whole corpus.
    for (program, label, source) in corpus() {
        let off = analyze_source(&source, Options::default()).unwrap();
        assert!(
            off.lints.iter().all(|l| !CONTENT_CODES.contains(&l.code)),
            "{program} {label}: content lint fired with the pass off"
        );
        let on = analyze_source(&source, content_opts()).unwrap();
        let non_content = |lints: &[panorama::Lint]| {
            lints
                .iter()
                .filter(|l| !CONTENT_CODES.contains(&l.code))
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(
            non_content(&off.lints),
            non_content(&on.lints),
            "{program} {label}: content toggled a non-content lint"
        );
    }
}
