//! End-to-end validation of the panogen emission backend: for every
//! benchsuite kernel and a fuzz corpus of generated programs,
//!
//! * the emitted OpenMP-annotated source must reparse to the original
//!   AST (directives are comments, nothing else moved);
//! * executing the lowered [`interp::ParallelPlan`] across threads must
//!   produce memory bitwise equal to sequential execution (modulo
//!   PRIVATE arrays without copy-out, whose post-loop values are
//!   unspecified by the clause semantics);
//! * the dynamic race oracle must never contradict a verdict the
//!   backend planned from.

use fortran::RoutineKind;
use interp::Machine;
use panorama::{driver, FuelLimits, Options};
use std::collections::BTreeSet;

#[path = "generator.rs"]
mod generator;
use generator::Gen;

/// Runs one program through analysis + emission + the execution
/// differential. `oracle` additionally cross-checks with the dynamic
/// race oracle (skipped for bulk fuzz corpora to bound runtime).
fn differential(label: &str, src: &str, opts: Options, oracle: bool) {
    let req = driver::Request {
        source: src,
        opts,
        oracle,
        limits: FuelLimits::unlimited(),
        trace_spans: false,
        emit: true,
        precision: false,
    };
    let out = driver::run(&req).unwrap_or_else(|e| panic!("{label}: analysis failed: {e}"));
    assert!(
        !out.soundness_violation(),
        "{label}: oracle contradicted a static verdict"
    );
    let t = out.transform.as_ref().expect("emit was requested");

    // The annotated source is still the same program.
    let reparsed = fortran::parse_program(&t.source).unwrap_or_else(|e| {
        panic!(
            "{label}: emitted source does not reparse: {e}\n{}",
            t.source
        )
    });
    assert_eq!(
        fortran::strip_lines(&reparsed),
        fortran::strip_lines(&out.analysis.program),
        "{label}: emitted source changed the program"
    );

    if !t.loops.iter().any(|l| l.planned) {
        return; // nothing lowered, nothing to execute
    }

    let program = &out.analysis.program;
    let machine = Machine::new(program, &out.analysis.sema);
    let (seq, _) = machine
        .run()
        .unwrap_or_else(|e| panic!("{label}: sequential run failed: {e}"));

    let main = program
        .routines
        .iter()
        .find(|r| matches!(r.kind, RoutineKind::Program))
        .expect("main program unit");
    // Main-frame arrays privatized without copy-out (PRIVATE, or
    // FIRSTPRIVATE with no LASTPRIVATE) in a planned loop: the shared
    // array is unspecified after that loop in OpenMP semantics too, so
    // only everything else must match serial.
    let skip: BTreeSet<usize> = main
        .arrays
        .iter()
        .enumerate()
        .filter(|(_, (n, _))| {
            t.loops.iter().any(|l| {
                l.planned
                    && l.routine == main.name
                    && (l.clauses.private.contains(n) || l.clauses.firstprivate.contains(n))
                    && !l.clauses.lastprivate.contains(n)
            })
        })
        .map(|(h, _)| h)
        .collect();

    for threads in [2usize, 4] {
        let (par, _) = machine
            .run_parallel(&t.plan, threads)
            .unwrap_or_else(|e| panic!("{label}: parallel run ({threads} threads) failed: {e}"));
        for h in 0..main.arrays.len() {
            if skip.contains(&h) {
                continue;
            }
            assert_eq!(
                seq.arrays[h].data, par.arrays[h].data,
                "{label}: array {} (handle {h}) diverged with {threads} threads",
                main.arrays[h].0
            );
        }
    }
}

#[test]
fn benchsuite_kernels_transform_and_match_serial() {
    let mut planned_any = false;
    for k in benchsuite::kernels() {
        let label = format!("kernel {}", k.loop_label);
        differential(&label, k.source, Options::full(), true);
        // The target loop itself must at least be annotated.
        let req = driver::Request {
            opts: Options::full(),
            emit: true,
            ..driver::Request::new(k.source)
        };
        let out = driver::run(&req).unwrap();
        let t = out.transform.as_ref().unwrap();
        let lt = t
            .loop_transform(k.routine, k.var)
            .unwrap_or_else(|| panic!("{label}: target loop not transformed"));
        assert!(
            lt.directive.starts_with("!$OMP PARALLEL DO"),
            "{label}: {}",
            lt.directive
        );
        planned_any |= lt.planned;
    }
    assert!(
        planned_any,
        "no benchsuite target loop was lowered to a plan"
    );
}

#[test]
fn fig1_kernels_transform_and_match_serial() {
    for (tag, _, _, _, src) in benchsuite::fig1_kernels() {
        differential(&format!("fig1 {tag}"), src, Options::full(), true);
    }
}

#[test]
fn range_kernels_transform_and_match_serial() {
    for k in benchsuite::range_kernels() {
        differential(&format!("range {}", k.tag), k.source, Options::full(), true);
    }
}

#[test]
fn fuzz_250_programs_transform_and_match_serial() {
    let mut planned = 0usize;
    for seed in 20_000..20_250u64 {
        let src = Gen::new(seed).program();
        differential(
            &format!("fuzz seed {seed}"),
            &src,
            Options::default(),
            false,
        );
        let req = driver::Request {
            emit: true,
            ..driver::Request::new(&src)
        };
        let out = driver::run(&req).unwrap();
        if out
            .transform
            .as_ref()
            .unwrap()
            .loops
            .iter()
            .any(|l| l.planned)
        {
            planned += 1;
        }
    }
    // The corpus must actually exercise the executor, not just skip.
    assert!(
        planned > 50,
        "only {planned}/250 fuzz programs planned a loop"
    );
}

#[test]
fn oracle_cross_checks_planned_fuzz_sample() {
    // A slice of the fuzz corpus additionally runs the race oracle, so
    // planned loops are double-checked by a dynamic race detector on top
    // of the execution differential.
    for seed in (20_000..20_250u64).step_by(10) {
        let src = Gen::new(seed).program();
        differential(
            &format!("fuzz+oracle seed {seed}"),
            &src,
            Options::default(),
            true,
        );
    }
}
