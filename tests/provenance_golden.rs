//! Golden verdict provenance for the MDG `interf` kernel — the paper's
//! flagship loop, needing all three techniques. The exact decision
//! trace (`LoopVerdict::provenance`) is checked in at
//! `tests/golden/interf_provenance.txt` and must never change silently.
//! CI re-derives the same chain through the `panorama --json` CLI (see
//! the `trace-smoke` job).
//!
//! Regenerate after an intentional change with
//! `UPDATE_GOLDEN=1 cargo test -p panorama --test provenance_golden`.

use dataflow::{MemoryCache, SummaryCache};
use panorama::{analyze_source, analyze_source_with_cache, Analysis, Options};
use std::sync::Arc;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/interf_provenance.txt"
);

fn interf_source() -> &'static str {
    benchsuite::kernels()
        .iter()
        .find(|k| k.loop_label == "interf/1000")
        .expect("interf kernel in the benchsuite")
        .source
}

/// Renders every loop verdict's provenance chain, one `render()` line
/// per entry — the same lines `panorama --explain` prints.
fn render(analysis: &Analysis) -> String {
    let mut out = String::new();
    for v in &analysis.verdicts {
        out.push_str(&format!("== {} (line {}) ==\n", v.id, v.line));
        for e in &v.provenance {
            out.push_str(&format!("{}\n", e.render()));
        }
    }
    out
}

#[test]
fn interf_provenance_matches_the_golden_file() {
    let analysis = analyze_source(interf_source(), Options::default()).unwrap();
    let got = render(&analysis);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .unwrap_or_else(|e| panic!("missing golden file {GOLDEN}: {e}"));
    assert_eq!(
        got, want,
        "provenance drifted from tests/golden/interf_provenance.txt; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn provenance_identical_across_cache_replay() {
    // Provenance is derived purely from the loop's dependence sets, so
    // a cache replay must reproduce it byte for byte.
    let src = interf_source();
    let cold = analyze_source(src, Options::default()).unwrap();
    let cache: Arc<dyn SummaryCache> = Arc::new(MemoryCache::new());
    analyze_source_with_cache(src, Options::default(), Some(Arc::clone(&cache))).unwrap();
    let warm =
        analyze_source_with_cache(src, Options::default(), Some(Arc::clone(&cache))).unwrap();
    assert!(cache.counters().hits > 0, "second run should replay");
    assert_eq!(render(&cold), render(&warm));
}

#[test]
fn every_kernel_verdict_ends_in_decide() {
    // The acceptance bar: every verdict in the suite carries a
    // non-empty provenance chain whose final entry is the decision,
    // naming the deciding intersection (or degradation) for serial
    // loops.
    for k in benchsuite::kernels() {
        let analysis = analyze_source(k.source, Options::default()).unwrap();
        assert!(
            !analysis.verdicts.is_empty(),
            "{}: no verdicts",
            k.loop_label
        );
        for v in &analysis.verdicts {
            assert!(!v.provenance.is_empty(), "{}: empty provenance", v.id);
            let last = v.provenance.last().unwrap();
            assert_eq!(last.op, "decide", "{}: last op is {}", v.id, last.op);
            if !v.parallel_as_is && !v.parallel_after_privatization {
                assert!(
                    !last.detail.is_empty(),
                    "{}: serial decide entry names nothing",
                    v.id
                );
            }
        }
    }
}
