//! Golden emitted-source output over the benchsuite: the exact
//! OpenMP-annotated text (and skip diagnostics) for every kernel is
//! checked in at `tests/golden/openmp_emit.txt` and must never change
//! silently. CI re-derives the TRACK kernel's bytes through the
//! `panorama --emit-openmp` CLI (see the `codegen-differential` job).
//!
//! Regenerate after an intentional change with
//! `UPDATE_GOLDEN=1 cargo test -p panorama --test codegen_golden`.

use panorama::{driver, Options};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/openmp_emit.txt"
);

fn emit(source: &str) -> codegen::Transform {
    let req = driver::Request {
        opts: Options::full(),
        emit: true,
        ..driver::Request::new(source)
    };
    driver::run(&req).unwrap().transform.unwrap()
}

fn render() -> String {
    let mut out = String::new();
    for k in benchsuite::kernels() {
        let t = emit(k.source);
        out.push_str(&format!("== {} {} ==\n", k.program, k.loop_label));
        out.push_str(&t.source);
        for s in &t.skipped {
            out.push_str(&format!("{}\n", s.render()));
        }
        out.push('\n');
    }
    out
}

#[test]
fn benchsuite_emission_matches_the_golden_file() {
    let got = render();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .unwrap_or_else(|e| panic!("missing golden file {GOLDEN}: {e}"));
    assert_eq!(
        got, want,
        "emitted OpenMP source drifted from tests/golden/openmp_emit.txt; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn emission_is_deterministic() {
    // Two cold runs and the directive layer itself must agree byte for
    // byte — the same contract the server determinism suite pins across
    // worker counts and cache modes.
    assert_eq!(render(), render());
}
