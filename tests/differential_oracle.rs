//! Differential validation: every loop verdict the static pipeline
//! produces is cross-checked against the dynamic race oracle.
//!
//! The oracle (the `raceoracle` crate, surfaced as
//! [`panorama::Analysis::run_oracle`]) executes each analyzed program
//! sequentially under shadow-memory tracing and classifies the observed
//! loop-carried conflicts. The contract enforced here:
//!
//! * **Soundness (hard failure)** — a loop judged "parallel after
//!   privatization" must show zero dynamic races on its shared arrays,
//!   and no privatized array may depend on a value from another
//!   iteration. One violation fails the suite.
//! * **Precision (metric)** — serial verdicts whose blamed arrays run
//!   conflict-free are counted and printed, never failed: the static
//!   analysis is allowed to be conservative, not wrong.
//!
//! Inputs: every benchsuite kernel (the paper's Table 1–2 loops and the
//! Fig. 1 kernels), the synthetic scaling program, and several hundred
//! random bounds-safe programs from the shared fuzz generator.

use panorama::{analyze_source, Options, Outcome};

#[path = "generator.rs"]
mod generator;
use generator::Gen;

/// Analyzes `src`, runs the oracle, and asserts the soundness invariant.
/// Returns `(confirmed, precision_gaps, not_exercised)`.
fn check(tag: &str, src: &str) -> (usize, usize, usize) {
    let mut analysis = analyze_source(src, Options::default())
        .unwrap_or_else(|e| panic!("{tag}: analysis failed: {e}\n{src}"));
    let report = analysis.run_oracle();
    if !report.sound() {
        let mut msg = format!("{tag}: SOUNDNESS VIOLATION(S):\n");
        for c in report.violations() {
            msg.push_str(&format!("  loop {}: {}\n", c.id, c.note));
            for d in &c.diagnostics {
                msg.push_str(&format!("    {}\n", d.render()));
            }
        }
        msg.push_str(&format!("program:\n{src}"));
        panic!("{msg}");
    }
    (
        report.confirmed,
        report.precision_gaps,
        report.not_exercised,
    )
}

#[test]
fn benchsuite_kernels_differential() {
    let mut confirmed = 0;
    let mut gaps = 0;
    for k in benchsuite::kernels() {
        let (c, g, _) = check(k.loop_label, k.source);
        confirmed += c;
        gaps += g;

        // The paper's target loop itself must actually be exercised by
        // the workload — an unexecuted loop validates nothing.
        let mut analysis = analyze_source(k.source, Options::default()).unwrap();
        let target_id = analysis.verdict(k.routine, k.var).unwrap().id.clone();
        let report = analysis.run_oracle();
        let cmp = report.loops.iter().find(|c| c.id == target_id).unwrap();
        assert!(
            cmp.iterations > 0,
            "{}: target loop {} never executed",
            k.loop_label,
            target_id
        );
        assert_ne!(cmp.outcome, Outcome::SoundnessViolation);
    }
    println!("benchsuite: {confirmed} loops confirmed, {gaps} precision gaps");
    assert!(
        confirmed > 0,
        "no benchsuite loop was dynamically confirmed"
    );
}

#[test]
fn fig1_kernels_differential() {
    for (label, routine, var, _arr, src) in benchsuite::fig1_kernels() {
        check(label, src);
        let mut analysis = analyze_source(src, Options::default()).unwrap();
        let target_id = analysis.verdict(routine, var).unwrap().id.clone();
        let report = analysis.run_oracle();
        let cmp = report.loops.iter().find(|c| c.id == target_id).unwrap();
        assert!(cmp.iterations > 0, "{label}: target loop never executed");
    }
}

#[test]
fn synthetic_program_differential() {
    check("synthetic", &benchsuite::synthetic_program(4, 32));
}

#[test]
fn fuzz_differential_250_programs() {
    // ≥200 random programs, every loop verdict cross-validated; the
    // seed range is disjoint from fuzz_soundness.rs so the two suites
    // together cover more of the generator's space.
    let mut confirmed = 0;
    let mut gaps = 0;
    let mut not_exercised = 0;
    for seed in 10_000..10_250u64 {
        let src = Gen::new(seed).program();
        let (c, g, n) = check(&format!("seed {seed}"), &src);
        confirmed += c;
        gaps += g;
        not_exercised += n;
    }
    println!(
        "fuzz differential: {confirmed} confirmed, {gaps} precision gaps, \
         {not_exercised} not exercised"
    );
    // The generator's verdict mix must actually exercise the oracle on
    // both positive and negative verdicts.
    assert!(confirmed > 100, "too few confirmed loops: {confirmed}");
}
