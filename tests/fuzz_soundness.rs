//! Soundness fuzzing: generate random well-formed Fortran programs, run
//! the whole analysis pipeline, and *execute* every verdict.
//!
//! The oracle is the interpreter: whenever the analyzer declares a loop
//! "parallel after privatization", running that loop across threads with
//! the derived privatization plan must produce results bitwise equal to
//! sequential execution. A single divergence would expose an unsound
//! verdict (a missed dependence, a wrong kill, a bad expansion). The
//! generator is bounds-safe by construction so every program also runs
//! without runtime errors.

use interp::{ArrayData, LoopPlan, Machine, ParallelPlan};
use panorama::{analyze_source, Options};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Arrays are sized so that every generated subscript stays in bounds:
/// subscripts are drawn from {k, k+1, k+2, i, i+c, const} with
/// i ∈ [1,OUTER], k ∈ [1,INNER].
const OUTER: i64 = 8;
const INNER: i64 = 6;
const ASIZE: i64 = 40;

struct Gen {
    rng: StdRng,
    src: String,
    /// scalar temp counter
    tmps: usize,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            src: String::new(),
            tmps: 0,
        }
    }

    fn subscript(&mut self, inner: bool) -> String {
        match self.rng.random_range(0..6) {
            0 if inner => "k".to_string(),
            1 if inner => "k + 1".to_string(),
            2 if inner => "k + 2".to_string(),
            3 => "i".to_string(),
            4 => format!("i + {}", self.rng.random_range(0..20)),
            _ => format!("{}", self.rng.random_range(1..=30)),
        }
    }

    fn rhs(&mut self, arrays: &[&str], inner: bool) -> String {
        let mut out = String::new();
        let terms = self.rng.random_range(1..=2);
        for t in 0..terms {
            if t > 0 {
                out.push_str(" + ");
            }
            match self.rng.random_range(0..4) {
                0 => {
                    let a = arrays[self.rng.random_range(0..arrays.len())];
                    let s = self.subscript(inner);
                    let _ = write!(out, "{a}({s})");
                }
                1 => out.push_str("float(i)"),
                2 if inner => out.push_str("float(k)"),
                _ => {
                    let _ = write!(out, "{}.5", self.rng.random_range(0..9));
                }
            }
        }
        out
    }

    fn stmt(&mut self, arrays: &[&str], depth: usize, inner: bool) {
        let pad = "        ";
        match self.rng.random_range(0..7) {
            // array assignment
            0..=2 => {
                let a = arrays[self.rng.random_range(0..arrays.len())];
                let s = self.subscript(inner);
                let r = self.rhs(arrays, inner);
                let _ = writeln!(self.src, "{pad}{a}({s}) = {r}");
            }
            // scalar temp def + use
            3 => {
                self.tmps += 1;
                let t = format!("t{}", self.tmps % 3);
                let r = self.rhs(arrays, inner);
                let _ = writeln!(self.src, "{pad}{t} = {r}");
                let a = arrays[self.rng.random_range(0..arrays.len())];
                let s = self.subscript(inner);
                let _ = writeln!(self.src, "{pad}{a}({s}) = {t} + 1.0");
            }
            // IF with array assignment
            4 => {
                let cond = match self.rng.random_range(0..3) {
                    0 => "i .GT. 3".to_string(),
                    1 => format!("x .GT. {}.0", self.rng.random_range(0..8)),
                    _ if inner => "k .LE. 4".to_string(),
                    _ => "i .LE. 6".to_string(),
                };
                let a = arrays[self.rng.random_range(0..arrays.len())];
                let s = self.subscript(inner);
                let r = self.rhs(arrays, inner);
                let _ = writeln!(self.src, "{pad}IF ({cond}) THEN");
                let _ = writeln!(self.src, "{pad}  {a}({s}) = {r}");
                if self.rng.random_bool(0.4) {
                    let s2 = self.subscript(inner);
                    let r2 = self.rhs(arrays, inner);
                    let _ = writeln!(self.src, "{pad}ELSE");
                    let _ = writeln!(self.src, "{pad}  {a}({s2}) = {r2}");
                }
                let _ = writeln!(self.src, "{pad}ENDIF");
            }
            // inner DO (only from depth 0)
            5 if depth == 0 => {
                let _ = writeln!(self.src, "{pad}DO k = 1, {INNER}");
                let n = self.rng.random_range(1..=2);
                for _ in 0..n {
                    self.stmt(arrays, 1, true);
                }
                let _ = writeln!(self.src, "{pad}ENDDO");
            }
            _ => {
                let r = self.rhs(arrays, inner);
                let _ = writeln!(self.src, "{pad}x = {r}");
            }
        }
    }

    fn program(mut self) -> String {
        let arrays: Vec<&str> = vec!["u", "v", "w"];
        let _ = writeln!(self.src, "      PROGRAM fuzz");
        let _ = writeln!(
            self.src,
            "      REAL u({ASIZE}), v({ASIZE}), w({ASIZE})"
        );
        let _ = writeln!(self.src, "      REAL x, t0, t1, t2");
        let _ = writeln!(self.src, "      INTEGER i, k");
        let _ = writeln!(self.src, "      x = 2.5");
        let _ = writeln!(self.src, "      DO i = 1, {OUTER}");
        let n = self.rng.random_range(2..=5);
        for _ in 0..n {
            self.stmt(&arrays, 0, false);
        }
        let _ = writeln!(self.src, "      ENDDO");
        let _ = writeln!(self.src, "      END");
        self.src
    }
}

/// Runs one generated program through analysis and the execution oracle.
fn check_seed(seed: u64) {
    let src = Gen::new(seed).program();
    let analysis = analyze_source(&src, Options::default())
        .unwrap_or_else(|e| panic!("seed {seed}: analysis failed: {e}\n{src}"));

    let sema = fortran::analyze(&analysis.program).unwrap();
    let machine = Machine::new(&analysis.program, &sema);
    let (seq, _) = machine
        .run()
        .unwrap_or_else(|e| panic!("seed {seed}: sequential run failed: {e}\n{src}"));

    let Some(v) = analysis.verdict("fuzz", "i") else {
        return;
    };
    if !v.parallel_after_privatization {
        return; // nothing claimed, nothing to falsify
    }
    let mut plan = ParallelPlan::new();
    plan.add(
        "fuzz",
        "i",
        LoopPlan {
            private_arrays: v.privatized.clone(),
            private_scalars: v.private_scalars.clone(),
            copy_out: v
                .arrays
                .iter()
                .filter(|a| a.privatizable && a.needs_copy_out)
                .map(|a| a.array.clone())
                .collect(),
            sum_reductions: v.reductions.clone(),
        },
    );
    for threads in [2usize, 3] {
        let (par, _) = machine
            .run_parallel(&plan, threads)
            .unwrap_or_else(|e| panic!("seed {seed}: parallel run failed: {e}\n{src}"));
        // Arrays u,v,w allocate in declaration order (handles 0..3).
        let names = ["u", "v", "w"];
        for (h, name) in names.iter().enumerate() {
            // Privatized arrays without copy-out may legitimately differ.
            let priv_no_copyout = v.privatized.contains(&name.to_string())
                && !v
                    .arrays
                    .iter()
                    .any(|a| &a.array == name && a.needs_copy_out);
            if priv_no_copyout {
                continue;
            }
            if let (ArrayData::Real(a), ArrayData::Real(b)) =
                (&seq.arrays[h].data, &par.arrays[h].data)
            {
                assert_eq!(
                    a, b,
                    "seed {seed}: UNSOUND VERDICT — array {name} diverged with \
                     {threads} threads\nverdict: {v:?}\nprogram:\n{src}"
                );
            }
        }
    }
}

#[test]
fn fuzz_soundness_300_programs() {
    for seed in 0..300 {
        check_seed(seed);
    }
}

#[test]
fn fuzz_with_calls() {
    // A second generator shape: the outer loop calls a subroutine that
    // fills a work array with a random guard; soundness oracle as above.
    for seed in 1000..1060 {
        let mut rng = StdRng::seed_from_u64(seed);
        let guard = rng.random_range(0..20);
        let bound = rng.random_range(5..ASIZE);
        let use_guard = rng.random_bool(0.5);
        let guard_line = if use_guard {
            format!("      IF (x .GT. {guard}.0) RETURN\n")
        } else {
            String::new()
        };
        let src = format!(
            "
      PROGRAM fuzz
      REAL u({ASIZE}), v({ASIZE})
      REAL x
      INTEGER i
      DO i = 1, {OUTER}
        x = float(i)
        call fill(u, x, {bound})
        call take(v, u, x, {bound}, i)
      ENDDO
      END
      SUBROUTINE fill(b, x, m)
      REAL b(*)
      REAL x
      INTEGER m, j
{guard_line}      DO j = 1, m
        b(j) = x + float(j)
      ENDDO
      END
      SUBROUTINE take(r, b, x, m, i)
      REAL r(*), b(*)
      REAL x, s
      INTEGER m, i, j
{guard_line}      s = 0.0
      DO j = 1, m
        s = s + b(j)
      ENDDO
      r(i) = s
      END
"
        );
        let analysis = analyze_source(&src, Options::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let v = analysis.verdict("fuzz", "i").unwrap();
        assert!(
            v.parallel_after_privatization,
            "seed {seed}: expected parallel: {v:?}"
        );
        let sema = fortran::analyze(&analysis.program).unwrap();
        let machine = Machine::new(&analysis.program, &sema);
        let (seq, _) = machine.run().unwrap();
        let mut plan = ParallelPlan::new();
        plan.add(
            "fuzz",
            "i",
            LoopPlan {
                private_arrays: v.privatized.clone(),
                private_scalars: v.private_scalars.clone(),
                copy_out: vec![],
                sum_reductions: v.reductions.clone(),
            },
        );
        let (par, _) = machine.run_parallel(&plan, 3).unwrap();
        // v (handle 1) is the shared result array.
        assert_eq!(
            seq.arrays[1].data, par.arrays[1].data,
            "seed {seed}: diverged\n{src}"
        );
    }
}
