//! Soundness fuzzing: generate random well-formed Fortran programs, run
//! the whole analysis pipeline, and *execute* every verdict.
//!
//! The oracle is the interpreter: whenever the analyzer declares a loop
//! "parallel after privatization", running that loop across threads with
//! the derived privatization plan must produce results bitwise equal to
//! sequential execution. A single divergence would expose an unsound
//! verdict (a missed dependence, a wrong kill, a bad expansion). The
//! generator is bounds-safe by construction so every program also runs
//! without runtime errors.

use interp::{ArrayData, LoopPlan, Machine, ParallelPlan};
use panorama::{analyze_source, Options};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[path = "generator.rs"]
mod generator;
use generator::{Gen, ASIZE, OUTER};

/// Runs one generated program through analysis and the execution oracle.
fn check_seed(seed: u64) {
    let src = Gen::new(seed).program();
    let analysis = analyze_source(&src, Options::default())
        .unwrap_or_else(|e| panic!("seed {seed}: analysis failed: {e}\n{src}"));

    let sema = fortran::analyze(&analysis.program).unwrap();
    let machine = Machine::new(&analysis.program, &sema);
    let (seq, _) = machine
        .run()
        .unwrap_or_else(|e| panic!("seed {seed}: sequential run failed: {e}\n{src}"));

    let Some(v) = analysis.verdict("fuzz", "i") else {
        return;
    };
    if !v.parallel_after_privatization {
        return; // nothing claimed, nothing to falsify
    }
    let mut plan = ParallelPlan::new();
    plan.add(
        "fuzz",
        "i",
        v.line,
        LoopPlan {
            // Copy-in for all privatized arrays: sound regardless of
            // upward-exposed reads (panogen picks the tighter clause).
            firstprivate: v.privatized.clone(),
            private_scalars: v.private_scalars.clone(),
            copy_out: v
                .arrays
                .iter()
                .filter(|a| a.privatizable && a.needs_copy_out)
                .map(|a| a.array.clone())
                .collect(),
            scalar_copy_out: v.private_scalars.clone(),
            sum_reductions: v.reductions.clone(),
            ..Default::default()
        },
    );
    for threads in [2usize, 3] {
        let (par, _) = machine
            .run_parallel(&plan, threads)
            .unwrap_or_else(|e| panic!("seed {seed}: parallel run failed: {e}\n{src}"));
        // Arrays u,v,w allocate in declaration order (handles 0..3).
        let names = ["u", "v", "w"];
        for (h, name) in names.iter().enumerate() {
            // Privatized arrays without copy-out may legitimately differ.
            let priv_no_copyout = v.privatized.contains(&name.to_string())
                && !v
                    .arrays
                    .iter()
                    .any(|a| &a.array == name && a.needs_copy_out);
            if priv_no_copyout {
                continue;
            }
            if let (ArrayData::Real(a), ArrayData::Real(b)) =
                (&seq.arrays[h].data, &par.arrays[h].data)
            {
                assert_eq!(
                    a, b,
                    "seed {seed}: UNSOUND VERDICT — array {name} diverged with \
                     {threads} threads\nverdict: {v:?}\nprogram:\n{src}"
                );
            }
        }
    }
}

#[test]
fn fuzz_soundness_300_programs() {
    for seed in 0..300 {
        check_seed(seed);
    }
}

#[test]
fn fuzz_with_calls() {
    // A second generator shape: the outer loop calls a subroutine that
    // fills a work array with a random guard; soundness oracle as above.
    for seed in 1000..1060 {
        let mut rng = StdRng::seed_from_u64(seed);
        let guard = rng.random_range(0..20);
        let bound = rng.random_range(5..ASIZE);
        let use_guard = rng.random_bool(0.5);
        let guard_line = if use_guard {
            format!("      IF (x .GT. {guard}.0) RETURN\n")
        } else {
            String::new()
        };
        let src = format!(
            "
      PROGRAM fuzz
      REAL u({ASIZE}), v({ASIZE})
      REAL x
      INTEGER i
      DO i = 1, {OUTER}
        x = float(i)
        call fill(u, x, {bound})
        call take(v, u, x, {bound}, i)
      ENDDO
      END
      SUBROUTINE fill(b, x, m)
      REAL b(*)
      REAL x
      INTEGER m, j
{guard_line}      DO j = 1, m
        b(j) = x + float(j)
      ENDDO
      END
      SUBROUTINE take(r, b, x, m, i)
      REAL r(*), b(*)
      REAL x, s
      INTEGER m, i, j
{guard_line}      s = 0.0
      DO j = 1, m
        s = s + b(j)
      ENDDO
      r(i) = s
      END
"
        );
        let analysis =
            analyze_source(&src, Options::default()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let v = analysis.verdict("fuzz", "i").unwrap();
        assert!(
            v.parallel_after_privatization,
            "seed {seed}: expected parallel: {v:?}"
        );
        let sema = fortran::analyze(&analysis.program).unwrap();
        let machine = Machine::new(&analysis.program, &sema);
        let (seq, _) = machine.run().unwrap();
        let mut plan = ParallelPlan::new();
        plan.add(
            "fuzz",
            "i",
            v.line,
            LoopPlan {
                firstprivate: v.privatized.clone(),
                private_scalars: v.private_scalars.clone(),
                scalar_copy_out: v.private_scalars.clone(),
                sum_reductions: v.reductions.clone(),
                ..Default::default()
            },
        );
        let (par, _) = machine.run_parallel(&plan, 3).unwrap();
        // v (handle 1) is the shared result array.
        assert_eq!(
            seq.arrays[1].data, par.arrays[1].data,
            "seed {seed}: diverged\n{src}"
        );
    }
}
