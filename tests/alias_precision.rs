//! Precision guards for the alias layer: the benchsuite kernels are
//! alias-clean, so the new degradation machinery must not cost them a
//! single verdict — and the storage-class-scoped conservative clobber
//! must leave COMMON storage alone when the callees cannot reach it.

use panorama::{analyze_source, LintCode, Options};

fn no_t3() -> Options {
    Options {
        interprocedural: false,
        ..Options::default()
    }
}

#[test]
fn benchsuite_kernels_keep_their_verdicts_under_the_alias_layer() {
    // Table 1/2 ground truth: no kernel passes one array twice, none
    // mismatches COMMON layouts — the alias pass must classify every
    // call clean and leave the paper's privatization results intact.
    for k in benchsuite::kernels() {
        let an = analyze_source(k.source, Options::default()).unwrap();
        let v = an
            .verdicts
            .iter()
            .find(|v| v.routine == k.routine && v.var == k.var && v.depth == 0)
            .unwrap_or_else(|| panic!("{}: target loop missing", k.loop_label));
        for arr in k.privatizable {
            let a = v.arrays.iter().find(|a| &a.array == arr).unwrap();
            assert!(a.privatizable, "{}: lost {arr}", k.loop_label);
        }
        for l in &an.lints {
            assert!(
                !matches!(
                    l.code,
                    LintCode::AliasedActuals | LintCode::ReshapedAcrossCall
                ),
                "{}: benchsuite kernel flagged as aliased: {l}",
                k.loop_label
            );
        }
    }
}

#[test]
fn conservative_clobber_carries_a_p006_witness() {
    // The same kernels without interprocedural analysis: every CALL is
    // summarized conservatively and says so through a stable lint.
    for k in benchsuite::kernels() {
        let has_call = k.source.to_lowercase().contains("call ");
        let an = analyze_source(k.source, no_t3()).unwrap();
        let clobbers = an
            .lints
            .iter()
            .filter(|l| l.code == LintCode::ConservativeClobber)
            .count();
        assert_eq!(
            clobbers > 0,
            has_call,
            "{}: P006 must fire exactly on call-bearing kernels",
            k.loop_label
        );
    }
}

#[test]
fn scoped_clobber_keeps_unreachable_common_precise() {
    // TRACK nlfilt/300 extended with a COMMON accumulator the callees
    // never see. The seed clobbered every COMMON name in the caller at
    // each non-interprocedural CALL, which would have manufactured
    // output dependences on csum; the scoped clobber only degrades the
    // storage the callee can actually reach, so csum stays exact.
    let k = benchsuite::kernels()
        .into_iter()
        .find(|k| k.loop_label == "nlfilt/300")
        .unwrap();
    let src = k
        .source
        .replace(
            "      REAL r(100)\n",
            "      REAL r(100), csum(100)\n      COMMON /accum/ csum\n",
        )
        .replace(
            "        call score(r, xsd, i)\n",
            "        call score(r, xsd, i)\n        csum(i) = float(i)\n",
        );
    assert_ne!(src, k.source, "kernel source drifted; update the test");
    assert!(src.contains("csum(i)"));

    let an = analyze_source(&src, no_t3()).unwrap();
    let v = an
        .verdicts
        .iter()
        .find(|v| v.routine == k.routine && v.var == k.var && v.depth == 0)
        .unwrap();
    let csum = v.arrays.iter().find(|a| a.array == "csum").unwrap();
    // The seed's blanket clobber gave csum unknown MOD/UE/DE at every
    // CALL: flow and anti dependences out of thin air, privatization
    // impossible. Scoped, csum keeps its real sets. (An output
    // dependence remains: the loop index is passed by reference into
    // the callees, so the clobbered scalar makes the subscript
    // non-exact — that conservatism is about `i`, not about storage.)
    assert!(
        !csum.flow_dep && !csum.anti_dep,
        "COMMON storage no callee reaches must stay precise: {csum:?}"
    );
    assert!(
        csum.privatizable,
        "csum's write still covers the iteration: {csum:?}"
    );
    // The actual arguments are still clobbered — the loop itself stays
    // conservative without interprocedural analysis.
    assert!(!v.parallel_after_privatization, "{v:?}");

    // With interprocedural analysis the extended kernel keeps the
    // paper's verdict: work arrays privatize, the loop parallelizes.
    let full = analyze_source(&src, Options::default()).unwrap();
    let v = full
        .verdicts
        .iter()
        .find(|v| v.routine == k.routine && v.var == k.var && v.depth == 0)
        .unwrap();
    assert!(v.parallel_after_privatization, "{v:?}");
    for arr in k.privatizable {
        let a = v.arrays.iter().find(|a| &a.array == arr).unwrap();
        assert!(a.privatizable, "lost {arr} in the extended kernel");
    }
}
