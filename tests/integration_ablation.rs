//! Ablation integration tests at the workspace level: the technique
//! toggles and the design-choice ablations DESIGN.md §5 calls out.

use panorama::{analyze_source, Options};

const GUARDED_KILL: &str = "
      PROGRAM t
      REAL a(100), b(100)
      REAL x
      INTEGER i, k
      DO i = 1, 50
        x = float(i)
        IF (x .LT. 200.0) THEN
          DO k = 1, 100
            a(k) = x
          ENDDO
        ENDIF
        IF (x .LT. 200.0) THEN
          DO k = 1, 100
            b(k) = a(k)
          ENDDO
        ENDIF
      ENDDO
      END
";

#[test]
fn guards_enable_correlated_kills() {
    // With guards (T2), the second IF's use of `a` is covered by the
    // first IF's definition under the same condition.
    let full = analyze_source(GUARDED_KILL, Options::default()).unwrap();
    let v = full.verdict("t", "i").unwrap();
    let a = v.arrays.iter().find(|x| x.array == "a").unwrap();
    assert!(a.privatizable, "{v:?}");

    // Without guards the kill fails (conventional kill-set intersection of
    // a taken/not-taken branch is empty).
    let no_t2 = analyze_source(
        GUARDED_KILL,
        Options {
            if_conditions: false,
            ..Options::default()
        },
    )
    .unwrap();
    let v2 = no_t2.verdict("t", "i").unwrap();
    let a2 = v2.arrays.iter().find(|x| x.array == "a").unwrap();
    assert!(!a2.privatizable);
}

#[test]
fn conventional_must_mod_still_kills_both_branch_writes() {
    // Ablation: with T2 off, the must-mod (branch intersection) still
    // kills uses covered on BOTH branches — the pre-GAR behaviour.
    let src = "
      PROGRAM t
      REAL w(50), r(40)
      REAL x
      INTEGER i, k
      DO i = 1, 40
        x = float(i)
        IF (x .GT. 20.0) THEN
          DO k = 1, 50
            w(k) = x
          ENDDO
        ELSE
          DO k = 1, 50
            w(k) = -x
          ENDDO
        ENDIF
        r(i) = w(1) + w(50)
      ENDDO
      END
";
    for t2 in [true, false] {
        let a = analyze_source(
            src,
            Options {
                if_conditions: t2,
                ..Options::default()
            },
        )
        .unwrap();
        let v = a.verdict("t", "i").unwrap();
        let w = v.arrays.iter().find(|x| x.array == "w").unwrap();
        assert!(
            w.privatizable,
            "T2={t2}: both-branch definition must kill the use: {v:?}"
        );
    }
}

#[test]
fn on_the_fly_substitution_matters() {
    // The bound of the fill loop is copied through a scalar chain; without
    // value propagation (here: with T1 off) the kill cannot be proved.
    let src = "
      PROGRAM t
      REAL w(200), r(50)
      INTEGER i, k, m, mm, n
      n = int(float(120))
      DO i = 1, 50
        m = n
        mm = m
        DO k = 1, mm
          w(k) = float(i + k)
        ENDDO
        r(i) = 0.0
        DO k = 1, n
          r(i) = r(i) + w(k)
        ENDDO
      ENDDO
      END
";
    let full = analyze_source(src, Options::default()).unwrap();
    let v = full.verdict("t", "i").unwrap();
    let w = v.arrays.iter().find(|x| x.array == "w").unwrap();
    assert!(
        w.privatizable,
        "substitution mm = m = n must close the kill: {v:?}"
    );

    let no_t1 = analyze_source(
        src,
        Options {
            symbolic: false,
            ..Options::default()
        },
    )
    .unwrap();
    let v1 = no_t1.verdict("t", "i").unwrap();
    let w1 = v1.arrays.iter().find(|x| x.array == "w").unwrap();
    assert!(!w1.privatizable);
}

#[test]
fn interprocedural_scalar_values_propagate() {
    // The callee writes the work array up to a bound passed as an actual
    // computed from PARAMETER constants.
    let src = "
      PROGRAM t
      PARAMETER (half = 50)
      REAL w(200), r(60)
      INTEGER i, m
      m = half * 2
      DO i = 1, 60
        call fill(w, m, i)
        call take(r, w, m, i)
      ENDDO
      END
      SUBROUTINE fill(w, m, i)
      REAL w(*)
      INTEGER m, i, k
      DO k = 1, m
        w(k) = float(i)
      ENDDO
      END
      SUBROUTINE take(r, w, m, i)
      REAL r(*), w(*)
      INTEGER m, i, k
      REAL s
      s = 0.0
      DO k = 1, m
        s = s + w(k)
      ENDDO
      r(i) = s
      END
";
    let a = analyze_source(src, Options::default()).unwrap();
    let v = a.verdict("t", "i").unwrap();
    let w = v.arrays.iter().find(|x| x.array == "w").unwrap();
    assert!(w.privatizable, "{v:?}");
}

#[test]
fn forall_extension_only_affects_hard_case() {
    // The ∀-extension must not change verdicts on the easy kernels.
    for k in benchsuite::kernels() {
        if !k.hard.is_empty() {
            continue;
        }
        let base = analyze_source(k.source, Options::default()).unwrap();
        let ext = analyze_source(k.source, Options::full()).unwrap();
        let vb = base.verdict(k.routine, k.var).unwrap();
        let ve = ext.verdict(k.routine, k.var).unwrap();
        for arr in k.privatizable {
            let b = vb.arrays.iter().find(|a| &a.array == arr).unwrap();
            let e = ve.arrays.iter().find(|a| &a.array == arr).unwrap();
            assert_eq!(
                b.privatizable, e.privatizable,
                "{}: {arr} changed under forall",
                k.loop_label
            );
        }
    }
}

#[test]
fn conventional_prefilter_vs_dataflow() {
    // The pre-filter proves the easy loop parallel; the work-array loop
    // needs the dataflow analysis — and gets it.
    let src = "
      PROGRAM t
      REAL a(100), w(10), r(50)
      INTEGER i, q, k
      DO q = 1, 100
        a(q) = float(q)
      ENDDO
      DO i = 1, 50
        DO k = 1, 10
          w(k) = a(k) + float(i)
        ENDDO
        r(i) = w(10)
      ENDDO
      END
";
    let a = analyze_source(src, Options::default()).unwrap();
    assert!(a.conventional_parallel.contains(&"t/q".to_string()));
    assert!(!a.conventional_parallel.contains(&"t/i".to_string()));
    let v = a.verdict("t", "i").unwrap();
    assert!(v.parallel_after_privatization, "{v:?}");
}
