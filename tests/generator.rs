//! Random well-formed Fortran program generator shared by the soundness
//! fuzzers (`fuzz_soundness.rs`) and the race-oracle differential
//! validator (`differential_oracle.rs`).
//!
//! Programs are bounds-safe by construction so every generated program
//! also executes without runtime errors: subscripts are drawn from
//! {k, k+1, k+2, i, i+c, const} with i ∈ [1,OUTER], k ∈ [1,INNER] and
//! arrays sized to cover the largest reachable index.

#![allow(dead_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Outer loop trip count.
pub const OUTER: i64 = 8;
/// Inner loop trip count.
pub const INNER: i64 = 6;
/// Array extent (covers every generated subscript).
pub const ASIZE: i64 = 40;

pub struct Gen {
    rng: StdRng,
    src: String,
    /// scalar temp counter
    tmps: usize,
}

impl Gen {
    pub fn new(seed: u64) -> Gen {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            src: String::new(),
            tmps: 0,
        }
    }

    fn subscript(&mut self, inner: bool) -> String {
        match self.rng.random_range(0..6) {
            0 if inner => "k".to_string(),
            1 if inner => "k + 1".to_string(),
            2 if inner => "k + 2".to_string(),
            3 => "i".to_string(),
            4 => format!("i + {}", self.rng.random_range(0..20)),
            _ => format!("{}", self.rng.random_range(1..=30)),
        }
    }

    fn rhs(&mut self, arrays: &[&str], inner: bool) -> String {
        let mut out = String::new();
        let terms = self.rng.random_range(1..=2);
        for t in 0..terms {
            if t > 0 {
                out.push_str(" + ");
            }
            match self.rng.random_range(0..4) {
                0 => {
                    let a = arrays[self.rng.random_range(0..arrays.len())];
                    let s = self.subscript(inner);
                    let _ = write!(out, "{a}({s})");
                }
                1 => out.push_str("float(i)"),
                2 if inner => out.push_str("float(k)"),
                _ => {
                    let _ = write!(out, "{}.5", self.rng.random_range(0..9));
                }
            }
        }
        out
    }

    fn stmt(&mut self, arrays: &[&str], depth: usize, inner: bool) {
        let pad = "        ";
        match self.rng.random_range(0..7) {
            // array assignment
            0..=2 => {
                let a = arrays[self.rng.random_range(0..arrays.len())];
                let s = self.subscript(inner);
                let r = self.rhs(arrays, inner);
                let _ = writeln!(self.src, "{pad}{a}({s}) = {r}");
            }
            // scalar temp def + use
            3 => {
                self.tmps += 1;
                let t = format!("t{}", self.tmps % 3);
                let r = self.rhs(arrays, inner);
                let _ = writeln!(self.src, "{pad}{t} = {r}");
                let a = arrays[self.rng.random_range(0..arrays.len())];
                let s = self.subscript(inner);
                let _ = writeln!(self.src, "{pad}{a}({s}) = {t} + 1.0");
            }
            // IF with array assignment
            4 => {
                let cond = match self.rng.random_range(0..3) {
                    0 => "i .GT. 3".to_string(),
                    1 => format!("x .GT. {}.0", self.rng.random_range(0..8)),
                    _ if inner => "k .LE. 4".to_string(),
                    _ => "i .LE. 6".to_string(),
                };
                let a = arrays[self.rng.random_range(0..arrays.len())];
                let s = self.subscript(inner);
                let r = self.rhs(arrays, inner);
                let _ = writeln!(self.src, "{pad}IF ({cond}) THEN");
                let _ = writeln!(self.src, "{pad}  {a}({s}) = {r}");
                if self.rng.random_bool(0.4) {
                    let s2 = self.subscript(inner);
                    let r2 = self.rhs(arrays, inner);
                    let _ = writeln!(self.src, "{pad}ELSE");
                    let _ = writeln!(self.src, "{pad}  {a}({s2}) = {r2}");
                }
                let _ = writeln!(self.src, "{pad}ENDIF");
            }
            // inner DO (only from depth 0)
            5 if depth == 0 => {
                let _ = writeln!(self.src, "{pad}DO k = 1, {INNER}");
                let n = self.rng.random_range(1..=2);
                for _ in 0..n {
                    self.stmt(arrays, 1, true);
                }
                let _ = writeln!(self.src, "{pad}ENDDO");
            }
            _ => {
                let r = self.rhs(arrays, inner);
                let _ = writeln!(self.src, "{pad}x = {r}");
            }
        }
    }

    pub fn program(mut self) -> String {
        let arrays: Vec<&str> = vec!["u", "v", "w"];
        let _ = writeln!(self.src, "      PROGRAM fuzz");
        let _ = writeln!(self.src, "      REAL u({ASIZE}), v({ASIZE}), w({ASIZE})");
        let _ = writeln!(self.src, "      REAL x, t0, t1, t2");
        let _ = writeln!(self.src, "      INTEGER i, k");
        let _ = writeln!(self.src, "      x = 2.5");
        let _ = writeln!(self.src, "      DO i = 1, {OUTER}");
        let n = self.rng.random_range(2..=5);
        for _ in 0..n {
            self.stmt(&arrays, 0, false);
        }
        let _ = writeln!(self.src, "      ENDDO");
        let _ = writeln!(self.src, "      END");
        self.src
    }
}
