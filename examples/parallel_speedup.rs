//! Analyze a Perfect-benchmark kernel, derive its privatization plan,
//! execute it sequentially and in parallel (threads + simulated
//! P-processor schedule), and report the speedups.
//!
//! ```text
//! cargo run --example parallel_speedup [loop-label]
//! ```
//!
//! e.g. `cargo run --example parallel_speedup ocean/270`.

use benchsuite::kernels;
use interp::{simulate_speedup, LoopPlan, Machine, ParallelPlan};
use panorama::{analyze_source, Options};

fn main() {
    let wanted = std::env::args().nth(1);
    let ks = kernels();
    let kernel = match &wanted {
        Some(label) => ks
            .iter()
            .find(|k| k.loop_label == label.as_str())
            .unwrap_or_else(|| {
                eprintln!("unknown loop label {label}; available:");
                for k in &ks {
                    eprintln!("  {}", k.loop_label);
                }
                std::process::exit(1);
            }),
        None => &ks[5], // ocean/270
    };

    println!("kernel {} ({})", kernel.loop_label, kernel.program);

    // 1. Analyze and derive the plan.
    let analysis = analyze_source(kernel.source, Options::full()).expect("analysis");
    let v = analysis
        .verdict(kernel.routine, kernel.var)
        .expect("target loop verdict");
    println!(
        "  parallel after privatization: {} (privatize arrays {:?}, scalars {:?})",
        v.parallel_after_privatization, v.privatized, v.private_scalars
    );
    if !v.parallel_after_privatization {
        println!("  blockers: {:?}", v.blockers);
        return;
    }
    let mut plan = ParallelPlan::new();
    plan.add(
        kernel.routine,
        kernel.var,
        v.line,
        LoopPlan {
            // Copy-in for every privatized array: sound whether or not
            // the loop has upward-exposed reads (the codegen backend
            // refines this to PRIVATE when it proves no copy-in need).
            firstprivate: v.privatized.clone(),
            private_scalars: v.private_scalars.clone(),
            copy_out: v
                .arrays
                .iter()
                .filter(|a| a.privatizable && a.needs_copy_out)
                .map(|a| a.array.clone())
                .collect(),
            scalar_copy_out: v.private_scalars.clone(),
            sum_reductions: v.reductions.clone(),
            ..Default::default()
        },
    );

    // 2. Execute.
    let sema = fortran::analyze(&analysis.program).unwrap();
    let machine = Machine::new(&analysis.program, &sema);
    let (_, seq_stats) = machine.run().expect("sequential run");
    println!("  sequential ops: {}", seq_stats.ops);

    let (_, par_stats) = machine.run_parallel(&plan, 4).expect("parallel run");
    println!(
        "  threaded run OK ({} iterations across threads)",
        par_stats.parallel_iterations
    );

    // 3. Simulated P-processor speedups (the Table 1 substitute for the
    //    Alliant FX/8).
    println!("  simulated speedups:");
    for p in [1usize, 2, 4, 8, 16] {
        let sim = simulate_speedup(&machine, kernel.routine, kernel.var, p).expect("simulation");
        println!(
            "    P={p:<3} speedup {:.2}  (loop fraction {:.1}%)",
            sim.speedup,
            100.0 * sim.loop_fraction
        );
    }
    println!(
        "  paper reported: {:.1} on 8 processors ({}% of sequential time)",
        kernel.paper_speedup, kernel.paper_pct_seq
    );
}
