//! Dumps the Hierarchical Supergraph of a program — the Fig. 3 style
//! structure: routine flow subgraphs with nested loop-body subgraphs,
//! call nodes and IF-condition nodes.
//!
//! ```text
//! cargo run --example hsg_dump [path/to/file.f]
//! ```
//!
//! Without an argument it dumps the paper's Fig. 1(c) program.

use panorama::{analyze_source, Options};

const DEFAULT: &str = "
      PROGRAM main
      REAL a(100)
      INTEGER i, n, m
      REAL x
      n = 10
      m = 100
      DO i = 1, n
        x = float(i)
        call in(a, x, m)
        call out(a, x, m)
      ENDDO
      END

      SUBROUTINE in(b, x, mm)
      REAL b(*)
      REAL x
      INTEGER mm, j
      IF (x .GT. 64.0) RETURN
      DO j = 1, mm
        b(j) = x
      ENDDO
      END

      SUBROUTINE out(b, x, mm)
      REAL b(*)
      REAL x, y
      INTEGER mm, j
      IF (x .GT. 64.0) RETURN
      DO j = 1, mm
        y = b(j)
      ENDDO
      END
";

fn main() {
    let src = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).expect("read source file"),
        None => DEFAULT.to_string(),
    };
    let analysis = analyze_source(&src, Options::default()).expect("analysis failed");
    println!(
        "HSG: {} subgraphs, {} nodes total\n",
        analysis.hsg.subgraphs.len(),
        analysis.hsg.total_nodes()
    );
    print!("{}", analysis.hsg);
}
