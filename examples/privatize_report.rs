//! Privatization report over the reconstructed Perfect-benchmark kernels:
//! for every kernel of Tables 1–2, show which arrays privatize under the
//! full analysis and which technique ablations break them.
//!
//! ```text
//! cargo run --example privatize_report
//! ```

use benchsuite::kernels;
use panorama::{analyze_source, Options};

fn privatized_arrays(src: &str, routine: &str, var: &str, opts: Options) -> Vec<String> {
    let analysis = analyze_source(src, opts).expect("analysis");
    let v = analysis.verdict(routine, var).expect("target loop");
    v.arrays
        .iter()
        .filter(|a| a.privatizable)
        .map(|a| a.array.clone())
        .collect()
}

fn main() {
    println!(
        "{:<14} {:<12} {:<40} broken by ablation",
        "program/loop", "techniques", "privatized (full analysis)"
    );
    println!("{}", "-".repeat(110));
    for k in kernels() {
        let full = privatized_arrays(k.source, k.routine, k.var, Options::full());
        let mut broken = Vec::new();
        for (tag, opts) in [
            (
                "-T1",
                Options {
                    symbolic: false,
                    ..Options::default()
                },
            ),
            (
                "-T2",
                Options {
                    if_conditions: false,
                    ..Options::default()
                },
            ),
            (
                "-T3",
                Options {
                    interprocedural: false,
                    ..Options::default()
                },
            ),
        ] {
            let got = privatized_arrays(k.source, k.routine, k.var, opts);
            let lost: Vec<&str> = k
                .privatizable
                .iter()
                .filter(|a| !got.contains(&a.to_string()))
                .copied()
                .collect();
            if !lost.is_empty() {
                broken.push(format!("{tag}: loses {lost:?}"));
            }
        }
        let needs = format!(
            "T1={} T2={} T3={}",
            if k.needs.t1 { "Y" } else { "n" },
            if k.needs.t2 { "Y" } else { "n" },
            if k.needs.t3 { "Y" } else { "n" }
        );
        println!(
            "{:<14} {:<12} {:<40} {}",
            k.loop_label,
            needs,
            format!("{full:?}"),
            broken.join("; ")
        );
    }
}
