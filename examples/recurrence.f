      PROGRAM demo
      REAL s(40), a(60)
      INTEGER i
      s(1) = 1.0
      DO i = 2, 40
        s(i) = s(i-1) + 1.0
      ENDDO
      DO i = 1, 60
        a(i) = float(i)
      ENDDO
      END
