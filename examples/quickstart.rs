//! Quickstart: analyze a small Fortran program and print what the
//! analyzer concluded about every loop.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use panorama::{analyze_source, Options};

const SRC: &str = "
      PROGRAM demo
      REAL w(64), a(1000), b(1000)
      INTEGER i, k, n
      n = 1000
C     The classic privatizable-work-array pattern: w is a per-iteration
C     scratch buffer; only array dataflow analysis can see that.
      DO i = 1, n
        DO k = 1, 64
          w(k) = float(i + k)
        ENDDO
        a(i) = w(1) + w(64)
      ENDDO
C     An elementwise loop: parallel as-is.
      DO i = 1, n
        b(i) = a(i) * 2.0
      ENDDO
C     A linear recurrence: genuinely sequential.
      DO i = 2, n
        a(i) = a(i-1) + b(i)
      ENDDO
      END
";

fn main() {
    let analysis = analyze_source(SRC, Options::default()).expect("analysis failed");

    println!("routines analyzed : {}", analysis.routines.len());
    println!("loops analyzed    : {}", analysis.verdicts.len());
    println!(
        "conventional tests already proved parallel: {:?}",
        analysis.conventional_parallel
    );
    println!();

    for v in &analysis.verdicts {
        println!("loop {} (depth {})", v.id, v.depth);
        println!("  parallel as-is            : {}", v.parallel_as_is);
        println!(
            "  parallel after privatizing : {}",
            v.parallel_after_privatization
        );
        if !v.privatized.is_empty() {
            println!("  arrays to privatize       : {:?}", v.privatized);
        }
        if !v.private_scalars.is_empty() {
            println!("  scalars to privatize      : {:?}", v.private_scalars);
        }
        if !v.blockers.is_empty() {
            println!("  blockers                  : {:?}", v.blockers);
        }
        for a in &v.arrays {
            println!(
                "    array {:8} candidate={} privatizable={} flow={} output={} anti={}",
                a.array, a.candidate, a.privatizable, a.flow_dep, a.output_dep, a.anti_dep
            );
        }
        println!();
    }

    println!(
        "analysis time: {:?} (parse {:?}, dataflow {:?}); memory proxy {} GAR units",
        analysis.times.total(),
        analysis.times.parse,
        analysis.times.dataflow,
        analysis.memory_proxy()
    );
}
