//! Offline shim for the `serde` crate.
//!
//! The real serde is unavailable in this build environment (no network,
//! no vendored registry), so this crate provides the minimal surface the
//! workspace actually uses: a [`Serialize`] trait that renders values
//! into an owned JSON [`Value`] tree, and the `Serialize`/`Deserialize`
//! derive macros (re-exported from the companion `serde_derive` shim).
//!
//! The data model matches serde_json's externally-tagged defaults, so
//! reports produced through this shim are drop-in compatible with ones
//! produced by the real crates for the types in this workspace.

use std::collections::{BTreeMap, BTreeSet, HashMap};

// Lets the `::serde::...` paths emitted by the derive macro resolve when
// the derive is used inside this crate (e.g. in its own tests).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer outside the `i64` range.
    UInt(u64),
    /// Floating point (non-finite values render as `null`).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => u64::try_from(*n).ok(),
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entry slice, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization into the shim JSON data model.
///
/// The derive macro implements this for structs and enums; manual impls
/// cover primitives, strings and the common std containers.
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_json_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(v) => Value::Int(v),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_json_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(v) => Value::UInt(v),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Serialize for i128 {
    fn to_json_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::Int(v),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

/// Types usable as JSON object keys.
pub trait SerializeKey {
    /// The key rendered as a string.
    fn to_key_string(&self) -> String;
}

impl SerializeKey for String {
    fn to_key_string(&self) -> String {
        self.clone()
    }
}

impl SerializeKey for str {
    fn to_key_string(&self) -> String {
        self.to_string()
    }
}

impl<T: SerializeKey + ?Sized> SerializeKey for &T {
    fn to_key_string(&self) -> String {
        (**self).to_key_string()
    }
}

macro_rules! impl_key_int {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn to_key_string(&self) -> String {
                self.to_string()
            }
        }
    )*};
}
impl_key_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: SerializeKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key_string(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: SerializeKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key_string(), v.to_json_value()))
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
    )+};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Point {
        x: i64,
        label: String,
    }

    #[derive(Serialize)]
    enum Kind {
        Unit,
        New(i64),
        Pair(i64, bool),
        Rec { a: i64 },
    }

    #[test]
    fn derive_struct_shape() {
        let p = Point {
            x: 3,
            label: "hi".into(),
        };
        assert_eq!(
            p.to_json_value(),
            Value::Object(vec![
                ("x".into(), Value::Int(3)),
                ("label".into(), Value::Str("hi".into())),
            ])
        );
    }

    #[test]
    fn derive_enum_shapes() {
        assert_eq!(Kind::Unit.to_json_value(), Value::Str("Unit".into()));
        assert_eq!(
            Kind::New(1).to_json_value(),
            Value::Object(vec![("New".into(), Value::Int(1))])
        );
        assert_eq!(
            Kind::Pair(1, true).to_json_value(),
            Value::Object(vec![(
                "Pair".into(),
                Value::Array(vec![Value::Int(1), Value::Bool(true)])
            )])
        );
        assert_eq!(
            Kind::Rec { a: 2 }.to_json_value(),
            Value::Object(vec![(
                "Rec".into(),
                Value::Object(vec![("a".into(), Value::Int(2))])
            )])
        );
    }

    #[test]
    fn containers() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![1i64, 2]);
        assert_eq!(
            m.to_json_value(),
            Value::Object(vec![(
                "k".into(),
                Value::Array(vec![Value::Int(1), Value::Int(2)])
            )])
        );
        assert_eq!(Option::<i64>::None.to_json_value(), Value::Null);
    }
}
