//! A fail-rs-style fault-injection shim.
//!
//! Production code places named *sites* with [`fail_point`]; by default a
//! site is a single relaxed atomic load and returns immediately. Sites
//! come alive in two ways:
//!
//! * the `FAILPOINTS` environment variable, read once — the mechanism CI
//!   uses to run whole test binaries under injection;
//! * [`configure`] / [`clear`], which take precedence over the
//!   environment — the mechanism tests use to inject for one scope.
//!
//! The spec grammar matches fail-rs closely:
//!
//! ```text
//! spec    := site "=" actions (";" site "=" actions)*
//! actions := action ("->" action)*
//! action  := [count "*"] kind
//! kind    := "off" | "panic" | "panic(" selector ")" | "sleep(" millis ")"
//!          | "err" | "err(" message ")"
//! ```
//!
//! An action with a `count` fires that many times before the chain
//! advances to the next action (a bare action repeats forever). A
//! `panic(selector)` only fires when the site's *argument* — a
//! caller-chosen string such as the source text being analyzed —
//! contains the selector, which lets a test target one request out of
//! many. Evaluations that don't match the selector do not consume the
//! action's count.
//!
//! The `err` kind only has an effect at [`fail_point_io`] sites, where
//! it returns an injected [`std::io::Error`]; plain [`fail_point`]
//! sites treat it as `off`. This lets IO fault matrices exercise error
//! paths (short read, failed fsync, lost lock) without a real failing
//! disk.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Fast-path gate: when false, [`fail_point`] is one atomic load.
static ACTIVE: AtomicBool = AtomicBool::new(false);

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

#[derive(Default)]
struct Registry {
    /// Programmatic configuration (wins over the environment).
    programmatic: Option<Vec<Site>>,
    /// Parsed `FAILPOINTS` environment configuration.
    env: Option<Vec<Site>>,
    env_loaded: bool,
}

struct Site {
    name: String,
    /// The remaining action chain; the head is the current action.
    actions: Vec<Action>,
}

#[derive(Clone, Debug, PartialEq)]
struct Action {
    kind: Kind,
    /// Remaining firings before the chain advances (`None` = forever).
    remaining: Option<u64>,
}

#[derive(Clone, Debug, PartialEq)]
enum Kind {
    Off,
    Panic(Option<String>),
    Sleep(u64),
    /// Inject an `io::Error` at a [`fail_point_io`] site (no-op at a
    /// plain [`fail_point`] site). The optional message becomes the
    /// error's display text.
    Err(Option<String>),
}

fn registry() -> &'static Mutex<Registry> {
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    // A panic() action unwinding through a fail point poisons this lock
    // by design; recover so later sites keep working.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Parses a spec string into sites. Unknown action kinds are errors so
/// typos in CI matrices fail loudly.
fn parse_spec(spec: &str) -> Result<Vec<Site>, String> {
    let mut sites = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, actions) = part
            .split_once('=')
            .ok_or_else(|| format!("failpoints: missing '=' in {part:?}"))?;
        let mut chain = Vec::new();
        for a in actions.split("->") {
            chain.push(parse_action(a.trim())?);
        }
        sites.push(Site {
            name: name.trim().to_string(),
            actions: chain,
        });
    }
    Ok(sites)
}

fn parse_action(a: &str) -> Result<Action, String> {
    let (count, kind_str) = match a.split_once('*') {
        Some((n, rest)) => {
            let n: u64 = n
                .trim()
                .parse()
                .map_err(|_| format!("failpoints: bad count in {a:?}"))?;
            (Some(n), rest.trim())
        }
        None => (None, a),
    };
    let kind = if kind_str == "off" {
        Kind::Off
    } else if kind_str == "panic" {
        Kind::Panic(None)
    } else if let Some(sel) = kind_str
        .strip_prefix("panic(")
        .and_then(|s| s.strip_suffix(')'))
    {
        Kind::Panic(Some(sel.to_string()))
    } else if let Some(ms) = kind_str
        .strip_prefix("sleep(")
        .and_then(|s| s.strip_suffix(')'))
    {
        let ms: u64 = ms
            .trim()
            .parse()
            .map_err(|_| format!("failpoints: bad sleep millis in {a:?}"))?;
        Kind::Sleep(ms)
    } else if kind_str == "err" {
        Kind::Err(None)
    } else if let Some(msg) = kind_str
        .strip_prefix("err(")
        .and_then(|s| s.strip_suffix(')'))
    {
        Kind::Err(Some(msg.to_string()))
    } else {
        return Err(format!("failpoints: unknown action {kind_str:?}"));
    };
    Ok(Action {
        kind,
        remaining: count,
    })
}

/// Installs a programmatic configuration (taking precedence over the
/// `FAILPOINTS` environment variable) until [`clear`] is called.
/// Panics on a malformed spec — a test that misconfigures its own
/// injection should fail, not silently run clean.
pub fn configure(spec: &str) {
    let sites = parse_spec(spec).unwrap_or_else(|e| panic!("{e}"));
    let mut reg = lock();
    reg.programmatic = Some(sites);
    ACTIVE.store(true, Ordering::Release);
}

/// Removes the programmatic configuration. The environment
/// configuration, if any, becomes visible again.
pub fn clear() {
    let mut reg = lock();
    reg.programmatic = None;
    let env_live = reg.env.as_ref().is_some_and(|s| !s.is_empty());
    ACTIVE.store(env_live, Ordering::Release);
}

/// Whether `FAILPOINTS` was set in the environment (tests use this to
/// skip programmatic scenarios during an env-driven CI matrix run).
pub fn env_active() -> bool {
    ensure_env_loaded();
    lock().env.as_ref().is_some_and(|s| !s.is_empty())
}

fn ensure_env_loaded() {
    let mut reg = lock();
    if reg.env_loaded {
        return;
    }
    reg.env_loaded = true;
    if let Ok(spec) = std::env::var("FAILPOINTS") {
        match parse_spec(&spec) {
            Ok(sites) => {
                let live = !sites.is_empty();
                reg.env = Some(sites);
                if live {
                    ACTIVE.store(true, Ordering::Release);
                }
            }
            Err(e) => eprintln!("{e} (FAILPOINTS ignored)"),
        }
    }
}

/// Evaluates a site: fast-path gate, site lookup, selector matching,
/// count consumption. Returns the kind to act on, or `None` when the
/// site is inactive.
fn evaluate(name: &str, arg: &str) -> Option<Kind> {
    if !ACTIVE.load(Ordering::Acquire) {
        // One-time: activation via env happens lazily on the first call
        // after the process set ACTIVE through configure(); env-only
        // processes activate here.
        static ENV_CHECKED: AtomicBool = AtomicBool::new(false);
        if ENV_CHECKED.swap(true, Ordering::AcqRel) {
            return None;
        }
        ensure_env_loaded();
        if !ACTIVE.load(Ordering::Acquire) {
            return None;
        }
    }
    let mut reg = lock();
    ensure_env_loaded_in(&mut reg);
    let reg = &mut *reg;
    let sites = match reg.programmatic.as_mut() {
        Some(p) => p,
        None => reg.env.as_mut()?,
    };
    let site = sites.iter_mut().find(|s| s.name == name)?;
    let head = site.actions.first_mut()?;
    // Selector mismatch: the site stays armed, nothing consumed.
    if let Kind::Panic(Some(sel)) = &head.kind {
        if !arg.contains(sel.as_str()) {
            return None;
        }
    }
    let kind = head.kind.clone();
    if let Some(n) = &mut head.remaining {
        *n -= 1;
        if *n == 0 {
            site.actions.remove(0);
        }
    }
    Some(kind)
}

/// A named injection site. `arg` is caller-chosen context (the source
/// text, a routine name, …) matched against `panic(selector)` actions.
/// Inactive sites cost one atomic load. `err` actions are no-ops here —
/// a plain site has no error channel to return them through.
pub fn fail_point(name: &str, arg: &str) {
    match evaluate(name, arg) {
        None | Some(Kind::Off) | Some(Kind::Err(_)) => {}
        Some(Kind::Sleep(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        Some(Kind::Panic(_)) => panic!("failpoint {name:?} triggered"),
    }
}

/// A named injection site on an IO path. Behaves like [`fail_point`],
/// and additionally turns an `err` / `err(message)` action into an
/// injected [`std::io::Error`] (`ErrorKind::Other`) for the caller to
/// propagate. Inactive sites cost one atomic load and return `Ok(())`.
pub fn fail_point_io(name: &str, arg: &str) -> std::io::Result<()> {
    match evaluate(name, arg) {
        None | Some(Kind::Off) => Ok(()),
        Some(Kind::Sleep(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(Kind::Panic(_)) => panic!("failpoint {name:?} triggered"),
        Some(Kind::Err(msg)) => {
            Err(std::io::Error::other(msg.unwrap_or_else(|| {
                format!("injected IO failure at failpoint {name:?}")
            })))
        }
    }
}

fn ensure_env_loaded_in(reg: &mut Registry) {
    if !reg.env_loaded {
        reg.env_loaded = true;
        if let Ok(spec) = std::env::var("FAILPOINTS") {
            if let Ok(sites) = parse_spec(&spec) {
                reg.env = Some(sites);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global state: every test serializes on this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn inactive_site_is_a_no_op() {
        let _g = guard();
        clear();
        fail_point("nothing-configured", "");
    }

    #[test]
    fn panic_action_fires_and_count_expires() {
        let _g = guard();
        configure("boom=1*panic->off");
        let r = std::panic::catch_unwind(|| fail_point("boom", ""));
        assert!(r.is_err());
        // Count exhausted: the chain advanced to `off`.
        fail_point("boom", "");
        clear();
    }

    #[test]
    fn selector_gates_panic() {
        let _g = guard();
        configure("sel=1*panic(needle)");
        fail_point("sel", "nothing to see");
        // Non-matching calls must not consume the count.
        let r = std::panic::catch_unwind(|| fail_point("sel", "hay needle stack"));
        assert!(r.is_err());
        clear();
    }

    #[test]
    fn sleep_action_sleeps() {
        let _g = guard();
        configure("zzz=sleep(20)");
        let t0 = std::time::Instant::now();
        fail_point("zzz", "");
        assert!(t0.elapsed() >= std::time::Duration::from_millis(15));
        clear();
    }

    #[test]
    fn malformed_spec_panics() {
        let _g = guard();
        let r = std::panic::catch_unwind(|| configure("site=explode"));
        assert!(r.is_err());
        clear();
    }

    #[test]
    fn err_action_injects_io_error_with_message() {
        let _g = guard();
        configure("disk=1*err(no space left)->off");
        let e = fail_point_io("disk", "").unwrap_err();
        assert_eq!(e.to_string(), "no space left");
        // Count exhausted: the chain advanced to `off`.
        assert!(fail_point_io("disk", "").is_ok());
        clear();
    }

    #[test]
    fn err_action_is_inert_at_plain_sites() {
        let _g = guard();
        configure("disk=err");
        fail_point("disk", ""); // must not panic or sleep
        assert!(fail_point_io("disk", "").is_err());
        clear();
    }

    #[test]
    fn io_site_honors_panic_and_retry_chains() {
        let _g = guard();
        configure("w=2*err->off");
        assert!(fail_point_io("w", "").is_err());
        assert!(fail_point_io("w", "").is_err());
        // Third attempt (a retry loop) succeeds.
        assert!(fail_point_io("w", "").is_ok());
        clear();
    }

    #[test]
    fn sequences_advance_in_order() {
        let _g = guard();
        configure("seq=2*off->1*panic");
        fail_point("seq", "");
        fail_point("seq", "");
        let r = std::panic::catch_unwind(|| fail_point("seq", ""));
        assert!(r.is_err());
        // Chain fully consumed.
        fail_point("seq", "");
        clear();
    }
}
