//! Offline shim for the `rand` crate (0.9 API surface).
//!
//! Implements exactly what this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` sampling methods
//! `random_range` / `random_bool`. The generator is splitmix64 — not
//! cryptographic, but high-quality enough for fuzzing and benchmarks,
//! and fully deterministic for a given seed (which the soundness fuzzer
//! depends on for reproducible failures).

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (panics if the range is empty).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Uniform sample (panics if empty).
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

fn below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling; the bias is < 2^-64 * span, which
    // is irrelevant for test-case generation.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = below(rng, span);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = below(rng, span + 1);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000), b.random_range(0..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-5i64..20);
            assert!((-5..20).contains(&v));
            let w = rng.random_range(3usize..=7);
            assert!((3..=7).contains(&w));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
    }
}
