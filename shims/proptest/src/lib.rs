//! Offline shim for `proptest`.
//!
//! Provides the subset of the proptest API this workspace's property
//! tests use — `Strategy` with `prop_map` / `prop_filter_map` /
//! `prop_recursive`, tuple and range strategies, `Just`, `any::<bool>()`,
//! string strategies, `prop_oneof!`, `proptest::collection::vec`, and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros — backed by a deterministic splitmix64 RNG.
//!
//! Differences from the real crate: no shrinking (failures report the
//! case seed instead of a minimized input), and string strategies ignore
//! the regex pattern and generate printable character soup (the only
//! pattern used here is `\PC*`, for which that is a faithful model).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod collection;

/// Everything a test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// The per-case random source handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn from_seed(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed or a strategy filtered the input: skip the
    /// case without counting it.
    Reject,
    /// A `prop_assert!`-style check failed.
    Fail(String),
}

/// Result type of a generated test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Value`.
///
/// `generate` returns `None` when the underlying strategy filtered the
/// candidate out (the runner rejects and retries the case).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Maps and filters: `None` rejects the case.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        _whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { base: self, f }
    }

    /// Keeps only values satisfying `pred`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { base: self, pred }
    }

    /// Recursive structures: `recurse` receives a strategy for smaller
    /// instances and builds one level on top; `depth` bounds nesting.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        let base = self.boxed();
        Recursive {
            base,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.base.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.base.generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.base.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let levels = rng.random_range(0..=self.depth);
        let mut s = self.base.clone();
        for _ in 0..levels {
            // Offer both the leaf and the current level to the next tier
            // so trees are ragged rather than uniformly deep.
            let tier = Union::new(vec![self.base.clone(), s]);
            s = (self.recurse)(tier.boxed());
        }
        s.generate(rng)
    }
}

/// Uniform choice between strategies of the same value type
/// (the engine behind `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        // Retry a few arms before rejecting the whole case so that
        // filter-heavy arms don't dominate the reject rate.
        for _ in 0..4 {
            let k = rng.random_range(0..self.arms.len());
            if let Some(v) = self.arms[k].generate(rng) {
                return Some(v);
            }
        }
        None
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                if self.start >= self.end {
                    return None;
                }
                Some(rng.random_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                if self.start() > self.end() {
                    return None;
                }
                Some(rng.random_range(self.clone()))
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident . $idx:tt),+))+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String strategy from a regex-like pattern. The shim ignores the
/// pattern and generates printable character soup of length 0–63.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> Option<String> {
        let len = rng.random_range(0usize..64);
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.random_range(0u32..10) {
                0..=6 => char::from(rng.random_range(0x20u8..0x7f)),
                7 => char::from_u32(rng.random_range(0xa1u32..0x2000)).unwrap_or('¡'),
                8 => '(',
                _ => ')',
            };
            s.push(c);
        }
        Some(s)
    }
}

/// Types with a canonical strategy, used through [`any`].
pub trait Arbitrary: Sized + 'static {
    /// Draws a value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

/// The canonical strategy of an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Drives one `proptest!`-generated test: runs accepted cases until the
/// configured count is reached, bailing out on failure or excessive
/// rejection. Deterministic: the case seed derives from the test name.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = fnv1a(name.as_bytes());
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let max_rejects = u64::from(config.cases) * 64 + 1024;
    let mut case_index = 0u64;
    while accepted < config.cases {
        let seed = base ^ case_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::from_seed(seed);
        case_index += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest {name}: too many rejected cases ({rejected}) — \
                     strategies or prop_assume! filters are too strict"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name}: case #{case_index} (seed {seed:#x}) failed:\n{msg}")
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests. Mirrors the real macro's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(512))]
///     #[test]
///     fn my_prop(a in 0i64..10, b in my_strategy()) { prop_assert!(a >= 0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest($cfg, stringify!($name), |__rng| {
                $(
                    let $pat = match $crate::Strategy::generate(&($strat), __rng) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => {
                            return ::std::result::Result::Err($crate::TestCaseError::Reject)
                        }
                    };
                )+
                let mut __body = || -> $crate::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                };
                __body()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice between strategy expressions of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts inside a `proptest!` body, failing the case (not panicking
/// directly) so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}\n{}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n{}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects the case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..100, 0i64..100)
    }

    proptest! {
        #[test]
        fn addition_commutes(p in arb_pair()) {
            let (a, b) = p;
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn ranges_in_bounds(a in -5i64..5, b in 0usize..3) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(b < 3);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            Just(1i64),
            (2i64..10).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 1 || (4..20).contains(&v));
        }

        #[test]
        fn assume_rejects(x in 0i64..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn config_applies(s in "\\PC*") {
            prop_assert!(s.chars().count() < 64);
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut saw_node = false;
        crate::run_proptest(ProptestConfig::with_cases(64), "recursive", |rng| {
            let t = strat.generate(rng).ok_or(TestCaseError::Reject)?;
            if depth(&t) > 0 {
                saw_node = true;
            }
            if depth(&t) > 6 {
                return Err(TestCaseError::Fail("too deep".into()));
            }
            Ok(())
        });
        assert!(saw_node, "recursion never produced an inner node");
    }

    #[test]
    fn vec_strategy_lengths() {
        let strat = crate::collection::vec(0i64..5, 2..6);
        crate::run_proptest(ProptestConfig::with_cases(64), "vec_lengths", |rng| {
            let v = strat.generate(rng).ok_or(TestCaseError::Reject)?;
            if !(2..6).contains(&v.len()) {
                return Err(TestCaseError::Fail(format!("len {}", v.len())));
            }
            Ok(())
        });
    }
}
