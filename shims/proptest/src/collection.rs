//! `proptest::collection` — vector strategy.

use crate::{Strategy, TestRng};
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec`]: an exact size or a range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            rng.random_range(self.size.lo..=self.size.hi)
        };
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}
