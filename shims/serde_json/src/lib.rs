//! Offline shim for `serde_json`: renders the shim [`serde::Value`] tree
//! as JSON text. Only the serialization half exists — nothing in this
//! workspace parses JSON back.

use std::fmt;

pub use serde::Value;

/// Serialization error (the shim never actually fails, but callers match
/// the real crate's `Result` signature).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON (two-space indent, like the real crate).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    // Keep a decimal point so the value round-trips as a
                    // float, matching serde_json's output for whole floats.
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (key, item)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("f".into(), Value::Float(2.0)),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null],"f":2.0}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1,"));
    }

    #[test]
    fn string_escaping() {
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
    }
}
