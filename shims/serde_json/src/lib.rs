//! Offline shim for `serde_json`: renders the shim [`serde::Value`] tree
//! as JSON text and parses JSON text back into a [`Value`] tree (the
//! `panoramad` request protocol needs the deserialization half).

use std::fmt;

pub use serde::Value;

/// Serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(msg: impl Into<String>, at: usize) -> Error {
        Error(format!("{} at byte {at}", msg.into()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`] tree. Integers that fit `i64`
/// become `Value::Int`, larger non-negative ones `Value::UInt`, and
/// everything else numeric `Value::Float` — mirroring serde_json's
/// number model as used by this workspace.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::parse(format!("expected '{word}'"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::parse("expected a JSON value", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::parse("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let cp = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(cp)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            let c =
                                c.ok_or_else(|| Error::parse("invalid \\u escape", self.pos))?;
                            out.push(c);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(Error::parse("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy up to the next quote or backslash. Both
                    // delimiters are ASCII, so the span edge is always a
                    // UTF-8 character boundary; validating per span (not
                    // per character) keeps huge strings linear-time.
                    let rest = &self.bytes[self.pos..];
                    let stop = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let span = std::str::from_utf8(&rest[..stop])
                        .map_err(|_| Error::parse("invalid utf-8", self.pos))?;
                    if span.chars().any(|c| (c as u32) < 0x20) {
                        return Err(Error::parse("control character in string", self.pos));
                    }
                    out.push_str(span);
                    self.pos += stop;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::parse("truncated \\u escape", self.pos));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        let v =
            u32::from_str_radix(s, 16).map_err(|_| Error::parse("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse("invalid number", start))
    }
}

/// Compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Pretty-printed JSON (two-space indent, like the real crate).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    // Keep a decimal point so the value round-trips as a
                    // float, matching serde_json's output for whole floats.
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (key, item)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("f".into(), Value::Float(2.0)),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null],"f":2.0}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1,"));
    }

    #[test]
    fn string_escaping() {
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn parse_round_trips() {
        let text = r#"{"a":1,"b":[true,null,-7],"f":2.5,"s":"x\ny","o":{}}"#;
        let v = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x\ny"));
        assert_eq!(
            v.get("b").and_then(Value::as_array).map(<[Value]>::len),
            Some(3)
        );
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(from_str("42").unwrap(), Value::Int(42));
        assert_eq!(from_str("-3").unwrap(), Value::Int(-3));
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("2.5").unwrap(), Value::Float(2.5));
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(
            from_str(r#""Aé😀""#).unwrap(),
            Value::Str("Aé😀".to_string())
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str(r#"{"a" 1}"#).is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn parse_whitespace_tolerant() {
        let v = from_str(" {\n \"k\" :\t[ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v,
            Value::Object(vec![(
                "k".into(),
                Value::Array(vec![Value::Int(1), Value::Int(2)])
            )])
        );
    }
}
