//! Offline shim for `crossbeam`, covering only `crossbeam::thread::scope`.
//!
//! Since Rust 1.63 the standard library has scoped threads, so this shim
//! is a thin adapter: it reshapes `std::thread::scope` into crossbeam's
//! API (closures receive `&Scope`, and `scope` returns a `Result`).

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope in which borrowing threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread; `Err` carries the panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from the enclosing scope. The
        /// closure receives the scope, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. Unlike `std::thread::scope`, a panic in an unjoined child
    /// would surface here as a panic rather than an `Err` — callers in
    /// this workspace join every handle explicitly, so the difference is
    /// unobservable.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .expect("thread scope");
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .expect("thread scope");
        assert_eq!(n, 42);
    }
}
