//! Offline shim for `criterion`.
//!
//! Implements the API surface the workspace benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — as a simple wall-clock timer with median
//! reporting. No statistics, plots, or baselines.
//!
//! `harness = false` bench targets are also executed by `cargo test`,
//! so the default iteration count is deliberately small; set
//! `CRITERION_FULL=1` for more samples when actually benchmarking.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn full_run() -> bool {
    std::env::var_os("CRITERION_FULL").is_some()
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn effective_samples(&self) -> usize {
        if full_run() {
            self.sample_size
        } else {
            // Keep `cargo test` runs of harness=false targets fast.
            self.sample_size.min(3)
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.effective_samples();
        run_bench(name, samples, f);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the sample count for subsequent benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.criterion.effective_samples();
        run_bench(&label, samples, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.criterion.effective_samples();
        run_bench(&label, samples, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; matches the real API).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// A new id from a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: function_name.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function_name, self.parameter)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<u128>,
}

impl Bencher {
    /// Times one execution of `f` per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed().as_nanos());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
    };
    // Warmup round, untimed.
    f(&mut b);
    b.samples.clear();
    for _ in 0..samples {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("bench {label}: no samples (closure never called iter)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    println!(
        "bench {label}: median {} per iter ({} samples)",
        fmt_ns(median),
        b.samples.len()
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("toy");
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = toy_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_display() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
