//! A dependency-free `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! shim used when the real serde crates are unavailable (offline builds).
//!
//! `Serialize` generates an implementation of the shim `serde::Serialize`
//! trait (`fn to_json_value(&self) -> serde::Value`) that mirrors serde's
//! default externally-tagged data model:
//!
//! * named-field structs → JSON objects,
//! * newtype structs → the inner value,
//! * tuple structs → JSON arrays,
//! * unit enum variants → `"Variant"`,
//! * newtype variants → `{"Variant": value}`,
//! * tuple variants → `{"Variant": [v0, v1, …]}`,
//! * struct variants → `{"Variant": {field: value, …}}`.
//!
//! `Deserialize` is accepted for API compatibility and expands to nothing
//! (nothing in this workspace deserializes).
//!
//! The input parser is intentionally small: it handles the concrete,
//! non-generic types this workspace derives on. Generic types are
//! rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Expands to nothing: the shim has no deserialization support.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Generates `impl serde::Serialize` producing a `serde::Value`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(msg) => return format!("::core::compile_error!({msg:?});").parse().unwrap(),
    };
    let mut body = String::new();
    match &item.shape {
        Shape::UnitStruct => {
            body.push_str("::serde::Value::Null");
        }
        Shape::NamedStruct(fields) => {
            body.push_str("::serde::Value::Object(<[_]>::into_vec(::std::boxed::Box::new([");
            for f in fields {
                let _ = write!(
                    body,
                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_json_value(&self.{f})),"
                );
            }
            body.push_str("])))");
        }
        Shape::TupleStruct(1) => {
            body.push_str("::serde::Serialize::to_json_value(&self.0)");
        }
        Shape::TupleStruct(n) => {
            body.push_str("::serde::Value::Array(<[_]>::into_vec(::std::boxed::Box::new([");
            for k in 0..*n {
                let _ = write!(body, "::serde::Serialize::to_json_value(&self.{k}),");
            }
            body.push_str("])))");
        }
        Shape::Enum(variants) => {
            body.push_str("match self {");
            for v in variants {
                let name = &item.name;
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        let _ = write!(
                            body,
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),"
                        );
                    }
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let _ = write!(body, "{name}::{vn}({}) => ", binders.join(","));
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_json_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!(
                                "::serde::Value::Array(<[_]>::into_vec(::std::boxed::Box::new([{}])))",
                                items.join(",")
                            )
                        };
                        let _ = write!(
                            body,
                            "::serde::Value::Object(<[_]>::into_vec(::std::boxed::Box::new([(::std::string::String::from({vn:?}), {inner})]))),"
                        );
                    }
                    VariantFields::Named(fields) => {
                        let _ = write!(body, "{name}::{vn} {{ {} }} => ", fields.join(","));
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_json_value({f}))"
                                )
                            })
                            .collect();
                        let _ = write!(
                            body,
                            "::serde::Value::Object(<[_]>::into_vec(::std::boxed::Box::new([(::std::string::String::from({vn:?}), ::serde::Value::Object(<[_]>::into_vec(::std::boxed::Box::new([{}]))))]))),",
                            items.join(",")
                        );
                    }
                }
            }
            body.push('}');
        }
    }
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{ {} }}\n\
         }}",
        item.name, body
    );
    out.parse().unwrap()
}

enum Shape {
    UnitStruct,
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim: expected struct or enum".into()),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim: expected type name".into()),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim: generic type {name} is not supported by the offline derive"
        ));
    }
    // Skip a possible where-clause: scan forward to the body group / `;`.
    let shape = match kw.as_str() {
        "struct" => loop {
            match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    break Shape::NamedStruct(named_fields(g.stream())?);
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    break Shape::TupleStruct(count_top_level_items(g.stream()));
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => break Shape::UnitStruct,
                Some(_) => i += 1,
                None => break Shape::UnitStruct,
            }
        },
        "enum" => loop {
            match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    break Shape::Enum(enum_variants(g.stream())?);
                }
                Some(_) => i += 1,
                None => return Err("serde shim: enum without body".into()),
            }
        },
        other => return Err(format!("serde shim: cannot derive for {other}")),
    };
    Ok(Item { name, shape })
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Splits a brace-group token stream into top-level comma-separated
/// chunks, treating `<…>` nesting as one level (groups are atomic).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn count_top_level_items(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

/// Field names of a named-field struct body.
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0usize;
        skip_attrs_and_vis(&chunk, &mut i);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            _ => return Err("serde shim: expected field name".into()),
        }
    }
    Ok(names)
}

fn enum_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut out = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = 0usize;
        skip_attrs_and_vis(&chunk, &mut i);
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde shim: expected variant name".into()),
        };
        i += 1;
        let fields = match chunk.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantFields::Tuple(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantFields::Named(named_fields(g.stream())?)
            }
            _ => VariantFields::Unit,
        };
        out.push(Variant { name, fields });
    }
    Ok(out)
}
