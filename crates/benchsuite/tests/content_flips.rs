//! The array-content suite: the guarded kernel must flip serial →
//! parallel with `--content` on (with `content_refute` provenance), the
//! full-definition kernel must demote FIRSTPRIVATE → PRIVATE in the
//! emitted clauses AND execute bitwise-identically to the sequential
//! run under the demoted plan, and the negative twin must not flip.
//! Every flip is cross-validated by the dynamic race oracle.

use benchsuite::{content_kernels, ContentKernel};
use dataflow::{Analyzer, Options};
use interp::Machine;
use privatize::{judge_all, LoopVerdict};

struct Prep {
    program: fortran::Program,
    sema: fortran::ProgramSema,
    hsg: hsg::Hsg,
}

fn prep(src: &str) -> Prep {
    let program = fortran::parse_program(src).unwrap();
    let sema = fortran::analyze(&program).unwrap();
    let hsg = hsg::build_hsg(&program).unwrap();
    Prep { program, sema, hsg }
}

fn content_opts() -> Options {
    Options {
        content: true,
        ..Options::default()
    }
}

fn judge(p: &Prep, k: &ContentKernel, opts: Options) -> LoopVerdict {
    let mut az = Analyzer::new(&p.program, &p.sema, &p.hsg, opts);
    az.run();
    judge_all(&az.loops)
        .into_iter()
        .find(|v| v.routine == k.routine && v.var == k.var && v.depth == 0)
        .unwrap_or_else(|| panic!("{}: target loop missing", k.tag))
}

#[test]
fn content_pass_flips_only_the_flip_kernels() {
    for k in content_kernels() {
        let p = prep(k.source);
        let off = judge(&p, &k, Options::default());
        let on = judge(&p, &k, content_opts());
        if k.flips {
            assert!(
                !off.parallel_as_is && !off.parallel_after_privatization,
                "{}: expected serial with content off, got parallel",
                k.tag
            );
            assert!(
                on.parallel_as_is || on.parallel_after_privatization,
                "{}: expected parallel with content on, got {:?}",
                k.tag,
                on.blockers
            );
            for arr in k.privatized {
                assert!(
                    on.privatized.iter().any(|a| a == arr),
                    "{}: array {arr} not privatized",
                    k.tag
                );
            }
            assert!(
                on.provenance.iter().any(|e| e.op == "content_refute"),
                "{}: no content_refute provenance in {:?}",
                k.tag,
                on.provenance
            );
        } else {
            // One-directional guarantee: the pass may only add parallel
            // loops, never take one away.
            assert_eq!(
                off.parallel_as_is || off.parallel_after_privatization,
                on.parallel_as_is || on.parallel_after_privatization,
                "{}: content toggled a non-flip kernel",
                k.tag
            );
        }
    }
}

#[test]
fn negative_twin_keeps_its_ue() {
    // ckc reads under a different guard than it writes; the refutation
    // must not fire and the loop must stay serial even with content on.
    let k = content_kernels()
        .into_iter()
        .find(|k| k.tag == "ckc")
        .unwrap();
    let p = prep(k.source);
    let on = judge(&p, &k, content_opts());
    assert!(
        !on.parallel_as_is && !on.parallel_after_privatization,
        "ckc: mismatched guards must not be refuted"
    );
    assert!(
        on.provenance.iter().all(|e| e.op != "content_refute"),
        "ckc: unexpected content_refute in {:?}",
        on.provenance
    );
}

#[test]
fn content_flips_pass_the_race_oracle() {
    for k in content_kernels().into_iter().filter(|k| k.flips) {
        let p = prep(k.source);
        let mut az = Analyzer::new(&p.program, &p.sema, &p.hsg, content_opts());
        az.run();
        let verdicts = judge_all(&az.loops);
        let report = raceoracle::validate(&p.program, &p.sema, &verdicts);
        assert_eq!(
            report.soundness_violations, 0,
            "{}: race oracle violations: {:?}",
            k.tag, report.loops
        );
        assert!(report.confirmed > 0, "{}: nothing confirmed", k.tag);
    }
}

/// The FIRSTPRIVATE → PRIVATE demotion on ckb, end to end: clause
/// shape, executable plan, and bitwise-identical threaded execution.
#[test]
fn content_demotes_firstprivate_to_private() {
    let k = content_kernels()
        .into_iter()
        .find(|k| k.tag == "ckb")
        .unwrap();
    let p = prep(k.source);

    let transform = |opts: Options| {
        let mut az = Analyzer::new(&p.program, &p.sema, &p.hsg, opts);
        az.run();
        let verdicts = judge_all(&az.loops);
        let (loops, _, _) = az.finish();
        codegen::transform(&p.program, &p.sema, &loops, &verdicts)
    };

    // Baseline: w is live after the loop and the analysis cannot prove
    // full definition, so the copy is seeded (FIRSTPRIVATE LASTPRIVATE).
    let off = transform(Options::default());
    let lt = off.loop_transform(k.routine, k.var).expect("transformed");
    assert!(lt.clauses.firstprivate.contains(&"w".to_string()), "{lt:?}");
    assert!(lt.clauses.lastprivate.contains(&"w".to_string()), "{lt:?}");

    // With the content pass: full definition proved, copy-in demoted.
    let on = transform(content_opts());
    let lt = on.loop_transform(k.routine, k.var).expect("transformed");
    assert!(
        !lt.clauses.firstprivate.contains(&"w".to_string()),
        "content must demote the copy-in: {lt:?}"
    );
    assert!(lt.clauses.lastprivate.contains(&"w".to_string()), "{lt:?}");
    assert!(lt.planned, "{:?}", lt.plan_note);
    assert!(
        lt.provenance
            .iter()
            .any(|e| e.op == "clause" && e.subject == "w" && e.result == "LASTPRIVATE"),
        "{:?}",
        lt.provenance
    );

    // The demoted plan zero-scrubs w per thread; execution must still be
    // bitwise-identical to sequential because every element is written
    // before it is read, every iteration.
    let m = Machine::new(&p.program, &p.sema);
    let (seq_mem, _) = m.run().unwrap();
    for threads in [2, 4] {
        let (par_mem, stats) = m.run_parallel(&on.plan, threads).unwrap();
        for (h, (s, q)) in seq_mem.arrays.iter().zip(&par_mem.arrays).enumerate() {
            assert_eq!(s.data, q.data, "array {h} diverged with {threads} threads");
        }
        assert!(stats.parallel_iterations > 0);
    }

    // And the demoted verdict still survives the race oracle.
    let mut az = Analyzer::new(&p.program, &p.sema, &p.hsg, content_opts());
    az.run();
    let verdicts = judge_all(&az.loops);
    let report = raceoracle::validate(&p.program, &p.sema, &verdicts);
    assert_eq!(report.soundness_violations, 0, "{:?}", report.loops);
}
