//! Degradation soundness over the whole benchmark suite: starving the
//! analyzer of fuel may only move verdicts in the conservative
//! direction (parallel → serial, privatizable → not), and whatever
//! parallelism a starved run still claims must survive the dynamic
//! race oracle.

use benchsuite::kernels;
use panorama::{analyze_source, analyze_source_limited, FuelLimits, Options};

fn starve(src: &str, fuel: u64) -> panorama::Analysis {
    analyze_source_limited(
        src,
        Options::default(),
        None,
        FuelLimits {
            steps: Some(fuel),
            ..FuelLimits::unlimited()
        },
    )
    .unwrap()
}

#[test]
fn fuel_starvation_only_flips_verdicts_conservatively() {
    for k in kernels() {
        let full = analyze_source(k.source, Options::default()).unwrap();
        for fuel in [0u64, 1, 4, 16, 64, 256, 1024] {
            let starved = starve(k.source, fuel);
            assert_eq!(
                starved.verdicts.len(),
                full.verdicts.len(),
                "{}: fuel {fuel} changed the loop set",
                k.loop_label
            );
            for v in &starved.verdicts {
                let f = full
                    .verdicts
                    .iter()
                    .find(|f| f.id == v.id)
                    .unwrap_or_else(|| {
                        panic!(
                            "{}: verdict {} vanished under fuel {fuel}",
                            k.loop_label, v.id
                        )
                    });
                if v.parallel_as_is {
                    assert!(
                        f.parallel_as_is,
                        "{}: fuel {fuel} invented parallelism for {}",
                        k.loop_label, v.id
                    );
                }
                if v.parallel_after_privatization {
                    assert!(
                        f.parallel_after_privatization,
                        "{}: fuel {fuel} invented privatizability for {}",
                        k.loop_label, v.id
                    );
                }
                for a in &v.arrays {
                    if a.privatizable {
                        let fa = f.arrays.iter().find(|fa| fa.array == a.array);
                        assert!(
                            fa.is_some_and(|fa| fa.privatizable),
                            "{}: fuel {fuel} invented privatizability of `{}` in {}",
                            k.loop_label,
                            a.array,
                            v.id
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn starved_runs_are_flagged_degraded_exactly_when_widened() {
    // Fuel 0 must degrade every kernel; unlimited fuel must degrade
    // none — the flag is an honest account of widening.
    for k in kernels() {
        assert!(
            starve(k.source, 0).degraded(),
            "{}: zero fuel not flagged degraded",
            k.loop_label
        );
        let full = analyze_source(k.source, Options::default()).unwrap();
        assert!(
            !full.degraded(),
            "{}: unlimited run flagged degraded",
            k.loop_label
        );
    }
}

#[test]
fn starved_parallel_claims_survive_the_race_oracle() {
    // Whatever parallelism survives starvation is cross-checked
    // dynamically: the oracle must find no soundness violation.
    for k in kernels() {
        for fuel in [16u64, 128] {
            let mut starved = starve(k.source, fuel);
            let report = starved.run_oracle();
            assert!(
                report.sound(),
                "{}: fuel {fuel} produced an unsound parallel claim: {report:?}",
                k.loop_label
            );
        }
    }
}
