//! The value-range flip suite: each `range_kernels()` loop must be
//! judged serial with the pass off, parallel (after privatization)
//! with the pass on, carry `range_refute`/`range_compare` provenance
//! explaining why, and survive the dynamic race oracle.

use benchsuite::{range_kernels, RangeKernel};
use dataflow::{Analyzer, Options};
use privatize::{judge_all, LoopVerdict};

struct Prep {
    program: fortran::Program,
    sema: fortran::ProgramSema,
    hsg: hsg::Hsg,
}

fn prep(src: &str) -> Prep {
    let program = fortran::parse_program(src).unwrap();
    let sema = fortran::analyze(&program).unwrap();
    let hsg = hsg::build_hsg(&program).unwrap();
    Prep { program, sema, hsg }
}

fn judge(p: &Prep, k: &RangeKernel, opts: Options) -> LoopVerdict {
    let mut az = Analyzer::new(&p.program, &p.sema, &p.hsg, opts);
    az.run();
    judge_all(&az.loops)
        .into_iter()
        .find(|v| v.routine == k.routine && v.var == k.var && v.depth == 0)
        .unwrap_or_else(|| panic!("{}: target loop missing", k.tag))
}

#[test]
fn range_pass_flips_the_kernels() {
    for k in range_kernels() {
        let p = prep(k.source);

        // Pass off: the Δ-guard stays unknown, the loop stays serial.
        let off = judge(
            &p,
            &k,
            Options {
                value_range: false,
                ..Options::default()
            },
        );
        assert!(
            !off.parallel_as_is && !off.parallel_after_privatization,
            "{}: expected serial with value_range off, got {:?}",
            k.tag,
            off.blockers
        );

        // Pass on (the default): parallel, with the expected storage
        // privatized and range provenance explaining the refutation.
        let on = judge(&p, &k, Options::default());
        assert!(
            on.parallel_as_is || on.parallel_after_privatization,
            "{}: expected parallel with value_range on, got {:?}",
            k.tag,
            on.blockers
        );
        for arr in k.privatized {
            assert!(
                on.privatized.iter().any(|a| a == arr),
                "{}: array {arr} not privatized",
                k.tag
            );
        }
        for s in k.private_scalars {
            assert!(
                on.private_scalars.iter().any(|v| v == s),
                "{}: scalar {s} not private",
                k.tag
            );
        }
        assert!(
            on.provenance
                .iter()
                .any(|e| e.op == "range_compare" || e.op == "range_refute"),
            "{}: no range provenance in {:?}",
            k.tag,
            on.provenance
        );
    }
}

#[test]
fn range_flips_pass_the_race_oracle() {
    for k in range_kernels() {
        let p = prep(k.source);
        let mut az = Analyzer::new(&p.program, &p.sema, &p.hsg, Options::default());
        az.run();
        let verdicts = judge_all(&az.loops);
        let report = raceoracle::validate(&p.program, &p.sema, &verdicts);
        assert_eq!(
            report.soundness_violations, 0,
            "{}: race oracle violations: {:?}",
            k.tag, report.loops
        );
        // The target loop itself must be dynamically exercised and
        // confirmed, not skipped.
        assert!(report.confirmed > 0, "{}: nothing confirmed", k.tag);
    }
}
