//! The heart of the reproduction: every kernel's privatization must
//! succeed exactly when the techniques Table 1 marks as needed are
//! enabled, all kernels must execute, and parallel execution with the
//! derived privatization plan must match sequential execution.

use benchsuite::{fig1_kernels, kernels, Kernel};
use dataflow::{Analyzer, Options};
use interp::{ArrayData, LoopPlan, Machine, ParallelPlan};
use privatize::judge_all;

struct Prep {
    program: fortran::Program,
    sema: fortran::ProgramSema,
    hsg: hsg::Hsg,
}

fn prep(src: &str) -> Prep {
    let program = fortran::parse_program(src).unwrap();
    let sema = fortran::analyze(&program).unwrap();
    let hsg = hsg::build_hsg(&program).unwrap();
    Prep { program, sema, hsg }
}

/// Do all the kernel's listed arrays privatize under these options?
fn privatizes(p: &Prep, k: &Kernel, opts: Options) -> bool {
    let mut az = Analyzer::new(&p.program, &p.sema, &p.hsg, opts);
    az.run();
    let verdicts = judge_all(&az.loops);
    let v = verdicts
        .iter()
        .find(|v| v.routine == k.routine && v.var == k.var && v.depth == 0)
        .unwrap_or_else(|| panic!("{}: target loop missing", k.loop_label));
    k.privatizable.iter().all(|arr| {
        v.arrays
            .iter()
            .find(|a| a.array == *arr)
            .is_some_and(|a| a.privatizable)
    })
}

#[test]
fn table1_technique_matrix() {
    for k in kernels() {
        let p = prep(k.source);
        for t1 in [false, true] {
            for t2 in [false, true] {
                for t3 in [false, true] {
                    let opts = Options {
                        symbolic: t1,
                        if_conditions: t2,
                        interprocedural: t3,
                        ..Options::default()
                    };
                    let expect = (!k.needs.t1 || t1) && (!k.needs.t2 || t2) && (!k.needs.t3 || t3);
                    let got = privatizes(&p, &k, opts);
                    assert_eq!(
                        got, expect,
                        "{}: T1={t1} T2={t2} T3={t3}: expected privatized={expect}",
                        k.loop_label
                    );
                }
            }
        }
    }
}

#[test]
fn hard_arrays_need_forall() {
    for k in kernels() {
        if k.hard.is_empty() {
            continue;
        }
        let p = prep(k.source);
        // Base analysis: hard arrays not privatizable (Table 2 status no).
        let mut az = Analyzer::new(&p.program, &p.sema, &p.hsg, Options::default());
        az.run();
        let verdicts = judge_all(&az.loops);
        let v = verdicts
            .iter()
            .find(|v| v.routine == k.routine && v.var == k.var && v.depth == 0)
            .unwrap();
        for arr in k.hard {
            let a = v.arrays.iter().find(|a| &a.array == arr).unwrap();
            assert!(
                !a.privatizable,
                "{}: {arr} should need the forall extension",
                k.loop_label
            );
        }
        // ∀-extension: privatizable.
        let mut az2 = Analyzer::new(&p.program, &p.sema, &p.hsg, Options::full());
        az2.run();
        let verdicts2 = judge_all(&az2.loops);
        let v2 = verdicts2
            .iter()
            .find(|v| v.routine == k.routine && v.var == k.var && v.depth == 0)
            .unwrap();
        for arr in k.hard {
            let a = v2.arrays.iter().find(|a| &a.array == arr).unwrap();
            assert!(
                a.privatizable,
                "{}: {arr} should privatize under the forall extension",
                k.loop_label
            );
        }
    }
}

#[test]
fn kernels_execute_sequentially() {
    for k in kernels() {
        let p = prep(k.source);
        let m = Machine::new(&p.program, &p.sema);
        let (_, stats) = m
            .run()
            .unwrap_or_else(|e| panic!("{}: runtime error {e}", k.loop_label));
        assert!(stats.ops > 1000, "{}: trivial execution", k.loop_label);
    }
    for (tag, _, _, _, src) in fig1_kernels() {
        let p = prep(src);
        let m = Machine::new(&p.program, &p.sema);
        m.run().unwrap_or_else(|e| panic!("fig{tag}: {e}"));
    }
}

#[test]
fn parallel_execution_matches_sequential() {
    for k in kernels() {
        let p = prep(k.source);
        // Derive the plan from the verdicts (full options).
        let mut az = Analyzer::new(&p.program, &p.sema, &p.hsg, Options::full());
        az.run();
        let verdicts = judge_all(&az.loops);
        let v = verdicts
            .iter()
            .find(|v| v.routine == k.routine && v.var == k.var && v.depth == 0)
            .unwrap();
        if !v.parallel_after_privatization {
            // (only the base-analysis-hard kernels could hit this; with
            // forall on everything should pass)
            panic!(
                "{}: not parallel after privatization: {:?}",
                k.loop_label, v.blockers
            );
        }
        let mut plan = ParallelPlan::new();
        plan.add(
            k.routine,
            k.var,
            v.line,
            LoopPlan {
                // FIRSTPRIVATE (copy-in) for every privatized array: the
                // conservative clause that is correct whether or not the
                // loop reads pre-loop values.
                firstprivate: v.privatized.clone(),
                private_scalars: v.private_scalars.clone(),
                copy_out: v
                    .arrays
                    .iter()
                    .filter(|a| a.privatizable && a.needs_copy_out)
                    .map(|a| a.array.clone())
                    .collect(),
                scalar_copy_out: v.private_scalars.clone(),
                sum_reductions: v.reductions.clone(),
                ..Default::default()
            },
        );

        let m = Machine::new(&p.program, &p.sema);
        let (seq_mem, _) = m.run().unwrap();
        let (par_mem, stats) = m
            .run_parallel(&plan, 4)
            .unwrap_or_else(|e| panic!("{}: parallel run failed: {e}", k.loop_label));
        assert!(stats.parallel_iterations > 0, "{}", k.loop_label);

        // Compare all arrays except privatized-without-copy-out ones.
        let skip: Vec<usize> = {
            let main = p.program.routine(k.routine).unwrap();
            let table = &p.sema.tables[&main.name];
            let _ = table;
            // privatized arrays are allocated in declaration order within
            // the main frame; find their handles by replaying allocation
            // order: locals are allocated in `arrays` order.
            main.arrays
                .iter()
                .enumerate()
                .filter(|(_, (n, _))| {
                    v.privatized.contains(n)
                        && !v.arrays.iter().any(|a| &a.array == n && a.needs_copy_out)
                })
                .map(|(idx, _)| idx)
                .collect()
        };
        for (h, (s, q)) in seq_mem.arrays.iter().zip(&par_mem.arrays).enumerate() {
            if skip.contains(&h) {
                continue;
            }
            if let (ArrayData::Real(sv), ArrayData::Real(qv)) = (&s.data, &q.data) {
                assert_eq!(
                    sv, qv,
                    "{}: array handle {h} diverged under parallel execution",
                    k.loop_label
                );
            }
        }
    }
}

#[test]
fn fig1_kernels_analyze() {
    for (tag, routine, var, array, src) in fig1_kernels() {
        let p = prep(src);
        let opts = if tag == "1a" {
            Options::full()
        } else {
            Options::default()
        };
        let mut az = Analyzer::new(&p.program, &p.sema, &p.hsg, opts);
        az.run();
        let verdicts = judge_all(&az.loops);
        let v = verdicts
            .iter()
            .find(|v| v.routine == routine && v.var == var && v.depth == 0)
            .unwrap();
        let a = v
            .arrays
            .iter()
            .find(|a| a.array == array)
            .unwrap_or_else(|| panic!("fig{tag}: array {array} not analyzed"));
        assert!(a.privatizable, "fig{tag}: {array} must privatize: {v:?}");
    }
}
