//! Writes every benchsuite kernel to `<outdir>/<nn>_<label>.f` plus a
//! `manifest.tsv` (filename, program, loop label, kernel order), so
//! shell jobs — the CI `lint-golden` job in particular — can drive the
//! `panorama` CLI over the exact sources the library tests use.

use std::fmt::Write as _;
use std::path::Path;

fn main() {
    let outdir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "kernels.d".to_string());
    let dir = Path::new(&outdir);
    std::fs::create_dir_all(dir).expect("create output directory");
    let mut manifest = String::new();
    for (n, k) in benchsuite::kernels().iter().enumerate() {
        // Loop labels contain `/` (e.g. `interf/1000`); keep filenames
        // flat and sortable in kernel order.
        let fname = format!("{n:02}_{}.f", k.loop_label.replace('/', "_"));
        std::fs::write(dir.join(&fname), k.source).expect("write kernel");
        writeln!(manifest, "{fname}\t{}\t{}", k.program, k.loop_label).unwrap();
    }
    std::fs::write(dir.join("manifest.tsv"), manifest).expect("write manifest");
    // The range-flip kernels and the range-lint demo go in a separate
    // manifest so jobs driving the Table 1/2 corpus are unaffected.
    let mut range_manifest = String::new();
    for k in benchsuite::range_kernels() {
        let fname = format!("range_{}.f", k.tag);
        std::fs::write(dir.join(&fname), k.source).expect("write range kernel");
        writeln!(range_manifest, "{fname}\trange\t{}", k.tag).unwrap();
    }
    std::fs::write(dir.join("range_rdemo.f"), benchsuite::range_lint_demo())
        .expect("write range demo");
    writeln!(range_manifest, "range_rdemo.f\trange\trdemo").unwrap();
    std::fs::write(dir.join("range_manifest.tsv"), range_manifest).expect("write range manifest");
    // Likewise the content-flip kernels and the content-lint demo, for
    // the `content-golden` job.
    let mut content_manifest = String::new();
    for k in benchsuite::content_kernels() {
        let fname = format!("content_{}.f", k.tag);
        std::fs::write(dir.join(&fname), k.source).expect("write content kernel");
        writeln!(content_manifest, "{fname}\tcontent\t{}", k.tag).unwrap();
    }
    std::fs::write(dir.join("content_cdemo.f"), benchsuite::content_lint_demo())
        .expect("write content demo");
    writeln!(content_manifest, "content_cdemo.f\tcontent\tcdemo").unwrap();
    std::fs::write(dir.join("content_manifest.tsv"), content_manifest)
        .expect("write content manifest");
    println!("wrote {} kernels to {outdir}", benchsuite::kernels().len());
}
