//! Writes every benchsuite kernel to `<outdir>/<nn>_<label>.f` plus a
//! `manifest.tsv` (filename, program, loop label, kernel order), so
//! shell jobs — the CI `lint-golden` job in particular — can drive the
//! `panorama` CLI over the exact sources the library tests use.

use std::fmt::Write as _;
use std::path::Path;

fn main() {
    let outdir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "kernels.d".to_string());
    let dir = Path::new(&outdir);
    std::fs::create_dir_all(dir).expect("create output directory");
    let mut manifest = String::new();
    for (n, k) in benchsuite::kernels().iter().enumerate() {
        // Loop labels contain `/` (e.g. `interf/1000`); keep filenames
        // flat and sortable in kernel order.
        let fname = format!("{n:02}_{}.f", k.loop_label.replace('/', "_"));
        std::fs::write(dir.join(&fname), k.source).expect("write kernel");
        writeln!(manifest, "{fname}\t{}\t{}", k.program, k.loop_label).unwrap();
    }
    std::fs::write(dir.join("manifest.tsv"), manifest).expect("write manifest");
    println!("wrote {} kernels to {outdir}", benchsuite::kernels().len());
}
