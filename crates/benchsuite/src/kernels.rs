//! The kernel sources and their metadata.

use crate::Needs;

/// One evaluation kernel: a runnable program whose designated loop is the
/// privatization target of Tables 1–2.
#[derive(Clone, Copy, Debug)]
pub struct Kernel {
    /// Benchmark program name (Table 1 column 1).
    pub program: &'static str,
    /// Routine/loop label as the paper writes it (e.g. `interf/1000`).
    pub loop_label: &'static str,
    /// Routine containing the target loop.
    pub routine: &'static str,
    /// Target loop index variable.
    pub var: &'static str,
    /// Full Fortran source.
    pub source: &'static str,
    /// Arrays Table 2 reports as automatically privatizable.
    pub privatizable: &'static [&'static str],
    /// Arrays Table 2 lists with status `no` (need ∀/∃ quantifiers).
    pub hard: &'static [&'static str],
    /// Techniques Table 1 says the loop needs.
    pub needs: Needs,
    /// Speedup reported by the paper (Alliant FX/8; ARC2D estimated).
    pub paper_speedup: f64,
    /// Percentage of sequential execution time (Table 1).
    pub paper_pct_seq: f64,
}

// --------------------------------------------------------------------
// TRACK nlfilt/300 — interprocedural only: constant-bound work arrays
// filled and consumed through calls.
// --------------------------------------------------------------------
const TRACK_NLFILT: &str = "
      PROGRAM nlfilt
      REAL p1(60), p2(60), p(60), pp1(60), pp2(60), pp(60), xsd(60)
      REAL r(100)
      INTEGER i
      DO i = 1, 100
        call predict(p1, p2, p, i)
        call propag(pp1, pp2, pp, p1, p2, p)
        call deviat(xsd, pp1, pp2, pp)
        call score(r, xsd, i)
      ENDDO
      END

      SUBROUTINE predict(p1, p2, p, i)
      REAL p1(60), p2(60), p(60)
      INTEGER i, k
      DO k = 1, 60
        p1(k) = float(i + k)
        p2(k) = float(i) * 0.5 + k
        p(k) = p1(k) - p2(k)
      ENDDO
      END

      SUBROUTINE propag(pp1, pp2, pp, p1, p2, p)
      REAL pp1(60), pp2(60), pp(60), p1(60), p2(60), p(60)
      INTEGER k
      DO k = 1, 60
        pp1(k) = p1(k) * 1.01
        pp2(k) = p2(k) * 0.99
        pp(k) = p(k) + pp1(k) - pp2(k)
      ENDDO
      END

      SUBROUTINE deviat(xsd, pp1, pp2, pp)
      REAL xsd(60), pp1(60), pp2(60), pp(60)
      INTEGER k
      DO k = 1, 60
        xsd(k) = abs(pp(k)) + abs(pp1(k) - pp2(k))
      ENDDO
      END

      SUBROUTINE score(r, xsd, i)
      REAL r(100), xsd(60)
      INTEGER i, k
      REAL s
      s = 0.0
      DO k = 1, 60
        s = s + xsd(k)
      ENDDO
      r(i) = s
      END
";

// --------------------------------------------------------------------
// MDG interf/1000 — needs all three techniques. xl/yl/zl follow the
// OCEAN guarded-call pattern, rs/ff/gg the symbolic direct pattern, and
// rl is the Fig. 1(a) counter case (Table 2 status: no).
// --------------------------------------------------------------------
const MDG_INTERF: &str = "
      PROGRAM interf
      REAL xl(200), yl(200), zl(200), rs(200), ff(200), gg(200)
      REAL rl(20), b(20), res(100), res2(100)
      REAL cut2, boxl, ttemp
      INTEGER i, k, kc, n9, nmol1
      nmol1 = 100
      n9 = int(float(150))
      cut2 = 1.5
      boxl = 10.0
      DO i = 1, nmol1
C       --- guarded-call working vectors (needs T1+T2+T3) ---
        call coords(xl, yl, zl, boxl, n9, i)
        call forces(ff, xl, yl, zl, boxl, n9)
        call squares(rs, xl, yl, zl, boxl, n9)
        call combine(gg, rs, ff, boxl, n9)
        call emit(res, gg, boxl, n9, i)
C       --- the Fig 1(a) pattern on rl (hard: needs forall) ---
        kc = 0
        DO k = 1, 9
          b(k) = float(mod(i * k, 7)) * 0.3
          IF (b(k) .GT. cut2) kc = kc + 1
        ENDDO
        DO k = 2, 5
          IF (b(k+4) .GT. cut2) goto 1
          rl(k+4) = float(i + k)
1       ENDDO
        ttemp = 0.0
        IF (kc .NE. 0) goto 2
        DO k = 11, 14
          ttemp = ttemp + rl(k-5)
        ENDDO
2       CONTINUE
        res2(i) = ttemp
      ENDDO
      END

      SUBROUTINE coords(xl, yl, zl, boxl, nn, i)
      REAL xl(*), yl(*), zl(*)
      REAL boxl
      INTEGER nn, i, k
      IF (boxl .GT. 64.0) RETURN
      DO k = 1, nn
        xl(k) = float(i + k) * 0.1
        yl(k) = float(i - k) * 0.1
        zl(k) = float(i * 2 + k) * 0.05
      ENDDO
      END

      SUBROUTINE forces(ff, xl, yl, zl, boxl, nn)
      REAL ff(*), xl(*), yl(*), zl(*)
      REAL boxl
      INTEGER nn, k
      IF (boxl .GT. 64.0) RETURN
      DO k = 1, nn
        ff(k) = xl(k) + yl(k) * zl(k)
      ENDDO
      END

      SUBROUTINE squares(rs, xl, yl, zl, boxl, nn)
      REAL rs(*), xl(*), yl(*), zl(*)
      REAL boxl
      INTEGER nn, k
      IF (boxl .GT. 64.0) RETURN
      DO k = 1, nn
        rs(k) = xl(k) * xl(k) + yl(k) * yl(k) + zl(k) * zl(k)
      ENDDO
      END

      SUBROUTINE combine(gg, rs, ff, boxl, nn)
      REAL gg(*), rs(*), ff(*)
      REAL boxl
      INTEGER nn, k
      IF (boxl .GT. 64.0) RETURN
      DO k = 1, nn
        gg(k) = rs(k) * ff(k)
      ENDDO
      END

      SUBROUTINE emit(res, gg, boxl, nn, i)
      REAL res(*), gg(*)
      REAL boxl, s
      INTEGER nn, i, k
      IF (boxl .GT. 64.0) RETURN
      s = 0.0
      DO k = 1, nn
        s = s + gg(k)
      ENDDO
      res(i) = s
      END
";

// --------------------------------------------------------------------
// MDG poteng/2000 — interprocedural only (constant bounds, no guards).
// --------------------------------------------------------------------
const MDG_POTENG: &str = "
      PROGRAM poteng
      REAL rs(120), rl(120), xl(120), yl(120), zl(120)
      REAL res(80)
      INTEGER i
      DO i = 1, 80
        call waters(xl, yl, zl, i)
        call dists(rs, rl, xl, yl, zl)
        call energy(res, rs, rl, i)
      ENDDO
      END

      SUBROUTINE waters(xl, yl, zl, i)
      REAL xl(120), yl(120), zl(120)
      INTEGER i, k
      DO k = 1, 120
        xl(k) = float(i + k) * 0.01
        yl(k) = float(i) * 0.02 + k
        zl(k) = float(k) * 0.03 - i
      ENDDO
      END

      SUBROUTINE dists(rs, rl, xl, yl, zl)
      REAL rs(120), rl(120), xl(120), yl(120), zl(120)
      INTEGER k
      DO k = 1, 120
        rs(k) = xl(k) * xl(k) + yl(k) * yl(k)
        rl(k) = rs(k) + zl(k) * zl(k)
      ENDDO
      END

      SUBROUTINE energy(res, rs, rl, i)
      REAL res(80), rs(120), rl(120)
      INTEGER i, k
      REAL s
      s = 0.0
      DO k = 1, 120
        s = s + rs(k) - 0.5 * rl(k)
      ENDDO
      res(i) = s
      END
";

// --------------------------------------------------------------------
// TRFD olda/100 — symbolic analysis only: triangular-style working
// vectors with symbolic extents, no calls, no IFs.
// --------------------------------------------------------------------
const TRFD_OLDA100: &str = "
      PROGRAM olda1
      REAL xrsiq(300), xij(300), v(200)
      INTEGER i, j, mrs, num
      num = 120
      mrs = int(float(250))
      DO i = 1, num
        DO j = 1, mrs
          xrsiq(j) = float(i + j) * 0.5
        ENDDO
        DO j = 1, mrs
          xij(j) = xrsiq(j) * 2.0 + i
        ENDDO
        v(i) = xij(1) + xij(mrs)
      ENDDO
      END
";

// --------------------------------------------------------------------
// TRFD olda/300 — same technique profile, different working arrays.
// --------------------------------------------------------------------
const TRFD_OLDA300: &str = "
      PROGRAM olda3
      REAL xijks(300), xkl(300), v(200)
      INTEGER i, j, nrs, num
      num = 120
      nrs = int(float(260))
      DO i = 1, num
        DO j = 1, nrs
          xijks(j) = float(i) + j * 0.25
        ENDDO
        DO j = 1, nrs
          xkl(j) = xijks(j) - 0.125 * j
        ENDDO
        v(i) = xkl(nrs) + xkl(1)
      ENDDO
      END
";

/// Builds an OCEAN-style kernel program text.
macro_rules! ocean_kernel {
    ($name:literal, $extra:literal, $extra_calls:literal) => {
        concat!(
            "
      PROGRAM ",
            $name,
            "
      REAL cwork(400)",
            $extra,
            "
      REAL r(64)
      REAL x
      INTEGER i, m, n
      n = 64
      m = int(float(350))
      DO i = 1, n
        x = float(i)
        call filtr(cwork, x, m)",
            $extra_calls,
            "
        call gather(r, cwork, x, m, i)
      ENDDO
      END

      SUBROUTINE filtr(b, x, mm)
      REAL b(*)
      REAL x
      INTEGER mm, j
      IF (x .GT. 100.0) RETURN
      DO j = 1, mm
        b(j) = x * 0.5 + j
      ENDDO
      END

      SUBROUTINE gather(r, b, x, mm, i)
      REAL r(*), b(*)
      REAL x, s
      INTEGER mm, i, j
      IF (x .GT. 100.0) RETURN
      s = 0.0
      DO j = 1, mm
        s = s + b(j)
      ENDDO
      r(i) = s
      END
"
        )
    };
}

const OCEAN_270: &str = ocean_kernel!("ocean2", "", "");
const OCEAN_480: &str = "
      PROGRAM ocean4
      REAL cwork(400), cwork2(400)
      REAL r(64)
      REAL x
      INTEGER i, m, n
      n = 64
      m = int(float(350))
      DO i = 1, n
        x = float(i)
        call filtr(cwork, x, m)
        call scale2(cwork2, cwork, x, m)
        call gather(r, cwork2, x, m, i)
      ENDDO
      END

      SUBROUTINE filtr(b, x, mm)
      REAL b(*)
      REAL x
      INTEGER mm, j
      IF (x .GT. 100.0) RETURN
      DO j = 1, mm
        b(j) = x * 0.5 + j
      ENDDO
      END

      SUBROUTINE scale2(c, b, x, mm)
      REAL c(*), b(*)
      REAL x
      INTEGER mm, j
      IF (x .GT. 100.0) RETURN
      DO j = 1, mm
        c(j) = b(j) * 1.5 - x
      ENDDO
      END

      SUBROUTINE gather(r, b, x, mm, i)
      REAL r(*), b(*)
      REAL x, s
      INTEGER mm, i, j
      IF (x .GT. 100.0) RETURN
      s = 0.0
      DO j = 1, mm
        s = s + b(j)
      ENDDO
      r(i) = s
      END
";
const OCEAN_500: &str = ocean_kernel!("ocean5", "", "");

// --------------------------------------------------------------------
// ARC2D filerx/15 — the Fig. 1(b) pattern: symbolic bounds plus a
// loop-invariant IF condition (T1 + T2, no calls).
// --------------------------------------------------------------------
const ARC2D_FILERX: &str = "
      PROGRAM filerx
      REAL work(600), r(40)
      REAL q
      LOGICAL p
      INTEGER i, j, jlow, jup, jmax
      jmax = int(float(500))
      jlow = int(float(2))
      jup = int(float(499))
      p = .FALSE.
      DO i = 1, 40
        DO j = jlow, jup
          work(j) = float(i + j) * 0.1
        ENDDO
        IF (.NOT. p) THEN
          work(jmax) = float(i)
        ENDIF
        q = 0.0
        DO j = jlow, jup
          q = q + work(j) + work(jmax)
        ENDDO
        r(i) = q
      ENDDO
      END
";

// --------------------------------------------------------------------
// ARC2D filery/39 — symbolic bounds only (T1).
// --------------------------------------------------------------------
const ARC2D_FILERY: &str = "
      PROGRAM filery
      REAL work(600), r(40)
      REAL q
      INTEGER i, j, klow, kup
      klow = 2
      kup = int(float(550))
      DO i = 1, 40
        DO j = klow, kup
          work(j) = float(i) * 0.2 + j
        ENDDO
        q = 0.0
        DO j = klow, kup
          q = q + work(j)
        ENDDO
        r(i) = q
      ENDDO
      END
";

/// Builds a STEPF-style kernel (T1 + T3: symbolic bounds through calls,
/// no IF guards).
macro_rules! stepf_kernel {
    ($name:literal) => {
        concat!(
            "
      PROGRAM ",
            $name,
            "
      REAL work(600), r(48)
      INTEGER i, jmax, n
      n = 48
      jmax = int(float(520))
      DO i = 1, n
        call smooth(work, jmax, i)
        call apply(r, work, jmax, i)
      ENDDO
      END

      SUBROUTINE smooth(w, jmax, i)
      REAL w(*)
      INTEGER jmax, i, j
      DO j = 1, jmax
        w(j) = float(i + j) * 0.3
      ENDDO
      END

      SUBROUTINE apply(r, w, jmax, i)
      REAL r(*), w(*)
      REAL s
      INTEGER jmax, i, j
      s = 0.0
      DO j = 1, jmax
        s = s + w(j)
      ENDDO
      r(i) = s
      END
"
        )
    };
}

const ARC2D_STEPFX: &str = stepf_kernel!("stepfx");
const ARC2D_STEPFY: &str = stepf_kernel!("stepfy");

/// The twelve Table 1/2 kernels.
pub fn kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            program: "TRACK",
            loop_label: "nlfilt/300",
            routine: "nlfilt",
            var: "i",
            source: TRACK_NLFILT,
            privatizable: &["p1", "p2", "p", "pp1", "pp2", "pp", "xsd"],
            hard: &[],
            needs: Needs::new(false, false, true),
            paper_speedup: 5.2,
            paper_pct_seq: 40.0,
        },
        Kernel {
            program: "MDG",
            loop_label: "interf/1000",
            routine: "interf",
            var: "i",
            source: MDG_INTERF,
            privatizable: &["rs", "ff", "gg", "xl", "yl", "zl"],
            hard: &["rl"],
            needs: Needs::new(true, true, true),
            paper_speedup: 6.0,
            paper_pct_seq: 90.0,
        },
        Kernel {
            program: "MDG",
            loop_label: "poteng/2000",
            routine: "poteng",
            var: "i",
            source: MDG_POTENG,
            privatizable: &["rs", "rl", "xl", "yl", "zl"],
            hard: &[],
            needs: Needs::new(false, false, true),
            paper_speedup: 5.2,
            paper_pct_seq: 8.0,
        },
        Kernel {
            program: "TRFD",
            loop_label: "olda/100",
            routine: "olda1",
            var: "i",
            source: TRFD_OLDA100,
            privatizable: &["xrsiq", "xij"],
            hard: &[],
            needs: Needs::new(true, false, false),
            paper_speedup: 16.4,
            paper_pct_seq: 69.0,
        },
        Kernel {
            program: "TRFD",
            loop_label: "olda/300",
            routine: "olda3",
            var: "i",
            source: TRFD_OLDA300,
            privatizable: &["xijks", "xkl"],
            hard: &[],
            needs: Needs::new(true, false, false),
            paper_speedup: 12.3,
            paper_pct_seq: 29.0,
        },
        Kernel {
            program: "OCEAN",
            loop_label: "ocean/270",
            routine: "ocean2",
            var: "i",
            source: OCEAN_270,
            privatizable: &["cwork"],
            hard: &[],
            needs: Needs::new(true, true, true),
            paper_speedup: 8.0,
            paper_pct_seq: 3.0,
        },
        Kernel {
            program: "OCEAN",
            loop_label: "ocean/480",
            routine: "ocean4",
            var: "i",
            source: OCEAN_480,
            privatizable: &["cwork", "cwork2"],
            hard: &[],
            needs: Needs::new(true, true, true),
            paper_speedup: 6.1,
            paper_pct_seq: 4.0,
        },
        Kernel {
            program: "OCEAN",
            loop_label: "ocean/500",
            routine: "ocean5",
            var: "i",
            source: OCEAN_500,
            privatizable: &["cwork"],
            hard: &[],
            needs: Needs::new(true, true, true),
            paper_speedup: 6.5,
            paper_pct_seq: 3.0,
        },
        Kernel {
            program: "ARC2D",
            loop_label: "filerx/15",
            routine: "filerx",
            var: "i",
            source: ARC2D_FILERX,
            privatizable: &["work"],
            hard: &[],
            needs: Needs::new(true, true, false),
            paper_speedup: 4.0,
            paper_pct_seq: 7.0,
        },
        Kernel {
            program: "ARC2D",
            loop_label: "filery/39",
            routine: "filery",
            var: "i",
            source: ARC2D_FILERY,
            privatizable: &["work"],
            hard: &[],
            needs: Needs::new(true, false, false),
            paper_speedup: 4.0,
            paper_pct_seq: 7.0,
        },
        Kernel {
            program: "ARC2D",
            loop_label: "stepfx/300",
            routine: "stepfx",
            var: "i",
            source: ARC2D_STEPFX,
            privatizable: &["work"],
            hard: &[],
            needs: Needs::new(true, false, true),
            paper_speedup: 3.0,
            paper_pct_seq: 21.0,
        },
        Kernel {
            program: "ARC2D",
            loop_label: "stepfy/420",
            routine: "stepfy",
            var: "i",
            source: ARC2D_STEPFY,
            privatizable: &["work"],
            hard: &[],
            needs: Needs::new(true, false, true),
            paper_speedup: 3.0,
            paper_pct_seq: 16.0,
        },
    ]
}

// --------------------------------------------------------------------
// Fig. 1 pedagogical kernels (a), (b), (c) — near-verbatim from the
// paper, used by the fig1/fig5 reproductions.
// --------------------------------------------------------------------
const FIG1A: &str = "
      PROGRAM fig1a
      REAL a(20), b(20)
      REAL cut2, ttemp
      INTEGER i, k, kc, nmol1
      nmol1 = 50
      cut2 = 1.5
      DO i = 1, nmol1
        kc = 0
        DO k = 1, 9
          b(k) = float(mod(i * k, 7)) * 0.3
          IF (b(k) .GT. cut2) kc = kc + 1
        ENDDO
        DO k = 2, 5
          IF (b(k+4) .GT. cut2) goto 1
          a(k+4) = float(i + k)
1       ENDDO
        IF (kc .NE. 0) goto 2
        DO k = 11, 14
          ttemp = a(k-5) + 1.0
        ENDDO
2       CONTINUE
      ENDDO
      END
";

const FIG1B: &str = "
      PROGRAM fig1b
      REAL a(600)
      REAL q
      LOGICAL p
      INTEGER i, j, jlow, jup, jmax
      jmax = int(float(500))
      jlow = int(float(2))
      jup = int(float(499))
      p = .FALSE.
      DO i = 1, 4
        DO j = jlow, jup
          a(j) = float(i + j)
        ENDDO
        IF (.NOT. p) THEN
          a(jmax) = float(i)
        ENDIF
        DO j = jlow, jup
          q = a(j) + a(jmax)
        ENDDO
      ENDDO
      END
";

const FIG1C: &str = "
      PROGRAM fig1c
      REAL a(200)
      REAL x
      INTEGER i, m, n
      n = 30
      m = 150
      DO i = 1, n
        x = float(i)
        call in(a, x, m)
        call out(a, x, m)
      ENDDO
      END

      SUBROUTINE in(b, x, mm)
      REAL b(*)
      REAL x
      INTEGER mm, j
      IF (x .GT. 64.0) RETURN
      DO j = 1, mm
        b(j) = x + j
      ENDDO
      END

      SUBROUTINE out(b, x, mm)
      REAL b(*)
      REAL x, y
      INTEGER mm, j
      IF (x .GT. 64.0) RETURN
      DO j = 1, mm
        y = b(j)
      ENDDO
      END
";

/// The three Fig. 1 kernels: `(figure tag, target routine, loop var,
/// target array, source)`.
pub fn fig1_kernels() -> Vec<(
    &'static str,
    &'static str,
    &'static str,
    &'static str,
    &'static str,
)> {
    vec![
        ("1a", "fig1a", "i", "a", FIG1A),
        ("1b", "fig1b", "i", "a", FIG1B),
        ("1c", "fig1c", "i", "a", FIG1C),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_parse_and_check() {
        for k in kernels() {
            let p = fortran::parse_program(k.source)
                .unwrap_or_else(|e| panic!("{}: parse error {e}", k.loop_label));
            fortran::analyze(&p).unwrap_or_else(|e| panic!("{}: sema error {e}", k.loop_label));
            assert!(p.routine(k.routine).is_some(), "{}", k.loop_label);
        }
        for (tag, routine, _, _, src) in fig1_kernels() {
            let p = fortran::parse_program(src).unwrap_or_else(|e| panic!("fig{tag}: {e}"));
            fortran::analyze(&p).unwrap_or_else(|e| panic!("fig{tag}: {e}"));
            assert!(p.routine(routine).is_some());
        }
    }

    #[test]
    fn twelve_kernels_match_table1_rows() {
        let ks = kernels();
        assert_eq!(ks.len(), 12);
        // program/loop labels are unique
        let mut labels: Vec<_> = ks.iter().map(|k| k.loop_label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 12);
    }
}

// --------------------------------------------------------------------
// Range-flip kernels: loops the base symbolic analysis reports serial
// because a Δ-guard stays unknown, and the value-range pass (DESIGN.md
// §4g) proves parallel by bounding the guard symbols. Kept separate
// from `kernels()` so the Table 1/2 goldens are untouched.
// --------------------------------------------------------------------

// Conditionally-set write bound `m` (≤100) and read lower bound `n`
// (≥150) keep UE_i(w) = (n:200) disjoint from MOD_<i(w) = (1:m); the
// cross-symbol comparison n > m is only decidable from the branch
// value ranges. `w` then privatizes (first-write overlays the reads).
const RANGE_FLIP_A: &str = "
      PROGRAM rka
      REAL w(200), a(100)
      INTEGER i, k, m, n
      DO i = 1, 100
        IF (a(i) .GT. 0.0) THEN
          m = 50
        ELSE
          m = 100
        ENDIF
        IF (a(i) .LT. 0.0) THEN
          n = 150
        ELSE
          n = 180
        ENDIF
        DO k = n, 200
          a(i) = a(i) + w(k)
        ENDDO
        DO k = 1, m
          w(k) = a(i)
        ENDDO
      ENDDO
      END
";

// Index-offset access `a(i) = a(i+m)` with `m` conditionally 150 or
// 200: the flow test needs m ≥ 150 > 0 and the anti test needs
// i + m > 100 for i in (1:100) — both pure range facts.
const RANGE_FLIP_B: &str = "
      PROGRAM rkb
      REAL a(300), b(100)
      INTEGER i, m
      DO i = 1, 100
        IF (b(i) .GT. 0.0) THEN
          m = 150
        ELSE
          m = 200
        ENDIF
        a(i) = a(i+m)
      ENDDO
      END
";

// Fires every range lint: P008 (a(150) against a REAL a(100)
// declaration), P007 (n > 200 is provably false for n = 150), and
// P009 (DO i = 1, m never executes for m = 0).
const RANGE_LINT_DEMO: &str = "
      PROGRAM rdemo
      REAL a(100), b(50)
      INTEGER i, m, n
      n = 150
      m = 0
      a(n) = 1.0
      IF (n .GT. 200) THEN
        b(1) = 2.0
      ENDIF
      DO i = 1, m
        b(i) = 3.0
      ENDDO
      END
";

/// A small program that trips every range lint (P007, P008, P009) —
/// the worked example for the range-golden suite and the README.
pub fn range_lint_demo() -> &'static str {
    RANGE_LINT_DEMO
}

/// A kernel whose designated loop flips serial → parallel when the
/// value-range pass is enabled.
#[derive(Clone, Copy, Debug)]
pub struct RangeKernel {
    /// Short tag for diagnostics.
    pub tag: &'static str,
    /// Routine containing the target loop.
    pub routine: &'static str,
    /// Target loop index variable.
    pub var: &'static str,
    /// Arrays the verdict must privatize (may be empty).
    pub privatized: &'static [&'static str],
    /// Scalars the verdict must privatize (may be empty).
    pub private_scalars: &'static [&'static str],
    /// Full Fortran source.
    pub source: &'static str,
}

/// The range-flip kernels (see `tests/range_flips.rs`).
pub fn range_kernels() -> Vec<RangeKernel> {
    vec![
        RangeKernel {
            tag: "rka",
            routine: "rka",
            var: "i",
            privatized: &["w"],
            private_scalars: &["m", "n"],
            source: RANGE_FLIP_A,
        },
        RangeKernel {
            tag: "rkb",
            routine: "rkb",
            var: "i",
            privatized: &[],
            private_scalars: &["m"],
            source: RANGE_FLIP_B,
        },
    ]
}

// --------------------------------------------------------------------
// Content kernels: loops the array-content pass (DESIGN.md §4i)
// improves — either flipping serial → parallel by refuting a guarded
// UE_i, or demoting FIRSTPRIVATE → PRIVATE by proving every declared
// element is written each iteration. Kept separate from `kernels()` and
// `range_kernels()` so their goldens are untouched.
// --------------------------------------------------------------------

// The work array w is written under `c(k) > 0` and read under the same
// syntactic guard in a second inner loop. Guard-blind region analysis
// leaves both sides approximate, so UE_i(w) survives and w carries a
// cross-iteration flow dependence. The content pass matches the guard
// templates, proves every guarded read is covered by the same-guard
// write earlier in the iteration, and refutes UE_i(w) — the loop flips
// serial → parallel with w privatized.
const CONTENT_FLIP_A: &str = "
      PROGRAM cka
      REAL w(100), b(100), c(100), r(50)
      REAL s2
      INTEGER i, k
      DO i = 1, 50
        DO k = 1, 100
          IF (c(k) .GT. 0.0) THEN
            w(k) = b(k) + float(i)
          ENDIF
        ENDDO
        s2 = 0.0
        DO k = 1, 100
          IF (c(k) .GT. 0.0) THEN
            s2 = s2 + w(k)
          ENDIF
        ENDDO
        r(i) = s2
      ENDDO
      END
";

// The work array w(10) is fully overwritten by the inner loop every
// iteration and is live after the loop (read at the end), so the
// baseline clauses are FIRSTPRIVATE + LASTPRIVATE. The content pass
// proves the definition covers the declared bounds (content_full_def),
// demoting the copy-in: LASTPRIVATE only, and the executable plan gives
// w a zero-initialized PRIVATE copy.
const CONTENT_DEMOTE_B: &str = "
      PROGRAM ckb
      REAL w(10), a(100)
      INTEGER i, k
      DO i = 1, 100
        DO k = 1, 10
          w(k) = float(i) / float(k)
        ENDDO
        a(i) = w(1) + w(10)
      ENDDO
      a(2) = w(3)
      END
";

// Negative twin of CONTENT_FLIP_A: the read guard (`c(k) < 0`) is NOT
// the write guard, so elements can be read that the current iteration
// never wrote. The content pass must refuse to refute UE_i(w) and the
// loop must stay serial even with the pass on.
const CONTENT_NEG_C: &str = "
      PROGRAM ckc
      REAL w(100), b(100), c(100), r(50)
      REAL s2
      INTEGER i, k
      DO i = 1, 50
        DO k = 1, 100
          IF (c(k) .GT. 0.0) THEN
            w(k) = b(k) + float(i)
          ENDIF
        ENDDO
        s2 = 0.0
        DO k = 1, 100
          IF (c(k) .LT. 0.0) THEN
            s2 = s2 + w(k)
          ENDIF
        ENDDO
        r(i) = s2
      ENDDO
      END
";

// Trips every content lint: P010 (u read, never written), P011 (the
// store to t(1) is overwritten unread) and P012 (the zeroing loop over
// v is fully overwritten before any read).
const CONTENT_LINT_DEMO: &str = "
      PROGRAM cdemo
      INTEGER u(10), v(10), t(10), s, i
      t(1) = 1
      t(1) = 2
      DO i = 1, 10
        v(i) = 0
      ENDDO
      DO i = 1, 10
        v(i) = i + 1
      ENDDO
      s = u(3) + v(5) + t(1)
      END
";

/// A small program that trips every content lint (P010, P011, P012) —
/// the worked example for the content-golden suite and the README.
pub fn content_lint_demo() -> &'static str {
    CONTENT_LINT_DEMO
}

/// A kernel exercising the array-content pass (see
/// `tests/content_flips.rs`).
#[derive(Clone, Copy, Debug)]
pub struct ContentKernel {
    /// Short tag for diagnostics.
    pub tag: &'static str,
    /// Routine containing the target loop.
    pub routine: &'static str,
    /// Target loop index variable.
    pub var: &'static str,
    /// Whether the pass must flip the loop serial → parallel.
    pub flips: bool,
    /// Arrays the content pass must privatize when it flips.
    pub privatized: &'static [&'static str],
    /// Full Fortran source.
    pub source: &'static str,
}

/// The content kernels: the guarded-write flip, the full-definition
/// demotion kernel, and the negative twin the pass must not flip.
pub fn content_kernels() -> Vec<ContentKernel> {
    vec![
        ContentKernel {
            tag: "cka",
            routine: "cka",
            var: "i",
            flips: true,
            privatized: &["w"],
            source: CONTENT_FLIP_A,
        },
        ContentKernel {
            tag: "ckb",
            routine: "ckb",
            var: "i",
            flips: false,
            privatized: &[],
            source: CONTENT_DEMOTE_B,
        },
        ContentKernel {
            tag: "ckc",
            routine: "ckc",
            var: "i",
            flips: false,
            privatized: &[],
            source: CONTENT_NEG_C,
        },
    ]
}

/// Generates a synthetic program of parameterized size for scaling
/// benchmarks: `n_routines` subroutines, each with a work-array
/// fill/consume loop nest, called from a main loop — the same access
/// structure as the evaluation kernels, scaled.
pub fn synthetic_program(n_routines: usize, inner_size: usize) -> String {
    use std::fmt::Write as _;
    let mut src = String::new();
    let _ = writeln!(src, "      PROGRAM synth");
    let _ = writeln!(src, "      REAL w(512), r(64)");
    let _ = writeln!(src, "      INTEGER i, m");
    let _ = writeln!(src, "      m = int(float({inner_size}))");
    let _ = writeln!(src, "      DO i = 1, 64");
    for k in 0..n_routines {
        let _ = writeln!(src, "        call fill{k}(w, m, i)");
        let _ = writeln!(src, "        call take{k}(r, w, m, i)");
    }
    let _ = writeln!(src, "      ENDDO");
    let _ = writeln!(src, "      END");
    for k in 0..n_routines {
        let _ = writeln!(
            src,
            "
      SUBROUTINE fill{k}(w, m, i)
      REAL w(*)
      INTEGER m, i, j
      DO j = 1, m
        w(j) = float(i + j + {k})
      ENDDO
      END

      SUBROUTINE take{k}(r, w, m, i)
      REAL r(*), w(*)
      REAL s
      INTEGER m, i, j
      s = 0.0
      DO j = 1, m
        s = s + w(j)
      ENDDO
      r(i) = s + float({k})
      END"
        );
    }
    src
}

#[cfg(test)]
mod synth_tests {
    use super::*;

    #[test]
    fn synthetic_parses_and_scales() {
        for n in [1, 4, 16] {
            let src = synthetic_program(n, 100);
            let p = fortran::parse_program(&src).unwrap();
            fortran::analyze(&p).unwrap();
            assert_eq!(p.routines.len(), 1 + 2 * n);
        }
    }
}
