//! The evaluation workloads: reconstructions of the twelve Perfect-
//! benchmark loops of Tables 1–2 plus the three Fig. 1 kernels.
//!
//! The Perfect Club sources are not redistributable; each kernel here is
//! rebuilt from the paper's own simplified excerpts (Fig. 1) and the
//! published descriptions of the loops, preserving the *access and guard
//! structure* that determines the analysis outcome (see DESIGN.md §3).
//! Every kernel is a complete, runnable program: scalars are initialized
//! to concrete workload sizes so the interpreter can execute it, and each
//! privatization target feeds a shared result array so parallel execution
//! has observable output.

#![warn(missing_docs)]

mod kernels;

pub use kernels::{
    content_kernels, content_lint_demo, fig1_kernels, kernels, range_kernels, range_lint_demo,
    synthetic_program, ContentKernel, Kernel, RangeKernel,
};

/// Which techniques a loop needs, per Table 1 (`T1` symbolic, `T2` IF
/// conditions, `T3` interprocedural).
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub struct Needs {
    /// T1 — symbolic analysis.
    pub t1: bool,
    /// T2 — IF-condition analysis.
    pub t2: bool,
    /// T3 — interprocedural analysis.
    pub t3: bool,
}

impl Needs {
    /// Shorthand.
    pub const fn new(t1: bool, t2: bool, t3: bool) -> Needs {
        Needs { t1, t2, t3 }
    }
}
