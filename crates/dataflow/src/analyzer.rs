//! The summary propagation engine: `SUM_segment`, `SUM_bb`, `SUM_loop`,
//! `SUM_call` (§4.1).

use crate::cache::{routine_keys, CacheKey, CachedRoutine, SummaryCache};
use crate::convert::{collect_array_reads, subscripts_region, to_pred, to_sym, ConvertCtx};
use crate::fuel::{DegradeReason, Fuel, FuelLimits};
use crate::scalars::{CounterFact, FreshNames, JoinRecord, ValueEnv};
use crate::summary::{ArraySets, Options, Summary};
use fortran::{BinOp, Expr as FExpr, LValue, Program, Stmt, StmtKind, SymbolTable};
use gar::{expand_list, Approx, Gar, GarList, LoopCtx};
use hsg::{EdgeKind, Hsg, Node, NodeId, Subgraph, SubgraphId};
use pred::{Atom, Pred};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::Arc;
use sym::Expr;
use trace::ledger::{self, Cause, Site};
use vrange::{eval_sym, loop_fixpoint, Budget, Interval, RangeEnv, ScalarAssign, ValueRange};

/// Statistics recorded during an analysis run (Fig. 4's practicality data).
#[derive(Clone, Debug, Default)]
pub struct AnalysisStats {
    /// HSG nodes visited by the backward propagation.
    pub nodes_processed: usize,
    /// Loops summarized.
    pub loops_analyzed: usize,
    /// Routines summarized.
    pub routines_analyzed: usize,
    /// Peak cumulative GAR size alive in per-node states (memory proxy).
    pub peak_state_size: usize,
    /// Total GAR pieces created across all summaries (allocation proxy).
    pub total_summary_size: usize,
}

/// Result of analyzing one routine.
#[derive(Clone, Debug)]
pub struct RoutineAnalysis {
    /// Routine name.
    pub name: String,
    /// The routine-level MOD/UE summary (formal-relative).
    pub summary: Summary,
}

/// Everything the privatization/parallelization pass needs about one loop.
#[derive(Clone, Debug)]
pub struct LoopAnalysis {
    /// Enclosing routine.
    pub routine: String,
    /// The loop's body subgraph id (a stable identifier).
    pub subgraph: SubgraphId,
    /// Loop index variable.
    pub var: String,
    /// 1-based source line of the DO statement (0 if synthetic).
    pub line: u32,
    /// Nesting depth within the routine (0 = outermost).
    pub depth: usize,
    /// Converted loop bounds (`None` = not representable).
    pub lo: Option<Expr>,
    /// Upper bound.
    pub hi: Option<Expr>,
    /// Constant step.
    pub step: i64,
    /// Per-array dependence sets.
    pub arrays: BTreeMap<String, ArraySets>,
    /// Scalars read before written in an iteration (loop-carried scalar
    /// flow dependences unless the scalar is the index).
    pub scalar_ue: BTreeSet<String>,
    /// Scalars written in the body.
    pub scalar_mod: BTreeSet<String>,
    /// Whether the body has a premature exit (multi-exit loop, §5.4).
    pub premature_exit: bool,
    /// Scalars recognized as sum/product reductions (`s = s + e` with no
    /// other uses or definitions in the body) — parallelizable with a
    /// reduction transform even though they are upwards exposed.
    pub reductions: BTreeSet<String>,
    /// Arrays used below the loop in the same routine (candidates for
    /// last-value copy-out if privatized).
    pub live_after: BTreeSet<String>,
    /// Arrays whose storage overlaps another name's (EQUIVALENCE or
    /// COMMON layout). Writes reach them under other names, so they are
    /// never privatization candidates.
    pub overlaid: BTreeSet<String>,
    /// Whether any of this loop's sets were widened because a resource
    /// budget ran out during its analysis (see [`crate::fuel`]). Widened
    /// sets are sound over-approximations; verdicts derived from them
    /// can only be conservative.
    pub degraded: bool,
    /// What the value-range pass contributed while this loop was
    /// summarized: guards refuted outright and Δ-unknown comparisons the
    /// `sym::bounds` oracle decided. Persisted here (and in cache
    /// entries) so replayed verdicts render identical provenance.
    pub range_notes: Vec<RangeNote>,
    /// Proved `(lo, hi)` interval bounds for the scalars appearing in
    /// this loop's dependence sets, snapshotted at summarization time.
    /// The judge re-installs them as a comparison oracle so the
    /// privatization tests decide the same Δ-unknown intersections the
    /// analyzer could.
    pub range_bounds: BTreeMap<String, (Option<i64>, Option<i64>)>,
    /// What the content pass contributed (DESIGN.md §4i): UE₍i₎ entries
    /// refuted by per-iteration coverage proofs and full-definition
    /// facts. Persisted like `range_notes` so cached replays render
    /// identical provenance.
    pub content_notes: Vec<ContentNote>,
    /// Arrays every iteration provably writes in full (every declared
    /// element) — a live-after privatized array in this set needs no
    /// FIRSTPRIVATE seeding for its LASTPRIVATE copy-out.
    pub content_full: BTreeSet<String>,
}

/// One contribution of the value-range pass (DESIGN.md §4g) recorded
/// against a loop for verdict provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RangeNote {
    /// A branch condition decided from proved ranges: its edge is dead
    /// and was not propagated into the loop's sets.
    Refute {
        /// The condition, displayed entry-relative.
        cond: String,
        /// `true` when the condition was proved to always hold (the
        /// false edge is dead); `false` when it can never hold.
        always: bool,
    },
    /// A Δ-unknown symbolic comparison the range oracle decided during
    /// summary construction.
    Compare {
        /// Left-hand side, displayed.
        lhs: String,
        /// Right-hand side, displayed.
        rhs: String,
        /// The proved justification (e.g. `m - 100 in [50, 100]`).
        detail: String,
        /// The decided relation: `lt`, `eq` or `gt`.
        result: String,
    },
}

/// One contribution of the array-content pass (DESIGN.md §4i) recorded
/// against a loop for verdict provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContentNote {
    /// UE₍i₎ for `array` was emptied: every read of the array in the
    /// body is covered by a prior definition in the same iteration.
    Refute {
        /// The array whose upward exposure was refuted.
        array: String,
        /// The coverage justification.
        detail: String,
    },
    /// Every iteration must-writes every declared element of `array`.
    FullDef {
        /// The fully defined array.
        array: String,
        /// The proof summary.
        detail: String,
    },
}

impl LoopAnalysis {
    /// A readable identifier like `interf/do k#3`.
    pub fn id(&self) -> String {
        format!("{}/do {}#{}", self.routine, self.var, self.subgraph)
    }
}

/// The analysis engine. Construct once per (program, options) pair, then
/// call [`Analyzer::run`].
pub struct Analyzer<'a> {
    program: &'a Program,
    sema: &'a fortran::ProgramSema,
    hsg: &'a Hsg,
    opts: Options,
    fresh: FreshNames,
    facts: BTreeMap<String, CounterFact>,
    /// Memoized context-free routine summaries.
    routine_summaries: BTreeMap<String, Summary>,
    /// Cross-run content-addressed summary cache (see [`crate::cache`]).
    cache: Option<Arc<dyn SummaryCache>>,
    /// Content keys per routine, computed once when a cache is attached.
    cache_keys: BTreeMap<String, CacheKey>,
    /// Peak transient GAR state within the routine currently being
    /// summarized (feeds per-routine cache entries).
    segment_peak: usize,
    /// Resource meter: step/size/deadline budgets with sticky exhaustion
    /// (see [`crate::fuel`]).
    fuel: Fuel,
    /// Proved scalar ranges for the routine being summarized, keyed by
    /// entry-relative names (`#` synthetics only — program names stay
    /// unbound because their meaning shifts across program points).
    /// Shared with the `sym::bounds` oracle closure.
    ranges: Rc<RefCell<RangeEnv>>,
    /// Step budget for the value-range pass, reset per routine so
    /// cached summaries are byte-identical to recomputation.
    range_budget: Rc<Budget>,
    /// Guard refutations found since the enclosing loop (if any) last
    /// collected its notes.
    pending_refutes: Vec<RangeNote>,
    /// Routines currently being summarized, innermost last — the site
    /// attribution for ledger events recorded at depths (`fuel_clamp`,
    /// `widen_bb`) where no routine name is otherwise in scope.
    routine_stack: Vec<String>,
    /// All loop analyses, in post-order of discovery.
    pub loops: Vec<LoopAnalysis>,
    /// Statistics.
    pub stats: AnalysisStats,
    /// Backward-propagation trace lines (when `opts.trace`).
    pub trace: Vec<String>,
}

/// Per-node state during backward propagation.
#[derive(Clone, Debug, Default)]
struct State {
    mods: BTreeMap<String, GarList>,
    ues: BTreeMap<String, GarList>,
    scalar_ue: BTreeSet<String>,
}

impl State {
    fn size(&self) -> usize {
        self.mods.values().map(GarList::size).sum::<usize>()
            + self.ues.values().map(GarList::size).sum::<usize>()
    }

    fn guarded_by(&self, p: &Pred) -> State {
        State {
            mods: self
                .mods
                .iter()
                .map(|(k, v)| (k.clone(), v.guarded_by(p)))
                .collect(),
            ues: self
                .ues
                .iter()
                .map(|(k, v)| (k.clone(), v.guarded_by(p)))
                .collect(),
            scalar_ue: self.scalar_ue.clone(),
        }
    }

    fn union(mut self, other: &State) -> State {
        for (k, v) in &other.mods {
            let e = self.mods.entry(k.clone()).or_default();
            *e = e.union(v);
        }
        for (k, v) in &other.ues {
            let e = self.ues.entry(k.clone()).or_default();
            *e = e.union(v);
        }
        self.scalar_ue.extend(other.scalar_ue.iter().cloned());
        self
    }

    fn mark_over(self) -> State {
        State {
            mods: self
                .mods
                .into_iter()
                .map(|(k, v)| (k.clone_into_key(), v.mark_over()))
                .collect(),
            ues: self
                .ues
                .into_iter()
                .map(|(k, v)| (k.clone_into_key(), v.mark_over()))
                .collect(),
            scalar_ue: self.scalar_ue,
        }
    }
}

// small helper so the map re-collect above reads cleanly
trait CloneIntoKey {
    fn clone_into_key(self) -> String;
}
impl CloneIntoKey for String {
    fn clone_into_key(self) -> String {
        self
    }
}

impl<'a> Analyzer<'a> {
    /// Creates an analyzer.
    pub fn new(
        program: &'a Program,
        sema: &'a fortran::ProgramSema,
        hsg: &'a Hsg,
        opts: Options,
    ) -> Self {
        Analyzer::with_cache(program, sema, hsg, opts, None)
    }

    /// Creates an analyzer that consults (and feeds) a cross-run
    /// content-addressed summary cache at the `SUM_call` boundary.
    /// Traced runs (`opts.trace`) bypass the cache: a replay would skip
    /// the propagation whose trace the caller asked for.
    pub fn with_cache(
        program: &'a Program,
        sema: &'a fortran::ProgramSema,
        hsg: &'a Hsg,
        opts: Options,
        cache: Option<Arc<dyn SummaryCache>>,
    ) -> Self {
        Analyzer::with_limits(program, sema, hsg, opts, cache, FuelLimits::unlimited())
    }

    /// Creates an analyzer with resource budgets (see [`crate::fuel`]).
    ///
    /// Result-constraining limits (steps, GAR-length cap, predicate-term
    /// cap) bypass the summary cache entirely, like traced runs: a warm
    /// hit would replay a full-precision summary that a cold run under
    /// the same limits would have widened, making the report depend on
    /// cache state. A deadline alone keeps the cache — a hit can only
    /// restore precision — but degraded results are never written back
    /// (see [`Analyzer::summarize_routine`]).
    pub fn with_limits(
        program: &'a Program,
        sema: &'a fortran::ProgramSema,
        hsg: &'a Hsg,
        opts: Options,
        cache: Option<Arc<dyn SummaryCache>>,
        limits: FuelLimits,
    ) -> Self {
        let cache = if opts.trace || limits.constrains_results() {
            if cache.is_some() {
                ledger::record(Cause::CacheBypass, || {
                    Site::default().detail(if opts.trace {
                        "summary cache bypassed: propagation trace requested"
                    } else {
                        "summary cache bypassed: resource limits constrain results"
                    })
                });
            }
            None
        } else {
            cache
        };
        let cache_keys = if cache.is_some() {
            routine_keys(program, sema, &opts)
        } else {
            BTreeMap::new()
        };
        Analyzer {
            program,
            sema,
            hsg,
            opts,
            fresh: FreshNames::default(),
            facts: BTreeMap::new(),
            routine_summaries: BTreeMap::new(),
            cache,
            cache_keys,
            segment_peak: 0,
            fuel: Fuel::new(limits),
            ranges: Rc::new(RefCell::new(RangeEnv::new())),
            range_budget: Rc::new(Budget::default()),
            pending_refutes: Vec::new(),
            routine_stack: Vec::new(),
            loops: Vec::new(),
            stats: AnalysisStats::default(),
            trace: Vec::new(),
        }
    }

    /// Runs the analysis over every routine, callees first.
    pub fn run(&mut self) -> Vec<RoutineAnalysis> {
        let order = self.sema.bottom_up.clone();
        let mut out = Vec::new();
        for name in order {
            failpoints::fail_point("analyze", &name);
            let summary = self.summarize_routine(&name);
            out.push(RoutineAnalysis {
                name: name.clone(),
                summary,
            });
        }
        out
    }

    /// Why (and whether) this run degraded: `None` means every budget
    /// held and the results are full precision.
    pub fn degradation(&self) -> Option<DegradeReason> {
        self.fuel.reason()
    }

    /// Consumes the analyzer, returning the loop analyses, statistics and
    /// trace.
    pub fn finish(self) -> (Vec<LoopAnalysis>, AnalysisStats, Vec<String>) {
        (self.loops, self.stats, self.trace)
    }

    /// The memoized context-free summary of a routine. With a cache
    /// attached, identical routine content summarized by any prior run
    /// is replayed instead of recomputed.
    pub fn summarize_routine(&mut self, name: &str) -> Summary {
        if let Some(s) = self.routine_summaries.get(name) {
            return s.clone();
        }
        let Some((cache, key)) = self.cache.clone().zip(self.cache_keys.get(name).copied()) else {
            return self.summarize_cold(name);
        };
        if let Some(entry) = cache.get(&key) {
            failpoints::fail_point("cache-replay", name);
            if let Some(summary) = self.replay_cached(name, &entry) {
                trace::add("cache_replays", 1);
                trace::event("cache_replay", || name.to_string());
                return summary;
            }
        }
        trace::add("cache_misses", 1);
        let loops_before = self.loops.len();
        let stats_before = self.stats.clone();
        let summary = self.summarize_cold(name);
        // A summary computed under a blown budget is widened; caching it
        // would serve the degraded result to later full-budget requests.
        if self.fuel.degraded() {
            return summary;
        }
        if let Some(entry) = self.record_entry(name, &summary, loops_before, &stats_before) {
            cache.put(key, Arc::new(entry));
        }
        summary
    }

    /// Cold summarization (no cache consultation). Fresh-name scoping
    /// makes the result — including every synthetic name inside it — a
    /// pure function of the routine's content, so cached replays are
    /// bitwise-identical to recomputation.
    fn summarize_cold(&mut self, name: &str) -> Summary {
        let _span = trace::span_with(|| format!("sum_routine:{name}"));
        let sg = *self
            .hsg
            .routines
            .get(name)
            .unwrap_or_else(|| panic!("routine {name} not in HSG"));
        let table = &self.sema.tables[name];
        let loop_vars = BTreeSet::new();
        let scope = self.fresh.enter_scope(name);
        self.routine_stack.push(name.to_string());
        let saved_peak = std::mem::take(&mut self.segment_peak);
        // Value-range pass (DESIGN.md §4g): give the routine a fresh
        // fact environment and a full step budget — its summary (and the
        // names/notes inside it) must be a pure function of its content
        // for cache replays to stay byte-identical — and install the
        // comparison oracle unless an enclosing summarization already
        // holds it for this thread.
        let range_state = if self.opts.value_range {
            let saved_env = std::mem::take(&mut *self.ranges.borrow_mut());
            let saved_budget = self.range_budget.save();
            self.range_budget.reset(
                self.fuel
                    .limits()
                    .range_budget
                    .unwrap_or(vrange::DEFAULT_BUDGET),
            );
            let saved_refutes = std::mem::take(&mut self.pending_refutes);
            let guard = if sym::bounds::oracle_active() {
                None
            } else {
                let env = Rc::clone(&self.ranges);
                let budget = Rc::clone(&self.range_budget);
                Some(sym::bounds::OracleGuard::install(Box::new(
                    move |diff: &Expr| {
                        let iv = eval_sym(diff, &env.borrow(), &budget).interval;
                        if iv.is_empty() {
                            return None;
                        }
                        let ord = if iv.as_const() == Some(0) {
                            sym::SymOrdering::Equal
                        } else if iv.hi.is_some_and(|h| h < 0) {
                            sym::SymOrdering::Less
                        } else if iv.lo.is_some_and(|l| l > 0) {
                            sym::SymOrdering::Greater
                        } else {
                            return None;
                        };
                        Some((ord, format!("{diff} in {iv}")))
                    },
                )))
            };
            Some((saved_env, saved_budget, saved_refutes, guard))
        } else {
            None
        };
        let summary = self.sum_segment(sg, name, table, ValueEnv::identity(), &loop_vars, 0);
        if let Some((saved_env, saved_budget, saved_refutes, guard)) = range_state {
            // The exhaustion flag is about to be overwritten by the
            // restore: this is the only window where the run can account
            // for range facts the routine silently lost to ⊤.
            if self.range_budget.degraded() {
                ledger::record(Cause::RangeBudget, || {
                    Site::routine(name)
                        .detail("value-range budget exhausted: remaining range queries answered ⊤")
                });
            }
            *self.ranges.borrow_mut() = saved_env;
            self.range_budget.restore(saved_budget);
            self.pending_refutes = saved_refutes;
            drop(guard);
        }
        self.routine_stack.pop();
        self.segment_peak = saved_peak.max(self.segment_peak);
        self.fresh.leave_scope(scope);
        self.stats.routines_analyzed += 1;
        self.stats.total_summary_size += summary.size();
        trace::add("summary_gar_pieces", summary.size() as u64);
        self.routine_summaries
            .insert(name.to_string(), summary.clone());
        summary
    }

    /// The deterministic pre-order list of a routine's loop-body
    /// subgraphs. Its indices are the *canonical loop ordinals* cache
    /// entries use in place of absolute [`SubgraphId`]s: HSG
    /// construction is deterministic per routine, so any program
    /// embedding the same routine text yields the same ordinal order
    /// even though the absolute ids differ. Loops inside condensed
    /// goto-cycles are excluded, matching `sum_condensed` (they are
    /// never individually analyzed).
    fn loop_bodies(&self, routine: &str) -> Vec<SubgraphId> {
        fn walk(hsg: &Hsg, sg: SubgraphId, out: &mut Vec<SubgraphId>) {
            for node in &hsg.subgraphs[sg].nodes {
                if let Node::Loop { body, .. } = node {
                    out.push(*body);
                    walk(hsg, *body, out);
                }
            }
        }
        let mut out = Vec::new();
        if let Some(&sg) = self.hsg.routines.get(routine) {
            walk(self.hsg, sg, &mut out);
        }
        out
    }

    /// Replays a cached routine: remaps the recorded loop analyses onto
    /// this program's subgraph ids, replays the recorded statistics
    /// deltas, and installs the summary. Returns `None` (falling back
    /// to cold analysis) if the entry does not line up with this
    /// program's HSG — impossible unless the content hash collided.
    fn replay_cached(&mut self, name: &str, entry: &CachedRoutine) -> Option<Summary> {
        let bodies = self.loop_bodies(name);
        let mut mapped = Vec::with_capacity(entry.loops.len());
        for (ordinal, la) in &entry.loops {
            let &sg = bodies.get(*ordinal)?;
            let mut la = la.clone();
            la.subgraph = sg;
            mapped.push(la);
        }
        self.loops.extend(mapped);
        self.stats.nodes_processed += entry.nodes_processed;
        self.stats.loops_analyzed += entry.loops_analyzed;
        self.stats.routines_analyzed += 1;
        self.stats.total_summary_size += entry.summary_size;
        self.stats.peak_state_size = self.stats.peak_state_size.max(entry.peak_state_size);
        self.segment_peak = self.segment_peak.max(entry.peak_state_size);
        self.routine_summaries
            .insert(name.to_string(), entry.summary.clone());
        Some(entry.summary.clone())
    }

    /// Builds the cache entry for a routine just summarized cold.
    /// Declines (returns `None`) when the extent was not self-contained
    /// — i.e. another routine was summarized inside it, which happens
    /// only when callers bypass the bottom-up order of [`Analyzer::run`]
    /// — because the recorded deltas would then double-count on replay.
    fn record_entry(
        &self,
        name: &str,
        summary: &Summary,
        loops_before: usize,
        stats_before: &AnalysisStats,
    ) -> Option<CachedRoutine> {
        if self.stats.routines_analyzed != stats_before.routines_analyzed + 1 {
            return None;
        }
        let bodies = self.loop_bodies(name);
        let mut loops = Vec::with_capacity(self.loops.len() - loops_before);
        for la in &self.loops[loops_before..] {
            let ordinal = bodies.iter().position(|&b| b == la.subgraph)?;
            loops.push((ordinal, la.clone()));
        }
        Some(CachedRoutine {
            summary: summary.clone(),
            loops,
            nodes_processed: self.stats.nodes_processed - stats_before.nodes_processed,
            loops_analyzed: self.stats.loops_analyzed - stats_before.loops_analyzed,
            peak_state_size: self.segment_peak,
            summary_size: self.stats.total_summary_size - stats_before.total_summary_size,
        })
    }

    /// `SUM_segment`: summarizes one flow subgraph under an entry value
    /// environment.
    fn sum_segment(
        &mut self,
        sg_id: SubgraphId,
        routine: &str,
        table: &SymbolTable,
        env_in: ValueEnv,
        loop_vars: &BTreeSet<String>,
        depth: usize,
    ) -> Summary {
        let g = &self.hsg.subgraphs[sg_id];
        let n = g.nodes.len();

        // ---- forward pass: value environments + per-node summaries ----
        let mut env_out: Vec<Option<ValueEnv>> = vec![None; n];
        let mut node_sum: Vec<Summary> = vec![Summary::new(); n];
        let mut cond_pred: Vec<Option<Pred>> = vec![None; n];
        // Branch conditions decided by the value-range pass: Some(true)
        // means the condition provably holds on every execution reaching
        // the node (the false edge is dead), Some(false) the reverse.
        let mut cond_known: Vec<Option<bool>> = vec![None; n];
        let mut node_must_scalar: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
        // loop-node summaries feed the live_after computation later
        let mut loop_of_node: Vec<Option<usize>> = vec![None; n];

        for &nid in &g.topo.clone() {
            if !self.fuel.tick() {
                return self.widen_segment(sg_id, routine, table, depth, &loop_of_node);
            }
            // Entry env: join of predecessors' outputs.
            let mut env = if nid == g.entry {
                env_in.clone()
            } else {
                let mut acc: Option<ValueEnv> = None;
                let mut joins: Vec<JoinRecord> = Vec::new();
                for &p in &g.preds[nid] {
                    if let Some(pe) = &env_out[p] {
                        acc = Some(match acc {
                            None => pe.clone(),
                            Some(a) => a.join_recording(pe, &mut self.fresh, &mut joins),
                        });
                    }
                }
                // A join synthetic's value is one of the two merged arm
                // values: its proved range is the join of theirs.
                if self.opts.value_range && !joins.is_empty() {
                    let mut renv = self.ranges.borrow_mut();
                    for j in &joins {
                        let l = eval_sym(&j.left, &renv, &self.range_budget);
                        let r = eval_sym(&j.right, &renv, &self.range_budget);
                        let v = l.join(&r);
                        renv.set(j.synthetic.as_str(), v);
                    }
                }
                acc.unwrap_or_else(|| env_in.clone())
            };

            match &g.nodes[nid].clone() {
                Node::Entry | Node::Exit => {}
                Node::Block(stmts) => {
                    let (sum, must) = self.sum_bb(stmts, routine, table, &mut env, loop_vars);
                    node_must_scalar[nid] = must;
                    node_sum[nid] = sum;
                }
                Node::IfCond(c) => {
                    let ctx = self.ctx(table, &env, loop_vars);
                    let mut sum = Summary::new();
                    for (arr, region) in collect_array_reads(c, &ctx) {
                        let use_list = GarList::single(Gar::new(Pred::tru(), region));
                        sum.add_de(arr.as_str(), use_list.clone());
                        sum.add_ue(arr.as_str(), use_list);
                    }
                    for s in scalar_reads(c, table) {
                        sum.scalar_ue.insert(s);
                    }
                    cond_pred[nid] = if self.opts.if_conditions {
                        to_pred(c, &ctx)
                    } else {
                        None
                    };
                    node_sum[nid] = sum;
                    if self.opts.value_range {
                        cond_known[nid] = self.decide_cond(c, table, &env, loop_vars);
                    }
                }
                Node::Call { name, args } => {
                    let sum = self.sum_call(name, args, routine, table, &mut env, loop_vars);
                    node_must_scalar[nid] = sum.scalar_must_mod.clone();
                    node_sum[nid] = sum;
                }
                Node::Loop {
                    var,
                    line,
                    lo,
                    hi,
                    step,
                    body,
                } => {
                    let (sum, idx) = self.sum_loop(
                        *body,
                        var,
                        *line,
                        lo,
                        hi,
                        step.as_ref(),
                        routine,
                        table,
                        &mut env,
                        loop_vars,
                        depth,
                    );
                    loop_of_node[nid] = idx;
                    node_must_scalar[nid] = sum.scalar_must_mod.clone();
                    node_sum[nid] = sum;
                }
                Node::Condensed(members) => {
                    let sum = self.sum_condensed(members, routine, table, &mut env, loop_vars);
                    node_sum[nid] = sum;
                }
            }
            env_out[nid] = Some(env);
        }

        // ---- backward pass: mod_in / ue_in ----
        let mut state: Vec<Option<State>> = vec![None; n];
        for &nid in g.topo.clone().iter().rev() {
            if !self.fuel.tick() {
                return self.widen_segment(sg_id, routine, table, depth, &loop_of_node);
            }
            self.stats.nodes_processed += 1;
            let merged = self.merge_succs(g, nid, &cond_pred, &cond_known, &state);

            // Guard invalidation: conditions depending on an array's
            // values go stale above a node that writes the array.
            let mut merged = merged;
            for (arr, mods) in &node_sum[nid].mods {
                if !mods.is_empty() {
                    merged = State {
                        mods: merged
                            .mods
                            .iter()
                            .map(|(k, v)| (k.clone(), forget_guard_dep(v, arr)))
                            .collect(),
                        ues: merged
                            .ues
                            .iter()
                            .map(|(k, v)| (k.clone(), forget_guard_dep(v, arr)))
                            .collect(),
                        scalar_ue: merged.scalar_ue,
                    };
                }
            }

            // Transfer: mod_in = mod(n) ∪ merged_mod;
            //           ue_in = ue(n) ∪ (merged_ue − mod(n)).
            let ns = &node_sum[nid];
            let mut st = State::default();
            for (arr, list) in &ns.mods {
                st.mods.insert(arr.clone(), list.clone());
            }
            for (arr, list) in &merged.mods {
                let e = st.mods.entry(arr.clone()).or_default();
                *e = e.union(list);
            }
            for (arr, list) in &merged.ues {
                let killed = match ns.mods.get(arr) {
                    Some(m) => list.subtract(m),
                    None => list.clone(),
                };
                if !killed.is_empty() {
                    let e = st.ues.entry(arr.clone()).or_default();
                    *e = e.union(&killed);
                }
            }
            for (arr, list) in &ns.ues {
                let e = st.ues.entry(arr.clone()).or_default();
                *e = e.union(list);
            }
            st.scalar_ue = ns.scalar_ue.clone();
            for s in &merged.scalar_ue {
                if !node_must_scalar[nid].contains(s) {
                    st.scalar_ue.insert(s.clone());
                }
            }

            // Size caps: collapse any list/guard that outgrew its budget
            // to a sound over-approximation and keep propagating.
            for list in st.mods.values_mut() {
                *list = self.fuel_clamp(std::mem::take(list));
            }
            for list in st.ues.values_mut() {
                *list = self.fuel_clamp(std::mem::take(list));
            }

            if self.opts.trace {
                self.trace_node(routine, sg_id, nid, g, &st);
            }
            // live_after for loops: arrays upward-exposed just below.
            if let Some(li) = loop_of_node[nid] {
                let below = self.merge_succs(g, nid, &cond_pred, &cond_known, &state);
                let live: BTreeSet<String> = below
                    .ues
                    .iter()
                    .filter(|(_, v)| !v.is_empty())
                    .map(|(k, _)| k.clone())
                    .collect();
                // Post-loop liveness is transitive: once a nested loop
                // finishes, anything live after THIS loop is still live,
                // so its copy-out decision must see it too.
                if !live.is_empty() {
                    for di in self.loops_under(self.loops[li].subgraph) {
                        self.loops[di].live_after.extend(live.iter().cloned());
                    }
                }
                self.loops[li].live_after.extend(live);
            }

            let live = state.iter().flatten().map(State::size).sum::<usize>() + st.size();
            self.stats.peak_state_size = self.stats.peak_state_size.max(live);
            self.segment_peak = self.segment_peak.max(live);
            state[nid] = Some(st);
        }

        // ---- forward pass: downwards-exposed uses (DE) ----
        // de_out(n) = de(n)·reach(n) ∪ (merge(de_out(preds), edge guards)
        //             − mod(n)), where reach(n) is the disjunction of path
        // conditions from the entry — so uses born inside a branch carry
        // the branch condition.
        let edge_guard = |p: NodeId, kind: EdgeKind, facts: &BTreeMap<String, CounterFact>| match (
            &cond_pred[p],
            kind,
        ) {
            (Some(c), EdgeKind::True) if self.opts.if_conditions => {
                Some(crate::convert::apply_counter_facts(c.clone(), facts))
            }
            (Some(c), EdgeKind::False) if self.opts.if_conditions => {
                Some(crate::convert::apply_counter_facts(c.not(), facts))
            }
            (None, EdgeKind::True | EdgeKind::False) => Some(Pred::unknown()),
            _ => None,
        };
        let mut reach: Vec<Pred> = vec![Pred::fals(); n];
        for &nid in &g.topo.clone() {
            if !self.fuel.tick() {
                return self.widen_segment(sg_id, routine, table, depth, &loop_of_node);
            }
            if nid == g.entry {
                reach[nid] = Pred::tru();
                continue;
            }
            let mut acc = Pred::fals();
            for &p in &g.preds[nid] {
                let kinds: Vec<EdgeKind> = g.succs[p]
                    .iter()
                    .filter(|&&(t, _)| t == nid)
                    .map(|&(_, k)| k)
                    .collect();
                for kind in kinds {
                    if dead_edge(&cond_known, p, kind) {
                        continue;
                    }
                    let piece = match edge_guard(p, kind, &self.facts) {
                        Some(c) => reach[p].and(&c),
                        None => reach[p].clone(),
                    };
                    acc = acc.or(&piece);
                }
            }
            reach[nid] = acc;
        }
        let mut de_state: Vec<Option<BTreeMap<String, GarList>>> = vec![None; n];
        for &nid in &g.topo.clone() {
            if !self.fuel.tick() {
                return self.widen_segment(sg_id, routine, table, depth, &loop_of_node);
            }
            let mut incoming: BTreeMap<String, GarList> = BTreeMap::new();
            for &p in &g.preds[nid] {
                let Some(ps) = de_state[p].clone() else {
                    continue;
                };
                // Edge guards from IF-condition predecessors.
                let kinds: Vec<EdgeKind> = g.succs[p]
                    .iter()
                    .filter(|&&(t, _)| t == nid)
                    .map(|&(_, k)| k)
                    .collect();
                for kind in kinds {
                    if dead_edge(&cond_known, p, kind) {
                        continue;
                    }
                    let guard = edge_guard(p, kind, &self.facts);
                    for (arr, list) in &ps {
                        let piece = match &guard {
                            Some(p) => list.guarded_by(p),
                            None => list.clone(),
                        };
                        let e = incoming.entry(arr.clone()).or_default();
                        *e = e.union(&piece);
                    }
                }
            }
            let ns = &node_sum[nid];
            // Stale-guard invalidation for arrays this node writes.
            for (arr, mods) in &ns.mods {
                if !mods.is_empty() {
                    for list in incoming.values_mut() {
                        *list = forget_guard_dep(list, arr);
                    }
                }
            }
            let mut out: BTreeMap<String, GarList> = BTreeMap::new();
            for (arr, list) in incoming {
                let killed = match ns.mods.get(&arr) {
                    Some(m) => list.subtract(m),
                    None => list,
                };
                if !killed.is_empty() {
                    out.insert(arr, killed);
                }
            }
            for (arr, list) in &ns.des {
                let e = out.entry(arr.clone()).or_default();
                *e = e.union(&list.guarded_by(&reach[nid]));
            }
            de_state[nid] = Some(out);
        }

        let entry_state = state[g.entry].take().unwrap_or_default();
        let mut summary = Summary::new();
        for (arr, list) in entry_state.mods {
            if !list.is_empty() {
                summary.mods.insert(arr, list);
            }
        }
        for (arr, list) in entry_state.ues {
            if !list.is_empty() {
                summary.ues.insert(arr, list);
            }
        }
        if let Some(exit_de) = de_state[g.exit].take() {
            for (arr, list) in exit_de {
                if !list.is_empty() {
                    summary.des.insert(arr, list);
                }
            }
        }
        summary.scalar_ue = entry_state.scalar_ue;
        // Scalar may/must mods: from per-node info over the whole graph
        // (may = union everywhere, must = nodes on every path — we use the
        // conservative union/entry-block approximation).
        for ns in &node_sum {
            summary
                .scalar_may_mod
                .extend(ns.scalar_may_mod.iter().cloned());
        }
        summary.scalar_must_mod = must_scalar_mods(g, &node_must_scalar);
        // Interprocedural slice of the value-range pass: proved bounds
        // on the exit values of may-modified formals and COMMON integer
        // scalars, cached alongside the rest of `SUM_call` so callers
        // can seed the clobber synthetics of written-through actuals.
        if depth == 0 && self.opts.value_range {
            if let Some(exit_env) = env_out[g.exit].as_ref() {
                let params: Vec<String> = self
                    .program
                    .routine(routine)
                    .map(|r| r.params.clone())
                    .unwrap_or_default();
                let renv = self.ranges.borrow();
                for s in &summary.scalar_may_mod {
                    let escapes = params.iter().any(|p| p == s) || table.common_block(s).is_some();
                    if !escapes || table.scalar_ty(s) != Some(fortran::Ty::Integer) {
                        continue;
                    }
                    let iv = eval_sym(&exit_env.int_value(s), &renv, &self.range_budget).interval;
                    if !iv.is_top() && !iv.is_empty() {
                        summary.scalar_exit_range.insert(s.clone(), (iv.lo, iv.hi));
                    }
                }
            }
        }
        summary
    }

    /// Decides a branch condition from proved ranges: `Some(true)` iff
    /// it holds on every execution reaching it, `Some(false)` iff it
    /// never does. Only relational conditions whose difference stays
    /// symbolic participate — constant differences are already decided
    /// by predicate simplification, so the pass only contributes where
    /// the paper's comparison rule answers Δ-unknown.
    fn decide_cond(
        &mut self,
        c: &FExpr,
        table: &SymbolTable,
        env: &ValueEnv,
        loop_vars: &BTreeSet<String>,
    ) -> Option<bool> {
        let FExpr::Bin(op, a, b) = c else { return None };
        let op = *op;
        if !matches!(
            op,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        ) {
            return None;
        }
        let (sa, sb) = {
            let ctx = self.ctx(table, env, loop_vars);
            (to_sym(a, &ctx)?, to_sym(b, &ctx)?)
        };
        let d = sa.try_sub(&sb)?;
        if d.as_const().is_some() {
            return None;
        }
        let iv = eval_sym(&d, &self.ranges.borrow(), &self.range_budget).interval;
        if iv.is_top() || iv.is_empty() {
            return None;
        }
        let neg = iv.hi.is_some_and(|h| h < 0);
        let nonpos = iv.hi.is_some_and(|h| h <= 0);
        let pos = iv.lo.is_some_and(|l| l > 0);
        let nonneg = iv.lo.is_some_and(|l| l >= 0);
        let zero = iv.as_const() == Some(0);
        let pick = |yes: bool, no: bool| {
            if yes {
                Some(true)
            } else if no {
                Some(false)
            } else {
                None
            }
        };
        let known = match op {
            BinOp::Lt => pick(neg, nonneg),
            BinOp::Le => pick(nonpos, pos),
            BinOp::Gt => pick(pos, nonpos),
            BinOp::Ge => pick(nonneg, neg),
            BinOp::Eq => pick(zero, neg || pos),
            BinOp::Ne => pick(neg || pos, zero),
            _ => None,
        }?;
        let opstr = match op {
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            _ => "!=",
        };
        trace::add("range_refutes", 1);
        trace::event("range_refute", || {
            format!("{sa} {opstr} {sb} is always {known} ({d} in {iv})")
        });
        self.pending_refutes.push(RangeNote::Refute {
            cond: format!("{sa} {opstr} {sb}"),
            always: known,
        });
        Some(known)
    }

    /// Successor-state merge for one node, applying IF-condition guards.
    /// A branch the value-range pass proved dead contributes nothing.
    fn merge_succs(
        &mut self,
        g: &Subgraph,
        nid: NodeId,
        cond_pred: &[Option<Pred>],
        cond_known: &[Option<bool>],
        state: &[Option<State>],
    ) -> State {
        let succs = &g.succs[nid];
        if succs.is_empty() {
            return State::default();
        }
        let get = |id: NodeId| state[id].clone().unwrap_or_default();
        if matches!(g.nodes[nid], Node::IfCond(_)) {
            let (t, f) = g.branch_succs(nid);
            match cond_known[nid] {
                Some(true) => return t.map(&get).unwrap_or_default(),
                Some(false) => return f.map(&get).unwrap_or_default(),
                None => {}
            }
            let ts = t.map(&get).unwrap_or_default();
            let fs = f.map(&get).unwrap_or_default();
            match &cond_pred[nid] {
                Some(p) if self.opts.if_conditions => {
                    // Counter facts rewrite `cnt = 0` clauses that only
                    // appear after negation (∀-extension).
                    let pp = crate::convert::apply_counter_facts(p.clone(), &self.facts);
                    let np = crate::convert::apply_counter_facts(p.not(), &self.facts);
                    ts.guarded_by(&pp).union(&fs.guarded_by(&np))
                }
                _ => {
                    // Conservative merge: may = union (demoted), plus the
                    // must part = intersection of the two branches' MODs.
                    let mut merged = ts.clone().union(&fs).mark_over();
                    let arrays: BTreeSet<&String> = ts.mods.keys().chain(fs.mods.keys()).collect();
                    for arr in arrays {
                        if let (Some(a), Some(b)) = (ts.mods.get(arr), fs.mods.get(arr)) {
                            let both = a.intersect(b);
                            if !both.is_empty() {
                                let e = merged.mods.entry(arr.clone()).or_default();
                                *e = e.union(&both);
                            }
                        }
                    }
                    merged
                }
            }
        } else if succs.len() == 1 {
            get(succs[0].0)
        } else {
            // Multiple unconditional successors (condensed regions):
            // conservative union.
            let mut acc = State::default();
            for &(s, _) in succs {
                acc = acc.union(&get(s));
            }
            acc.mark_over()
        }
    }

    /// Storage-overlay poisoning: an access to `name` may touch every
    /// COMMON/EQUIVALENCE partner sharing its bytes, under that
    /// partner's own name. Writes land as unknown over-approximate MOD
    /// (never a kill), reads as unknown UE; scalar partners are
    /// clobbered so value tracking cannot see through the overlay.
    fn poison_partners(
        &mut self,
        name: &str,
        write: bool,
        table: &SymbolTable,
        env: &mut ValueEnv,
        sum: &mut Summary,
    ) {
        let partners: Vec<String> = table
            .storage_partners(name)
            .into_iter()
            .map(str::to_string)
            .collect();
        for p in partners {
            if table.is_array(&p) {
                let rank = table.array(&p).map(|a| a.rank()).unwrap_or(1);
                if write {
                    sum.add_mod(&p, GarList::single(Gar::unknown(rank)));
                } else {
                    sum.add_ue(&p, GarList::single(Gar::unknown(rank)));
                }
            } else if write {
                env.clobber(&p, &mut self.fresh);
                sum.scalar_may_mod.insert(p);
            } else {
                sum.scalar_ue.insert(p);
            }
        }
    }

    /// `SUM_bb` (§4.1): forward walk over a basic block.
    fn sum_bb(
        &mut self,
        stmts: &[Stmt],
        _routine: &str,
        table: &SymbolTable,
        env: &mut ValueEnv,
        loop_vars: &BTreeSet<String>,
    ) -> (Summary, BTreeSet<String>) {
        let mut sum = Summary::new();
        let mut mods_so_far: BTreeMap<String, GarList> = BTreeMap::new();
        let mut scalar_defed: BTreeSet<String> = BTreeSet::new();
        // (reads, array write) per statement, recorded for the DE sweep.
        #[allow(clippy::type_complexity)]
        let mut record: Vec<(
            Vec<(String, region::Region)>,
            Option<(String, region::Region)>,
        )> = Vec::new();

        for s in stmts {
            if !self.fuel.tick() {
                return self.widen_bb(stmts, table, env);
            }
            let StmtKind::Assign(lhs, rhs) = &s.kind else {
                continue; // CONTINUE etc.
            };
            // Uses: arrays read by rhs and by lhs subscripts.
            let mut stmt_reads = Vec::new();
            {
                let ctx = self.ctx(table, env, loop_vars);
                let mut reads = collect_array_reads(rhs, &ctx);
                if let LValue::Element(_, subs) = lhs {
                    for sub in subs {
                        reads.extend(collect_array_reads(sub, &ctx));
                    }
                }
                for (arr, region) in reads {
                    let mut ue = GarList::single(Gar::new(Pred::tru(), region.clone()));
                    if let Some(killed) = mods_so_far.get(&arr) {
                        ue = ue.subtract(killed);
                    }
                    sum.add_ue(&arr, ue);
                    stmt_reads.push((arr, region));
                }
            }
            // Scalar uses.
            let mut used = scalar_reads(rhs, table);
            if let LValue::Element(_, subs) = lhs {
                for sub in subs {
                    used.extend(scalar_reads(sub, table));
                }
            }
            for u in used {
                self.poison_partners(&u, false, table, env, &mut sum);
                if !scalar_defed.contains(&u) {
                    sum.scalar_ue.insert(u);
                }
            }
            // Defs.
            let mut stmt_write = None;
            match lhs {
                LValue::Element(arr, subs) => {
                    let ctx = self.ctx(table, env, loop_vars);
                    let region = subscripts_region(subs, &ctx);
                    let gar = Gar::new(Pred::tru(), region.clone());
                    sum.add_mod(arr, GarList::single(gar.clone()));
                    let e = mods_so_far.entry(arr.clone()).or_default();
                    *e = e.union_gar(gar);
                    stmt_write = Some((arr.clone(), region));
                }
                LValue::Var(v) => {
                    let value = {
                        let ctx = self.ctx(table, env, loop_vars);
                        if table.scalar_ty(v) == Some(fortran::Ty::Integer) {
                            to_sym(rhs, &ctx)
                        } else {
                            None
                        }
                    };
                    match value {
                        Some(val) => env.set_int(v, val),
                        None => {
                            env.clobber(v, &mut self.fresh);
                        }
                    }
                    scalar_defed.insert(v.clone());
                    sum.scalar_may_mod.insert(v.clone());
                    sum.scalar_must_mod.insert(v.clone());
                }
            }
            for (arr, _) in &stmt_reads {
                self.poison_partners(arr, false, table, env, &mut sum);
            }
            self.poison_partners(lhs.name(), true, table, env, &mut sum);
            record.push((stmt_reads, stmt_write));
        }
        // Downwards-exposed uses: a reverse sweep over the recorded
        // reads/writes, subtracting the mods that come *after* each read.
        {
            let mut mods_after: BTreeMap<String, GarList> = BTreeMap::new();
            for (reads, write) in record.iter().rev() {
                if let Some((arr, region)) = write {
                    let e = mods_after.entry(arr.clone()).or_default();
                    *e = e.union_gar(Gar::new(Pred::tru(), region.clone()));
                }
                for (arr, region) in reads {
                    let mut de = GarList::single(Gar::new(Pred::tru(), region.clone()));
                    if let Some(killers) = mods_after.get(arr) {
                        de = de.subtract(killers);
                    }
                    sum.add_de(arr, de);
                }
            }
        }
        let must = sum.scalar_must_mod.clone();
        (sum, must)
    }

    /// `SUM_call` (§4.1): instantiate the callee's summary at a call site.
    #[allow(clippy::too_many_arguments)]
    fn sum_call(
        &mut self,
        callee: &str,
        args: &[FExpr],
        routine: &str,
        table: &SymbolTable,
        env: &mut ValueEnv,
        loop_vars: &BTreeSet<String>,
    ) -> Summary {
        let _span = trace::span_with(|| format!("sum_call:{callee}"));
        // Reads performed by evaluating the actual argument expressions.
        let mut sum = Summary::new();
        {
            let ctx = self.ctx(table, env, loop_vars);
            for a in args {
                // A bare array name is passed by reference, not read here.
                if let FExpr::Var(_) = a {
                    // scalar by reference: neither read nor written yet
                    continue;
                }
                for (arr, region) in collect_array_reads(a, &ctx) {
                    let use_list = GarList::single(Gar::new(Pred::tru(), region));
                    sum.add_de(&arr, use_list.clone());
                    sum.add_ue(&arr, use_list);
                }
                for s in scalar_reads(a, table) {
                    sum.scalar_ue.insert(s);
                }
            }
        }

        if !self.opts.interprocedural {
            // Conservative: the call may read and write every array it can
            // reach — array actuals plus storage in COMMON blocks the
            // callee (transitively) declares. Blocks only the *caller*
            // sees are untouchable by the callee and survive intact.
            let mut clobbered: BTreeSet<String> = BTreeSet::new();
            let mut scalars: BTreeSet<String> = BTreeSet::new();
            for a in args {
                match a {
                    FExpr::Var(n) | FExpr::Index(n, _) if table.is_array(n) => {
                        clobbered.insert(n.clone());
                    }
                    FExpr::Var(n) => {
                        scalars.insert(n.clone());
                        sum.scalar_ue.insert(n.clone());
                    }
                    _ => {}
                }
            }
            let reach = self.sema.common_reach.get(callee);
            for (name, loc) in table.storage_iter() {
                let fortran::StorageClass::Common(b) = &loc.class else {
                    continue;
                };
                if !reach.is_some_and(|r| r.contains(b)) {
                    continue;
                }
                if table.is_array(name) {
                    clobbered.insert(name.to_string());
                } else {
                    scalars.insert(name.to_string());
                }
            }
            // Names overlaying clobbered storage are clobbered with it.
            for n in clobbered.clone().iter().chain(scalars.clone().iter()) {
                for p in table.storage_partners(n) {
                    if table.is_array(p) {
                        clobbered.insert(p.to_string());
                    } else {
                        scalars.insert(p.to_string());
                    }
                }
            }
            for arr in clobbered {
                let rank = table.array(&arr).map(|a| a.rank()).unwrap_or(1);
                sum.add_mod(&arr, GarList::single(Gar::unknown(rank)));
                sum.add_ue(&arr, GarList::single(Gar::unknown(rank)));
                // No DE: downward-exposed uses may only be kept when the
                // read provably survives to the segment end, and nothing
                // about the callee's accesses is known here. The unknown
                // MOD above already forces the output/flow tests, so an
                // empty DE loses no soundness — a `Gar::unknown` here
                // manufactured anti dependences on every clobbered array.
            }
            for s in scalars {
                env.clobber(&s, &mut self.fresh);
                sum.scalar_may_mod.insert(s);
            }
            return sum;
        }

        let callee_summary = self.summarize_routine(callee);
        let callee_routine = self.program.routine(callee).expect("callee exists");
        let callee_table = self.sema.tables[callee].clone();

        // Freshen callee-internal synthetic names so two call sites never
        // correlate callee-private unknowns.
        let callee_summary = self.freshen_synthetics(callee_summary);

        // Build the substitution plan.
        let mut array_map: BTreeMap<String, Option<String>> = BTreeMap::new(); // formal → actual array (None = clobber)
        let mut scalar_subst: Vec<(String, Expr)> = Vec::new();
        for (k, formal) in callee_routine.params.iter().enumerate() {
            let actual = &args[k];
            if callee_table.is_array(formal) {
                match actual {
                    FExpr::Var(a) if table.is_array(a) => {
                        array_map.insert(formal.clone(), Some(a.clone()));
                    }
                    FExpr::Index(a, _) if table.is_array(a) => {
                        // Slice/base-offset passing: conservative.
                        array_map.insert(formal.clone(), None);
                        let rank = table.array(a).map(|x| x.rank()).unwrap_or(1);
                        sum.add_mod(a, GarList::single(Gar::unknown(rank)));
                        sum.add_ue(a, GarList::single(Gar::unknown(rank)));
                    }
                    _ => {
                        // A scalar (or expression) actual bound to an
                        // array formal: the callee may write through it.
                        array_map.insert(formal.clone(), None);
                        if let FExpr::Var(v) = actual {
                            env.clobber(v, &mut self.fresh);
                            sum.scalar_may_mod.insert(v.clone());
                            sum.scalar_ue.insert(v.clone());
                        }
                    }
                }
            } else {
                let ctx = self.ctx(table, env, loop_vars);
                let value = match to_sym(actual, &ctx) {
                    Some(v) => v,
                    None => match actual {
                        // Opaque scalar: its version name correlates uses.
                        FExpr::Var(v) => Expr::var(env.version(v)),
                        _ => Expr::var(self.fresh.next(formal)),
                    },
                };
                scalar_subst.push((formal.clone(), value));
            }
        }

        // Map array summaries (0 = MOD, 1 = UE, 2 = DE).
        for (src_map, kind) in [
            (&callee_summary.mods, 0u8),
            (&callee_summary.ues, 1),
            (&callee_summary.des, 2),
        ] {
            for (arr, list) in src_map {
                let (target, target_rank) = match array_map.get(arr) {
                    Some(Some(actual)) => {
                        let r = table.array(actual).map(|x| x.rank());
                        (actual.clone(), r)
                    }
                    Some(None) => continue, // already clobbered above
                    None => {
                        // Not a formal: a COMMON (or otherwise global)
                        // array — keep its name.
                        (arr.clone(), table.array(arr).map(|x| x.rank()))
                    }
                };
                let callee_rank = list.gars().first().map(|g| g.rank());
                let mut mapped = substitute_many(list, &scalar_subst, &mut self.fresh);
                if let (Some(cr), Some(tr)) = (callee_rank, target_rank) {
                    if cr != tr {
                        // Reshaped across the call: conservative.
                        mapped = GarList::single(Gar::unknown(tr));
                    }
                }
                match kind {
                    0 => sum.add_mod(&target, mapped),
                    1 => sum.add_ue(&target, mapped),
                    _ => sum.add_de(&target, mapped),
                }
            }
        }

        // Scalar effects. Clobber synthetics for written-through actuals
        // inherit the callee's proved exit range — the interprocedural
        // slice of the value-range pass.
        let bind_exit_range = |az: &Analyzer, syn: &sym::Name, s: &str| {
            if !az.opts.value_range {
                return;
            }
            if let Some(&(lo, hi)) = callee_summary.scalar_exit_range.get(s) {
                az.ranges
                    .borrow_mut()
                    .set(syn.as_str(), ValueRange::of_interval(Interval::new(lo, hi)));
            }
        };
        for s in &callee_summary.scalar_may_mod {
            // A modified formal scalar writes through to a Var actual.
            if let Some(k) = callee_routine.params.iter().position(|p| p == s) {
                match &args[k] {
                    FExpr::Var(v) => {
                        let syn = env.clobber(v, &mut self.fresh);
                        bind_exit_range(self, &syn, s);
                        sum.scalar_may_mod.insert(v.clone());
                        if callee_summary.scalar_must_mod.contains(s) {
                            sum.scalar_must_mod.insert(v.clone());
                        }
                    }
                    // An element actual `a(k)`: the write lands in `a`.
                    FExpr::Index(a, _) if table.is_array(a) => {
                        let rank = table.array(a).map(|x| x.rank()).unwrap_or(1);
                        sum.add_mod(a, GarList::single(Gar::unknown(rank)));
                    }
                    _ => {}
                }
            } else if callee_table.common_block(s).is_some() {
                let syn = env.clobber(s, &mut self.fresh);
                bind_exit_range(self, &syn, s);
                sum.scalar_may_mod.insert(s.clone());
            }
        }
        for s in &callee_summary.scalar_ue {
            if let Some(k) = callee_routine.params.iter().position(|p| p == s) {
                for u in scalar_reads(&args[k], table) {
                    sum.scalar_ue.insert(u);
                }
            } else if callee_table.common_block(s).is_some() {
                sum.scalar_ue.insert(s.clone());
            }
        }

        // Alias-aware degradation (ISSUE 4): the mapping above assumed
        // Fortran's no-alias convention. Where the call site violates it,
        // the mapped sets degrade soundly: may-aliased targets go to
        // unknown MOD/UE, every aliased target loses its DE (interleaved
        // accesses through the other name mean a use may not actually be
        // exposed at segment end; the unknown/unioned MOD keeps the
        // output test honest). Must-aliased targets keep their unioned
        // MOD/UE — over-approximate but usable.
        let aliasing =
            alias::classify_call(self.sema, routine, callee, &callee_routine.params, args);
        trace::add("alias_classifications", 1);
        if !aliasing.clean() {
            trace::event("alias_degrade", || format!("{routine} -> {callee}"));
            ledger::record(Cause::AliasDegrade, || {
                let mut what = Vec::new();
                let may = aliasing.may_targets();
                if !may.is_empty() {
                    what.push(format!("may-aliased {may:?} -> unknown MOD/UE"));
                }
                let de = aliasing.de_unsafe_targets();
                if !de.is_empty() {
                    what.push(format!("DE dropped for {de:?}"));
                }
                if !aliasing.mismatched_commons.is_empty() {
                    what.push(format!(
                        "mismatched COMMON {:?} degraded",
                        aliasing.mismatched_commons
                    ));
                }
                Site::routine(routine).detail(format!("call {callee}: {}", what.join("; ")))
            });
            for t in aliasing.may_targets() {
                if table.is_array(&t) {
                    let rank = table.array(&t).map(|x| x.rank()).unwrap_or(1);
                    sum.add_mod(&t, GarList::single(Gar::unknown(rank)));
                    sum.add_ue(&t, GarList::single(Gar::unknown(rank)));
                } else {
                    env.clobber(&t, &mut self.fresh);
                    sum.scalar_may_mod.insert(t.clone());
                    sum.scalar_ue.insert(t);
                }
            }
            for t in aliasing.de_unsafe_targets() {
                sum.des.remove(&t);
            }
            // A COMMON block laid out differently across routines means
            // callee-side names do not denote caller bytes one-to-one:
            // every caller member of the block degrades.
            for b in &aliasing.mismatched_commons {
                let members: Vec<String> = table
                    .storage_iter()
                    .filter(|(_, l)| matches!(&l.class, fortran::StorageClass::Common(x) if x == b))
                    .map(|(n, _)| n.to_string())
                    .collect();
                for m in members {
                    if table.is_array(&m) {
                        let rank = table.array(&m).map(|x| x.rank()).unwrap_or(1);
                        sum.add_mod(&m, GarList::single(Gar::unknown(rank)));
                        sum.add_ue(&m, GarList::single(Gar::unknown(rank)));
                        sum.des.remove(&m);
                    } else {
                        env.clobber(&m, &mut self.fresh);
                        sum.scalar_may_mod.insert(m.clone());
                        sum.scalar_ue.insert(m);
                    }
                }
            }
        }

        // Writes mapped into caller names reach their storage partners
        // too (EQUIVALENCE/COMMON overlays on the caller side).
        for m in sum.mods.keys().cloned().collect::<Vec<_>>() {
            self.poison_partners(&m, true, table, env, &mut sum);
        }
        for s in sum.scalar_may_mod.iter().cloned().collect::<Vec<_>>() {
            self.poison_partners(&s, true, table, env, &mut sum);
        }
        sum
    }

    /// `SUM_loop` (§4.1): summarize a DO loop via body summary + expansion,
    /// and record the per-loop sets for privatization.
    #[allow(clippy::too_many_arguments)]
    fn sum_loop(
        &mut self,
        body_sg: SubgraphId,
        var: &str,
        line: u32,
        lo: &FExpr,
        hi: &FExpr,
        step: Option<&FExpr>,
        routine: &str,
        table: &SymbolTable,
        env: &mut ValueEnv,
        loop_vars: &BTreeSet<String>,
        depth: usize,
    ) -> (Summary, Option<usize>) {
        let _span = trace::span_with(|| format!("sum_loop:{routine}/{var}"));
        self.stats.loops_analyzed += 1;
        let fuel_events = self.fuel.events();
        // Attribution windows for range provenance: oracle decisions and
        // guard refutations from here to the end of this loop's
        // summarization belong to its `range_notes`.
        let range_mark = sym::bounds::log_mark();
        let refutes_before = self.pending_refutes.len();
        // Bounds in the enclosing frame.
        let ctx = self.ctx(table, env, loop_vars);
        let lo_sym = to_sym(lo, &ctx);
        let hi_sym = to_sym(hi, &ctx);
        let step_const = match step {
            None => Some(1i64),
            Some(s) => to_sym(s, &ctx)
                .and_then(|e| e.as_const())
                .filter(|&c| c != 0),
        };
        // Scalars assigned anywhere inside (incl. nested calls).
        let assigned = self.scalars_assigned(body_sg, table);

        // Body environment: enclosing env with body-modified scalars
        // clobbered (their iteration-entry values are unknown) and the
        // index mapped to its own name. The value-range pass bounds the
        // clobber synthetics with a widening/narrowing fixed point over
        // the body's scalar recurrences, so "unknown" iteration-entry
        // values still carry proved intervals.
        let loop_ranges = if self.opts.value_range {
            self.loop_carried_ranges(
                body_sg,
                table,
                var,
                lo_sym.as_ref(),
                hi_sym.as_ref(),
                step_const,
                env,
                &assigned,
            )
        } else {
            RangeEnv::new()
        };
        let mut body_env = env.clone();
        for s in &assigned {
            let syn = body_env.clobber(s, &mut self.fresh);
            if self.opts.value_range {
                let r = loop_ranges.get(s);
                if !r.is_top() {
                    self.ranges.borrow_mut().set(syn.as_str(), r);
                }
            }
        }
        body_env.set_int(var, Expr::var(var));
        let mut body_loop_vars = loop_vars.clone();
        body_loop_vars.insert(var.to_string());

        let body = self.sum_segment(
            body_sg,
            routine,
            table,
            body_env,
            &body_loop_vars,
            depth + 1,
        );
        // Back-edge liveness: an array upward-exposed anywhere in this
        // body is re-read on the next iteration of THIS loop, after any
        // nested loop has finished — so every nested loop's live-after
        // must include it. The per-segment live_after assignment only
        // sees reads lexically below a loop; the back edge reaches reads
        // above it too. Over-approximating costs an extra copy-out
        // clause, never correctness.
        let back_reads: Vec<String> = body
            .ues
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, _)| k.clone())
            .collect();
        if !back_reads.is_empty() {
            for di in self.loops_under(body_sg) {
                self.loops[di].live_after.extend(back_reads.iter().cloned());
            }
        }
        let premature = self.hsg.subgraphs[body_sg].premature_exit;

        // §5.4: with premature exits, loop-variant components go unknown.
        let sanitize = |list: &GarList| -> GarList {
            if !premature {
                return list.clone();
            }
            GarList::from_gars(list.gars().iter().map(|g| {
                if g.contains_var(var) {
                    Gar::with_approx(
                        g.guard.forget_var(var),
                        g.region.forget_var(var),
                        Approx::Over,
                    )
                } else {
                    g.clone()
                }
            }))
        };

        // Counter-pattern detection (∀-extension).
        let counters = if self.opts.forall_ext && !premature {
            self.detect_counters(body_sg, var, table, env, loop_vars, &assigned)
        } else {
            BTreeMap::new()
        };

        // Content refinement (DESIGN.md §4i): walk the loop-body AST
        // once and prove per-iteration read coverage (refutes UE₍i₎
        // entries the backward pass over-approximated — array-element
        // guards in particular) and full-definition facts. Storage-
        // associated arrays are excluded: their elements are reachable
        // under other names the coverage proof does not see.
        let mut content_refuted: BTreeSet<String> = BTreeSet::new();
        let mut content_full: BTreeSet<String> = BTreeSet::new();
        let mut content_notes: Vec<ContentNote> = Vec::new();
        if self.opts.content && !premature && line != 0 {
            let _cspan = trace::span("content:refine");
            let content_budget = Budget::new(
                self.fuel
                    .limits()
                    .content_budget
                    .unwrap_or(vrange::DEFAULT_BUDGET),
            );
            if let Some(body_ast) = self
                .program
                .routine(routine)
                .and_then(|r| find_do_body(&r.body, line, var))
            {
                let facts =
                    content::analyze_loop_body(body_ast, var, loop_vars, table, &content_budget);
                if !facts.degraded() {
                    for arr in body.arrays() {
                        if !table.storage_partners(&arr).is_empty() {
                            continue;
                        }
                        if !body.ue_of(&arr).definitely_empty() {
                            if let Some(detail) = facts.covers_reads(&arr) {
                                content_refuted.insert(arr.clone());
                                content_notes.push(ContentNote::Refute {
                                    array: arr.clone(),
                                    detail,
                                });
                                trace::add("content:ue_refuted", 1);
                            }
                        }
                        let const_bounds = table.declared_bounds(&arr).and_then(|bs| {
                            bs.iter()
                                .map(|&(l, h)| Some((l?, h?)))
                                .collect::<Option<Vec<_>>>()
                        });
                        if let Some(bs) = const_bounds {
                            if let Some(detail) = facts.fully_defines(&arr, &bs) {
                                content_full.insert(arr.clone());
                                content_notes.push(ContentNote::FullDef {
                                    array: arr.clone(),
                                    detail,
                                });
                                trace::add("content:full_def", 1);
                            }
                        }
                    }
                } else if facts.refused() {
                    trace::add("content:degraded", 1);
                    ledger::record(Cause::ContentRefused, || {
                        Site::routine(routine).var(var).line(line).detail(
                            "content pass refused loop body: \
                             unmodelled control flow (CALL/GOTO/RETURN/STOP)",
                        )
                    });
                } else {
                    trace::add("content:degraded", 1);
                    ledger::record(Cause::ContentBudget, || {
                        Site::routine(routine).var(var).line(line).detail(
                            "content budget exhausted: coverage and full-definition \
                             facts for this loop discarded",
                        )
                    });
                }
            }
        }

        let mut loop_sum = Summary::new();
        let mut sets: BTreeMap<String, ArraySets> = BTreeMap::new();

        match (&lo_sym, &hi_sym, step_const) {
            (Some(lo_e), Some(hi_e), Some(step_c)) => {
                // Normalize negative steps: same iteration set ascending.
                let (lo_e, hi_e, step_c) = if step_c > 0 {
                    (lo_e.clone(), hi_e.clone(), step_c)
                } else {
                    match (lo_e.as_const(), hi_e.as_const()) {
                        (Some(l), Some(h)) => {
                            let s = -step_c;
                            let count = if h <= l { (l - h) / s } else { -1 };
                            let first = l - count.max(0) * s;
                            (Expr::from(first), Expr::from(l), s)
                        }
                        _ => {
                            // Symbolic descending loop: conservative.
                            (hi_e.clone(), lo_e.clone(), -step_c)
                        }
                    }
                };
                let step_e = Expr::from(step_c);
                let k = self.fresh.next(var);

                for arr in body.arrays() {
                    let mod_i = sanitize(&body.mod_of(&arr));
                    let ue_i = if content_refuted.contains(&arr) {
                        GarList::empty()
                    } else {
                        sanitize(&body.ue_of(&arr))
                    };
                    let de_i = sanitize(&body.de_of(&arr));

                    // MOD_<i: rename i→k, expand k over [lo, i - step].
                    let mod_k = rename_var(&mod_i, var, k.as_str());
                    let mut ctx_lt = LoopCtx::new(
                        k.as_str().to_string(),
                        lo_e.clone(),
                        Expr::var(var) - step_e.clone(),
                    );
                    ctx_lt.step = step_c;
                    ctx_lt.forall_ext = self.opts.forall_ext;
                    let mod_lt = self.fuel_clamp(expand_list(&mod_k, &ctx_lt));

                    // MOD_>i.
                    let mut ctx_gt = LoopCtx::new(
                        k.as_str().to_string(),
                        Expr::var(var) + step_e.clone(),
                        hi_e.clone(),
                    );
                    ctx_gt.step = step_c;
                    ctx_gt.forall_ext = self.opts.forall_ext;
                    let mod_gt = self.fuel_clamp(expand_list(&mod_k, &ctx_gt));

                    // Loop-level UE and MOD.
                    let ue_out = ue_i.subtract(&mod_lt);
                    let mut ctx_all = LoopCtx::new(var.to_string(), lo_e.clone(), hi_e.clone());
                    ctx_all.step = step_c;
                    ctx_all.forall_ext = self.opts.forall_ext;
                    let ue_loop = self.fuel_clamp(expand_list(&ue_out, &ctx_all));
                    let mod_loop = self.fuel_clamp(expand_list(&mod_i, &ctx_all));
                    // Loop-level DE: uses of iteration i still exposed at
                    // the loop's end — not overwritten by later iterations.
                    let de_out = de_i.subtract(&mod_gt);
                    let de_loop = self.fuel_clamp(expand_list(&de_out, &ctx_all));

                    loop_sum.add_mod(&arr, mod_loop);
                    loop_sum.add_ue(&arr, ue_loop);
                    loop_sum.add_de(&arr, de_loop);
                    sets.insert(
                        arr.clone(),
                        ArraySets {
                            mod_i,
                            ue_i,
                            de_i,
                            mod_lt,
                            mod_gt,
                        },
                    );
                }
            }
            _ => {
                // Bounds not representable: forget the index everywhere.
                for arr in body.arrays() {
                    let m =
                        GarList::from_gars(sanitize(&body.mod_of(&arr)).gars().iter().map(|g| {
                            Gar::with_approx(
                                g.guard.forget_var(var),
                                g.region.forget_var(var),
                                Approx::Over,
                            )
                        }));
                    let ue_body = if content_refuted.contains(&arr) {
                        GarList::empty()
                    } else {
                        body.ue_of(&arr)
                    };
                    let u = GarList::from_gars(sanitize(&ue_body).gars().iter().map(|g| {
                        Gar::with_approx(
                            g.guard.forget_var(var),
                            g.region.forget_var(var),
                            Approx::Over,
                        )
                    }));
                    let d =
                        GarList::from_gars(sanitize(&body.de_of(&arr)).gars().iter().map(|g| {
                            Gar::with_approx(
                                g.guard.forget_var(var),
                                g.region.forget_var(var),
                                Approx::Over,
                            )
                        }));
                    loop_sum.add_mod(&arr, m);
                    loop_sum.add_ue(&arr, u);
                    loop_sum.add_de(&arr, d);
                    sets.insert(
                        arr.clone(),
                        ArraySets {
                            mod_i: body.mod_of(&arr),
                            ue_i: ue_body,
                            de_i: body.de_of(&arr),
                            mod_lt: GarList::single(Gar::unknown(
                                body.mod_of(&arr)
                                    .gars()
                                    .first()
                                    .map(|g| g.rank())
                                    .unwrap_or(1),
                            )),
                            mod_gt: GarList::single(Gar::unknown(
                                body.mod_of(&arr)
                                    .gars()
                                    .first()
                                    .map(|g| g.rank())
                                    .unwrap_or(1),
                            )),
                        },
                    );
                }
            }
        }

        // Scalar effects at the enclosing level. The post-loop clobber
        // synthetics carry the same fixed-point bounds: the exit value
        // is the entry value (zero-trip) or a loop-carried one, both
        // inside the fixed point.
        for s in &assigned {
            if counters.contains_key(s) {
                continue;
            }
            let syn = env.clobber(s, &mut self.fresh);
            if self.opts.value_range {
                let r = loop_ranges.get(s);
                if !r.is_top() {
                    self.ranges.borrow_mut().set(syn.as_str(), r);
                }
            }
            loop_sum.scalar_may_mod.insert(s.clone());
        }
        for (scalar, fact) in counters {
            // v_after = v_before + cnt, with cnt = 0 ⟺ the condition never
            // held across the iteration range. The recorded lo/hi carry the
            // condition's *index expression*; instantiate them at the loop
            // ends (coefficient of the index is 1, so monotone).
            match (&lo_sym, &hi_sym, step_const) {
                (Some(lo_e), Some(hi_e), Some(1)) => {
                    let cnt = self.fresh.next(&format!("{scalar}.cnt"));
                    let before = env.int_value(&scalar);
                    env.set_int(&scalar, before + Expr::var(cnt.clone()));
                    let registered = CounterFact {
                        lo: fact.lo.subst_var(var, lo_e),
                        hi: fact.hi.subst_var(var, hi_e),
                        ..fact
                    };
                    self.facts.insert(cnt.as_str().to_string(), registered);
                }
                _ => {
                    env.clobber(&scalar, &mut self.fresh);
                }
            }
            loop_sum.scalar_may_mod.insert(scalar.clone());
        }
        env.clobber(var, &mut self.fresh);
        loop_sum.scalar_may_mod.insert(var.to_string());
        // Scalar UE: body UEs minus the index, plus bound reads.
        for s in &body.scalar_ue {
            if s != var {
                loop_sum.scalar_ue.insert(s.clone());
            }
        }
        for b in [Some(lo), Some(hi), step].into_iter().flatten() {
            for s in scalar_reads(b, table) {
                loop_sum.scalar_ue.insert(s);
            }
        }

        // Reduction recognition: exposed scalars whose only life in the
        // body is self-accumulation.
        let reductions = if premature {
            BTreeSet::new()
        } else {
            body.scalar_ue
                .iter()
                .filter(|s| {
                    s.as_str() != var
                        && body.scalar_may_mod.contains(*s)
                        && is_reduction_scalar(&self.hsg.subgraphs[body_sg].clone(), self.hsg, s)
                })
                .cloned()
                .collect()
        };

        // Record the loop analysis.
        let overlaid = sets
            .keys()
            .filter(|a| !table.storage_partners(a).is_empty())
            .cloned()
            .collect();
        let mut range_notes: Vec<RangeNote> = Vec::new();
        let mut range_bounds: BTreeMap<String, (Option<i64>, Option<i64>)> = BTreeMap::new();
        if self.opts.value_range {
            range_notes.extend(
                self.pending_refutes[refutes_before.min(self.pending_refutes.len())..]
                    .iter()
                    .cloned(),
            );
            for d in sym::bounds::decisions_since(range_mark) {
                range_notes.push(RangeNote::Compare {
                    lhs: d.lhs,
                    rhs: d.rhs,
                    detail: d.detail,
                    result: d.result.to_string(),
                });
            }
            range_notes.truncate(RANGE_NOTE_CAP);
            // Snapshot proved bounds for every scalar the loop's sets
            // mention, so the judge can re-install them as an oracle.
            let mut names: BTreeSet<sym::Name> = BTreeSet::new();
            for s in sets.values() {
                for list in [&s.mod_i, &s.ue_i, &s.de_i, &s.mod_lt, &s.mod_gt] {
                    list.collect_vars(&mut names);
                }
            }
            let renv = self.ranges.borrow();
            for n in names {
                let iv = renv.get(n.as_str()).interval;
                if !iv.is_top() && !iv.is_empty() {
                    range_bounds.insert(n.as_str().to_string(), (iv.lo, iv.hi));
                }
            }
            // Within this loop's sets the index variable always denotes
            // the current iteration, so its trip hull is a sound bound
            // (ascending loops only; a zero-trip loop has empty sets).
            if let (Some(lo_e), Some(hi_e), Some(s)) = (&lo_sym, &hi_sym, step_const) {
                if s > 0 {
                    let l = eval_sym(lo_e, &renv, &self.range_budget).interval;
                    let h = eval_sym(hi_e, &renv, &self.range_budget).interval;
                    let hull = Interval::new(l.lo, h.hi);
                    if !hull.is_top() && !hull.is_empty() {
                        range_bounds.insert(var.to_string(), (hull.lo, hull.hi));
                    }
                }
            }
        }
        let la = LoopAnalysis {
            routine: routine.to_string(),
            subgraph: body_sg,
            var: var.to_string(),
            line,
            depth,
            lo: lo_sym,
            hi: hi_sym,
            step: step_const.unwrap_or(1),
            arrays: sets,
            scalar_ue: body
                .scalar_ue
                .iter()
                .filter(|s| *s != var)
                .cloned()
                .collect(),
            scalar_mod: body.scalar_may_mod.clone(),
            premature_exit: premature,
            reductions,
            live_after: BTreeSet::new(),
            overlaid,
            degraded: self.fuel.halted() || self.fuel.events() != fuel_events,
            range_notes,
            range_bounds,
            content_notes,
            content_full,
        };
        if trace::enabled() {
            let mut pieces = 0u64;
            let mut pred_terms = 0u64;
            for s in la.arrays.values() {
                for list in [&s.mod_i, &s.ue_i, &s.de_i, &s.mod_lt, &s.mod_gt] {
                    pieces += list.gars().len() as u64;
                    pred_terms += list
                        .gars()
                        .iter()
                        .map(|g| g.guard.size() as u64)
                        .sum::<u64>();
                }
            }
            trace::add("loop_gar_pieces", pieces);
            trace::add("pred_terms", pred_terms);
        }
        self.loops.push(la);
        (loop_sum, Some(self.loops.len() - 1))
    }

    /// Conservative summary for a condensed goto-cycle (§5.4): every array
    /// reference inside becomes unknown MOD and UE.
    fn sum_condensed(
        &mut self,
        members: &[Node],
        routine: &str,
        table: &SymbolTable,
        env: &mut ValueEnv,
        _loop_vars: &BTreeSet<String>,
    ) -> Summary {
        let mut sum = Summary::new();
        let mut arrays = BTreeSet::new();
        let mut scalars = BTreeSet::new();
        for m in members {
            collect_node_names(m, self.hsg, &mut arrays, &mut scalars);
        }
        ledger::record(Cause::GotoCondense, || {
            let widened: Vec<&String> = arrays.iter().filter(|a| table.is_array(a)).collect();
            Site::routine(routine).detail(format!(
                "condensed goto-cycle of {} node(s): arrays {widened:?} -> unknown MOD/UE",
                members.len()
            ))
        });
        for a in arrays {
            if table.is_array(&a) {
                let rank = table.array(&a).map(|x| x.rank()).unwrap_or(1);
                sum.add_mod(&a, GarList::single(Gar::unknown(rank)));
                sum.add_ue(&a, GarList::single(Gar::unknown(rank)));
                sum.add_de(&a, GarList::single(Gar::unknown(rank)));
            } else {
                scalars_insert(&mut sum, &a);
            }
        }
        for s in scalars {
            if !table.is_array(&s) {
                env.clobber(&s, &mut self.fresh);
                sum.scalar_may_mod.insert(s.clone());
                sum.scalar_ue.insert(s);
            }
        }
        sum
    }

    /// Detects conditionally-incremented counters in a loop body:
    /// `IF (cond(k)) v = v + c` with `c > 0`, `v` assigned nowhere else.
    fn detect_counters(
        &mut self,
        body_sg: SubgraphId,
        var: &str,
        table: &SymbolTable,
        env: &ValueEnv,
        loop_vars: &BTreeSet<String>,
        assigned: &BTreeSet<String>,
    ) -> BTreeMap<String, CounterFact> {
        let g = self.hsg.subgraphs[body_sg].clone();
        let mut out = BTreeMap::new();
        for (nid, node) in g.nodes.iter().enumerate() {
            let Node::IfCond(c) = node else { continue };
            let (t, _f) = g.branch_succs(nid);
            let Some(t) = t else { continue };
            let Node::Block(stmts) = &g.nodes[t] else {
                continue;
            };
            // The true block must be exactly `v = v + const(>0)`.
            let only: Vec<&Stmt> = stmts
                .iter()
                .filter(|s| !matches!(s.kind, StmtKind::Continue))
                .collect();
            if only.len() != 1 {
                continue;
            }
            let StmtKind::Assign(LValue::Var(v), rhs) = &only[0].kind else {
                continue;
            };
            // rhs == v + positive const?
            let is_incr = matches!(
                rhs,
                FExpr::Bin(fortran::BinOp::Add, a, b)
                    if matches!(&**a, FExpr::Var(x) if x == v)
                        && matches!(&**b, FExpr::Int(c) if *c > 0)
            );
            if !is_incr {
                continue;
            }
            // v assigned exactly once in the body (this statement).
            if count_scalar_assignments(&g, self.hsg, v) != 1 {
                continue;
            }
            let _ = assigned;
            // Condition must be a single Cond atom with an index affine in
            // the loop var with coefficient 1.
            let mut body_env = env.clone();
            body_env.set_int(var, Expr::var(var));
            let ctx = self.ctx(table, &body_env, loop_vars);
            let Some(p) = to_pred(c, &ctx) else { continue };
            let [d] = p.disjs() else { continue };
            let Some(Atom::Cond {
                template,
                index,
                deps,
                positive,
            }) = d.as_unit()
            else {
                continue;
            };
            let Some((1, _)) = index.affine_decompose(var) else {
                continue;
            };
            // The quantified index range is filled in by the caller using
            // the loop bounds; store the index shape via lo/hi = idx(lo),
            // idx(hi) later. Here we record with placeholders substituted
            // by the loop bounds at registration time.
            out.insert(
                v.clone(),
                CounterFact {
                    template: template.clone(),
                    deps: deps.clone(),
                    counted_positive: *positive,
                    // placeholder: index expression at symbolic loop ends —
                    // substituted right below in sum_loop registration
                    lo: index.clone(),
                    hi: index.clone(),
                },
            );
        }
        out
    }

    /// Fixed-point ranges for the scalars a loop body assigns: the
    /// iteration-entry (and exit) values of each such scalar lie in the
    /// returned range, which joins the pre-loop value with every
    /// loop-carried iterate (threshold-widened, once-narrowed).
    #[allow(clippy::too_many_arguments)]
    fn loop_carried_ranges(
        &mut self,
        body_sg: SubgraphId,
        table: &SymbolTable,
        var: &str,
        lo_sym: Option<&Expr>,
        hi_sym: Option<&Expr>,
        step_const: Option<i64>,
        env: &ValueEnv,
        assigned: &BTreeSet<String>,
    ) -> RangeEnv {
        // Seed: proved ranges of the pre-loop values.
        let mut entry = RangeEnv::new();
        {
            let renv = self.ranges.borrow();
            for s in assigned {
                if table.scalar_ty(s) != Some(fortran::Ty::Integer) {
                    continue;
                }
                let r = eval_sym(&env.int_value(s), &renv, &self.range_budget);
                if !r.is_top() {
                    entry.set(s.clone(), r);
                }
            }
        }
        // The index ranges over [lo, hi] for ascending loops; keep it
        // unbound otherwise (descending/unknown step).
        let index_iv = match (lo_sym, hi_sym, step_const) {
            (Some(lo), Some(hi), Some(s)) if s > 0 => {
                let renv = self.ranges.borrow();
                let l = eval_sym(lo, &renv, &self.range_budget).interval;
                let h = eval_sym(hi, &renv, &self.range_budget).interval;
                Some(Interval::new(l.lo, h.hi)).filter(|iv| !iv.is_top() && !iv.is_empty())
            }
            _ => None,
        };
        // Body recurrences, syntactically over program names: the
        // fixed point must see `k = k + 1` as a recurrence on `k`, not
        // the entry-relative substitution the value environment applies.
        let mut assigns: Vec<ScalarAssign> = Vec::new();
        self.collect_loop_assigns(body_sg, table, &mut assigns);
        loop_fixpoint(
            &entry,
            index_iv.map(|iv| (var, iv)),
            &assigns,
            &self.range_budget,
        )
    }

    /// Appends every scalar assignment in a subgraph (flattened, in
    /// topological order; loop bodies and call effects included) as
    /// [`ScalarAssign`] recurrences over raw program names.
    fn collect_loop_assigns(
        &mut self,
        sg: SubgraphId,
        table: &SymbolTable,
        out: &mut Vec<ScalarAssign>,
    ) {
        let g = self.hsg.subgraphs[sg].clone();
        for &nid in &g.topo {
            let node = &g.nodes[nid];
            match node {
                Node::Block(stmts) => {
                    for s in stmts {
                        if let StmtKind::Assign(LValue::Var(v), rhs) = &s.kind {
                            if table.is_array(v) {
                                continue;
                            }
                            let rhs = if table.scalar_ty(v) == Some(fortran::Ty::Integer) {
                                syntactic_sym(rhs, table)
                            } else {
                                None
                            };
                            out.push(ScalarAssign {
                                var: v.clone(),
                                rhs,
                            });
                        }
                    }
                }
                Node::Loop { var, body, .. } => {
                    out.push(ScalarAssign {
                        var: var.clone(),
                        rhs: None,
                    });
                    self.collect_loop_assigns(*body, table, out);
                }
                Node::Call { .. } | Node::Condensed(_) => {
                    let mut assigned = BTreeSet::new();
                    self.node_assigned_scalars(node, table, &mut assigned);
                    for v in assigned {
                        out.push(ScalarAssign { var: v, rhs: None });
                    }
                }
                _ => {}
            }
        }
    }

    /// All scalars assigned anywhere inside a subgraph (recursing through
    /// loop bodies and callee summaries).
    fn scalars_assigned(&mut self, sg: SubgraphId, table: &SymbolTable) -> BTreeSet<String> {
        let g = self.hsg.subgraphs[sg].clone();
        let mut out = BTreeSet::new();
        for node in &g.nodes {
            self.node_assigned_scalars(node, table, &mut out);
        }
        out
    }

    fn node_assigned_scalars(
        &mut self,
        node: &Node,
        table: &SymbolTable,
        out: &mut BTreeSet<String>,
    ) {
        match node {
            Node::Block(stmts) => {
                for s in stmts {
                    if let StmtKind::Assign(LValue::Var(v), _) = &s.kind {
                        out.insert(v.clone());
                    }
                }
            }
            Node::Loop { var, body, .. } => {
                out.insert(var.clone());
                let inner = self.scalars_assigned(*body, table);
                out.extend(inner);
            }
            Node::Call { name, args } => {
                if self.opts.interprocedural {
                    let callee_summary = self.summarize_routine(name);
                    let callee = self.program.routine(name).unwrap();
                    for s in &callee_summary.scalar_may_mod {
                        if let Some(k) = callee.params.iter().position(|p| p == s) {
                            if let Some(FExpr::Var(v)) = args.get(k) {
                                out.insert(v.clone());
                            }
                        } else {
                            out.insert(s.clone());
                        }
                    }
                } else {
                    for a in args {
                        if let FExpr::Var(v) = a {
                            if !table.is_array(v) {
                                out.insert(v.clone());
                            }
                        }
                    }
                }
            }
            Node::Condensed(members) => {
                for m in members {
                    self.node_assigned_scalars(m, table, out);
                }
            }
            _ => {}
        }
    }

    /// Renames callee-internal synthetic names (`x#k`) so each call site
    /// gets independent unknowns.
    fn freshen_synthetics(&mut self, mut s: Summary) -> Summary {
        let mut names = BTreeSet::new();
        for list in s.mods.values().chain(s.ues.values()) {
            list.collect_vars(&mut names);
        }
        let synthetic: Vec<sym::Name> = names
            .into_iter()
            .filter(|n| n.as_str().contains('#'))
            .collect();
        if synthetic.is_empty() {
            return s;
        }
        let pairs: Vec<(String, Expr)> = synthetic
            .iter()
            .map(|n| {
                let base = n.as_str().split('#').next().unwrap_or("v");
                (n.as_str().to_string(), Expr::var(self.fresh.next(base)))
            })
            .collect();
        for list in s.mods.values_mut() {
            *list = substitute_many(list, &pairs, &mut self.fresh);
        }
        for list in s.ues.values_mut() {
            *list = substitute_many(list, &pairs, &mut self.fresh);
        }
        s
    }

    /// Enforces the size caps on one GAR list: guards larger than the
    /// predicate-term cap go to `true` (over-approximate: the region is
    /// assumed always accessed), and a list longer than the GAR-length
    /// cap collapses to a single unknown region. Both directions are
    /// `Approx::Over`, which the GAR algebra already treats as
    /// not-must-usable, so clamped MOD sets can never kill exposed uses.
    fn fuel_clamp(&mut self, list: GarList) -> GarList {
        trace::add("expansions", 1);
        let lim = self.fuel.limits();
        if lim.max_gar_len.is_none() && lim.max_pred_terms.is_none() {
            return list;
        }
        let mut list = list;
        if let Some(cap) = lim.max_pred_terms {
            if list.gars().iter().any(|g| g.guard.size() > cap) {
                self.fuel.note_degraded(DegradeReason::StateCap);
                trace::add("widenings", 1);
                trace::event("fuel_widen", || {
                    "predicate-term cap: guard -> true".to_string()
                });
                ledger::record(Cause::FuelWiden, || {
                    Site::routine(self.routine_stack.last().cloned().unwrap_or_default())
                        .detail("state_cap: predicate-term cap widened a guard to true")
                });
                list = GarList::from_gars(list.gars().iter().map(|g| {
                    if g.guard.size() > cap {
                        Gar::with_approx(Pred::tru(), g.region.clone(), Approx::Over)
                    } else {
                        g.clone()
                    }
                }));
            }
        }
        if let Some(cap) = lim.max_gar_len {
            if list.gars().len() > cap {
                self.fuel.note_degraded(DegradeReason::StateCap);
                trace::add("widenings", 1);
                trace::event("fuel_widen", || {
                    "GAR-length cap: list -> unknown".to_string()
                });
                ledger::record(Cause::FuelWiden, || {
                    Site::routine(self.routine_stack.last().cloned().unwrap_or_default())
                        .detail("state_cap: GAR-length cap widened a list to unknown")
                });
                let rank = list.gars().first().map(|g| g.rank()).unwrap_or(1);
                list = GarList::single(Gar::unknown(rank));
            }
        }
        list
    }

    /// All array and scalar names mentioned anywhere in a subgraph
    /// (recursing through loop bodies and condensed regions). A whole
    /// array passed to a CALL appears syntactically as a bare variable,
    /// so the split between the two sets is decided by the symbol
    /// table, not by how the name was collected — otherwise arrays
    /// touched only through calls would vanish from widened summaries
    /// and the degraded verdicts would under-report dependences.
    fn subtree_names(
        &self,
        sg: SubgraphId,
        table: &SymbolTable,
    ) -> (BTreeSet<String>, BTreeSet<String>) {
        let mut arrays = BTreeSet::new();
        let mut scalars = BTreeSet::new();
        for node in &self.hsg.subgraphs[sg].nodes {
            collect_node_names(node, self.hsg, &mut arrays, &mut scalars);
        }
        partition_by_table(arrays, scalars, table)
    }

    /// Conservative replacement for a basic block once fuel runs out:
    /// every referenced array becomes unknown MOD/UE/DE, every scalar is
    /// may-modified and upwards exposed, nothing is must-modified, and
    /// assigned scalars are clobbered in the value environment so no
    /// stale binding survives.
    fn widen_bb(
        &mut self,
        stmts: &[Stmt],
        table: &SymbolTable,
        env: &mut ValueEnv,
    ) -> (Summary, BTreeSet<String>) {
        trace::add("widenings", 1);
        trace::event("fuel_widen", || {
            "basic block -> unknown summary".to_string()
        });
        ledger::record(Cause::FuelWiden, || {
            let reason = self.fuel.reason().map(|r| r.as_str()).unwrap_or("unknown");
            Site::routine(self.routine_stack.last().cloned().unwrap_or_default())
                .line(stmts.first().map(|s| s.line).unwrap_or(0))
                .detail(format!("{reason}: basic block widened to unknown summary"))
        });
        let mut arrays = BTreeSet::new();
        let mut scalars = BTreeSet::new();
        collect_node_names(
            &Node::Block(stmts.to_vec()),
            self.hsg,
            &mut arrays,
            &mut scalars,
        );
        let (arrays, scalars) = partition_by_table(arrays, scalars, table);
        let mut sum = Summary::new();
        for a in arrays {
            if table.is_array(&a) {
                let rank = table.array(&a).map(|x| x.rank()).unwrap_or(1);
                sum.add_mod(&a, GarList::single(Gar::unknown(rank)));
                sum.add_ue(&a, GarList::single(Gar::unknown(rank)));
                sum.add_de(&a, GarList::single(Gar::unknown(rank)));
            }
        }
        for s in scalars {
            if !table.is_array(&s) {
                sum.scalar_may_mod.insert(s.clone());
                sum.scalar_ue.insert(s);
            }
        }
        for s in stmts {
            if let StmtKind::Assign(LValue::Var(v), _) = &s.kind {
                env.clobber(v, &mut self.fresh);
            }
        }
        (sum, BTreeSet::new())
    }

    /// The whole-segment widening applied when a budget runs out inside
    /// `sum_segment`: the summary goes to unknown MOD/UE/DE over every
    /// name in the subtree, already-recorded direct-child loops get a
    /// conservative `live_after` (their liveness pass will never run),
    /// and every loop never reached gets a fully-widened degraded
    /// placeholder analysis so it still appears in the report — with the
    /// conservative serial verdict — instead of vanishing.
    /// Indices into `self.loops` of every loop nested (at any depth)
    /// inside the loop body `body_sg`: the transitive closure of loop
    /// nodes over body subgraphs. Subgraph ids are HSG-global, so loops
    /// of other routines can never match.
    fn loops_under(&self, body_sg: SubgraphId) -> Vec<usize> {
        let mut sgs = vec![body_sg];
        let mut i = 0;
        while i < sgs.len() {
            for node in &self.hsg.subgraphs[sgs[i]].nodes {
                if let Node::Loop { body, .. } = node {
                    sgs.push(*body);
                }
            }
            i += 1;
        }
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, la)| la.subgraph != body_sg && sgs.contains(&la.subgraph))
            .map(|(i, _)| i)
            .collect()
    }

    fn widen_segment(
        &mut self,
        sg_id: SubgraphId,
        routine: &str,
        table: &SymbolTable,
        depth: usize,
        loop_of_node: &[Option<usize>],
    ) -> Summary {
        trace::add("widenings", 1);
        trace::event("fuel_widen", || {
            format!("segment of {routine} -> unknown summary")
        });
        ledger::record(Cause::FuelWiden, || {
            let reason = self.fuel.reason().map(|r| r.as_str()).unwrap_or("unknown");
            Site::routine(routine).detail(format!("{reason}: segment widened to unknown summary"))
        });
        for li in loop_of_node.iter().flatten() {
            let arrays: BTreeSet<String> = self.loops[*li].arrays.keys().cloned().collect();
            self.loops[*li].live_after = arrays;
            self.loops[*li].degraded = true;
        }
        let recorded: BTreeSet<SubgraphId> = self.loops.iter().map(|l| l.subgraph).collect();
        self.record_widened_loops(sg_id, routine, table, depth, &recorded);

        let (arrays, scalars) = self.subtree_names(sg_id, table);
        let mut sum = Summary::new();
        for a in arrays {
            if table.is_array(&a) {
                let rank = table.array(&a).map(|x| x.rank()).unwrap_or(1);
                sum.add_mod(&a, GarList::single(Gar::unknown(rank)));
                sum.add_ue(&a, GarList::single(Gar::unknown(rank)));
                sum.add_de(&a, GarList::single(Gar::unknown(rank)));
            }
        }
        for s in scalars {
            if !table.is_array(&s) {
                sum.scalar_may_mod.insert(s.clone());
                sum.scalar_ue.insert(s);
            }
        }
        sum
    }

    /// Records a degraded placeholder [`LoopAnalysis`] for every loop in
    /// the subtree that was never summarized (the forward pass bailed
    /// before reaching it). Loops inside condensed goto-cycles are
    /// excluded, matching `sum_condensed`.
    fn record_widened_loops(
        &mut self,
        sg_id: SubgraphId,
        routine: &str,
        table: &SymbolTable,
        depth: usize,
        recorded: &BTreeSet<SubgraphId>,
    ) {
        let nodes = self.hsg.subgraphs[sg_id].nodes.clone();
        for node in &nodes {
            let Node::Loop {
                var, line, body, ..
            } = node
            else {
                continue;
            };
            if !recorded.contains(body) {
                let (named_arrays, named_scalars) = self.subtree_names(*body, table);
                let mut sets = BTreeMap::new();
                let mut live = BTreeSet::new();
                for a in named_arrays {
                    if table.is_array(&a) {
                        let rank = table.array(&a).map(|x| x.rank()).unwrap_or(1);
                        sets.insert(a.clone(), ArraySets::unknown(rank));
                        live.insert(a);
                    }
                }
                let scalars: BTreeSet<String> = named_scalars
                    .into_iter()
                    .filter(|s| !table.is_array(s))
                    .collect();
                let overlaid = sets
                    .keys()
                    .filter(|a| !table.storage_partners(a).is_empty())
                    .cloned()
                    .collect();
                self.stats.loops_analyzed += 1;
                ledger::record(Cause::FuelWiden, || {
                    let reason = self.fuel.reason().map(|r| r.as_str()).unwrap_or("unknown");
                    Site::routine(routine)
                        .var(var.clone())
                        .line(*line)
                        .detail(format!(
                            "{reason}: loop never summarized, recorded fully widened"
                        ))
                });
                self.loops.push(LoopAnalysis {
                    routine: routine.to_string(),
                    subgraph: *body,
                    var: var.clone(),
                    line: *line,
                    depth,
                    lo: None,
                    hi: None,
                    step: 1,
                    arrays: sets,
                    scalar_ue: scalars.iter().filter(|s| *s != var).cloned().collect(),
                    scalar_mod: scalars,
                    premature_exit: self.hsg.subgraphs[*body].premature_exit,
                    reductions: BTreeSet::new(),
                    overlaid,
                    live_after: live,
                    degraded: true,
                    range_notes: Vec::new(),
                    range_bounds: BTreeMap::new(),
                    content_notes: Vec::new(),
                    content_full: BTreeSet::new(),
                });
            }
            self.record_widened_loops(*body, routine, table, depth + 1, recorded);
        }
    }

    fn ctx<'b>(
        &'b self,
        table: &'b SymbolTable,
        env: &'b ValueEnv,
        loop_vars: &'b BTreeSet<String>,
    ) -> ConvertCtx<'b> {
        ConvertCtx {
            table,
            env,
            symbolic: self.opts.symbolic,
            loop_vars,
            facts: &self.facts,
        }
    }

    fn trace_node(&mut self, routine: &str, sg: SubgraphId, nid: NodeId, g: &Subgraph, st: &State) {
        let tag = g.nodes[nid].tag();
        for (arr, list) in &st.ues {
            if !list.is_empty() {
                self.trace.push(format!(
                    "{routine} sg{sg} n{nid}({tag}) ue_in[{arr}] = {list}"
                ));
            }
        }
        for (arr, list) in &st.mods {
            if !list.is_empty() {
                self.trace.push(format!(
                    "{routine} sg{sg} n{nid}({tag}) mod_in[{arr}] = {list}"
                ));
            }
        }
    }
}

/// Cap on persisted range notes per loop: enough for provenance,
/// bounded for cache entries.
const RANGE_NOTE_CAP: usize = 8;

/// Converts a Fortran expression to a symbolic polynomial **over raw
/// program names** — no value-environment substitution — so loop-body
/// recurrences like `k = k + 1` stay recurrences for the range fixed
/// point. PARAMETER constants fold; anything non-affine is `None`.
fn syntactic_sym(e: &FExpr, table: &SymbolTable) -> Option<Expr> {
    match e {
        FExpr::Int(c) => Some(Expr::from(*c)),
        FExpr::Var(n) if !table.is_array(n) => {
            if let Some(c) = table.constant(n) {
                return syntactic_sym(c, table);
            }
            if table.scalar_ty(n) == Some(fortran::Ty::Integer) {
                Some(Expr::var(n.as_str()))
            } else {
                None
            }
        }
        FExpr::Bin(op, a, b) => {
            let a = syntactic_sym(a, table)?;
            let b = syntactic_sym(b, table)?;
            match op {
                BinOp::Add => a.try_add(&b),
                BinOp::Sub => a.try_sub(&b),
                BinOp::Mul => a.try_mul(&b),
                _ => None,
            }
        }
        FExpr::Un(fortran::UnOp::Neg, a) => {
            let a = syntactic_sym(a, table)?;
            Expr::zero().try_sub(&a)
        }
        _ => None,
    }
}

/// `true` iff the `kind` edge out of IF-condition node `p` was proved
/// unreachable by the value-range pass.
fn dead_edge(cond_known: &[Option<bool>], p: NodeId, kind: EdgeKind) -> bool {
    matches!(
        (cond_known[p], kind),
        (Some(true), EdgeKind::False) | (Some(false), EdgeKind::True)
    )
}

/// Drops guard clauses that depend on the *values* of `array` (it was just
/// modified, making such conditions stale).
fn forget_guard_dep(list: &GarList, array: &str) -> GarList {
    if !list.gars().iter().any(|g| g.guard.contains_var(array)) {
        return list.clone();
    }
    GarList::from_gars(list.gars().iter().map(|g| {
        if g.guard.contains_var(array) {
            Gar::with_approx(g.guard.forget_var(array), g.region.clone(), g.approx)
        } else {
            g.clone()
        }
    }))
}

/// Scalar variables read by an expression.
fn scalar_reads(e: &FExpr, table: &SymbolTable) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    e.walk(&mut |x| {
        if let FExpr::Var(n) = x {
            if !table.is_array(n) && table.constant(n).is_none() {
                out.insert(n.clone());
            }
        }
    });
    out
}

/// Must-modified scalars of a whole segment: those must-modified by a node
/// that lies on every entry→exit path. We approximate with the nodes that
/// dominate the exit along the single-successor spine from the entry.
fn must_scalar_mods(g: &Subgraph, node_must: &[BTreeSet<String>]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut cur = g.entry;
    let mut guard_steps = 0;
    loop {
        out.extend(node_must[cur].iter().cloned());
        if g.succs[cur].len() != 1 || cur == g.exit {
            break;
        }
        cur = g.succs[cur][0].0;
        guard_steps += 1;
        if guard_steps > g.nodes.len() {
            break;
        }
    }
    out
}

/// Renames a scalar variable inside every GAR of a list.
/// Locates the body of the DO statement at `line` with index `var` in a
/// routine's AST (the HSG keeps loop lines, so the pair is unambiguous).
fn find_do_body<'a>(stmts: &'a [Stmt], line: u32, var: &str) -> Option<&'a [Stmt]> {
    for s in stmts {
        match &s.kind {
            StmtKind::Do { var: v, body, .. } => {
                if s.line == line && v == var {
                    return Some(body);
                }
                if let Some(b) = find_do_body(body, line, var) {
                    return Some(b);
                }
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                if let Some(b) = find_do_body(then_body, line, var)
                    .or_else(|| find_do_body(else_body, line, var))
                {
                    return Some(b);
                }
            }
            StmtKind::LogicalIf(_, inner) => {
                if let Some(b) = find_do_body(std::slice::from_ref(inner), line, var) {
                    return Some(b);
                }
            }
            _ => {}
        }
    }
    None
}

fn rename_var(list: &GarList, from: &str, to: &str) -> GarList {
    list.subst_var(from, &Expr::var(to))
}

/// Simultaneous substitution via two-phase temp renaming.
fn substitute_many(list: &GarList, pairs: &[(String, Expr)], fresh: &mut FreshNames) -> GarList {
    if pairs.is_empty() {
        return list.clone();
    }
    let temps: Vec<sym::Name> = pairs.iter().map(|(n, _)| fresh.next(n)).collect();
    let mut cur = list.clone();
    for ((from, _), tmp) in pairs.iter().zip(&temps) {
        cur = cur.subst_var(from, &Expr::var(tmp.clone()));
    }
    for ((_, value), tmp) in pairs.iter().zip(&temps) {
        cur = cur.subst_var(tmp.as_str(), value);
    }
    cur
}

fn collect_node_names(
    node: &Node,
    hsg: &Hsg,
    arrays: &mut BTreeSet<String>,
    scalars: &mut BTreeSet<String>,
) {
    fn expr_names(e: &FExpr, arrays: &mut BTreeSet<String>, scalars: &mut BTreeSet<String>) {
        e.walk(&mut |x| match x {
            FExpr::Var(n) => {
                scalars.insert(n.clone());
            }
            FExpr::Index(n, _) => {
                arrays.insert(n.clone());
            }
            _ => {}
        });
    }
    match node {
        Node::Block(stmts) => {
            for s in stmts {
                if let StmtKind::Assign(lhs, rhs) = &s.kind {
                    match lhs {
                        LValue::Var(v) => {
                            scalars.insert(v.clone());
                        }
                        LValue::Element(a, subs) => {
                            arrays.insert(a.clone());
                            for sub in subs {
                                expr_names(sub, arrays, scalars);
                            }
                        }
                    }
                    expr_names(rhs, arrays, scalars);
                }
            }
        }
        Node::IfCond(c) => expr_names(c, arrays, scalars),
        Node::Call { args, .. } => {
            for a in args {
                expr_names(a, arrays, scalars);
            }
        }
        Node::Loop {
            var,
            lo,
            hi,
            step,
            body,
            ..
        } => {
            scalars.insert(var.clone());
            expr_names(lo, arrays, scalars);
            expr_names(hi, arrays, scalars);
            if let Some(s) = step {
                expr_names(s, arrays, scalars);
            }
            for inner in &hsg.subgraphs[*body].nodes {
                collect_node_names(inner, hsg, arrays, scalars);
            }
        }
        Node::Condensed(members) => {
            for m in members {
                collect_node_names(m, hsg, arrays, scalars);
            }
        }
        _ => {}
    }
}

/// Re-files collected names by what the symbol table says they are: a
/// name the collector saw only as a bare variable (e.g. a whole array in
/// a CALL argument list) belongs with the arrays when it is declared as
/// one, and declared scalars never belong with the arrays.
fn partition_by_table(
    arrays: BTreeSet<String>,
    scalars: BTreeSet<String>,
    table: &SymbolTable,
) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut arr = BTreeSet::new();
    let mut scal = BTreeSet::new();
    for n in arrays.into_iter().chain(scalars) {
        if table.is_array(&n) {
            arr.insert(n);
        } else {
            scal.insert(n);
        }
    }
    (arr, scal)
}

fn scalars_insert(sum: &mut Summary, name: &str) {
    sum.scalar_may_mod.insert(name.to_string());
    sum.scalar_ue.insert(name.to_string());
}

/// Is `v` a sum/product reduction scalar in this subgraph? Every
/// assignment must be `v = v ± e` or `v = v * e` (`e` free of `v`), every
/// read of `v` must be the self-reference inside such an assignment, and
/// calls disqualify (they might read or write `v` by reference).
fn is_reduction_scalar(g: &Subgraph, hsg: &Hsg, v: &str) -> bool {
    fn expr_uses(e: &FExpr, v: &str) -> usize {
        let mut n = 0;
        e.walk(&mut |x| {
            if matches!(x, FExpr::Var(name) if name == v) {
                n += 1;
            }
        });
        n
    }
    fn stmt_ok(s: &Stmt, v: &str, found: &mut usize) -> bool {
        match &s.kind {
            StmtKind::Assign(LValue::Var(lhs), rhs) if lhs == v => {
                // v = v op e with e free of v, op in {+, -, *}.
                let ok = match rhs {
                    FExpr::Bin(
                        fortran::BinOp::Add | fortran::BinOp::Sub | fortran::BinOp::Mul,
                        a,
                        b,
                    ) => {
                        (matches!(&**a, FExpr::Var(x) if x == v) && expr_uses(b, v) == 0)
                            || (matches!(&**b, FExpr::Var(x) if x == v)
                                && expr_uses(a, v) == 0
                                && !matches!(rhs, FExpr::Bin(fortran::BinOp::Sub, ..)))
                    }
                    _ => false,
                };
                if ok {
                    *found += 1;
                }
                ok
            }
            StmtKind::Assign(lhs, rhs) => {
                // any other read of v disqualifies
                let mut uses = expr_uses(rhs, v);
                if let LValue::Element(_, subs) = lhs {
                    for sub in subs {
                        uses += expr_uses(sub, v);
                    }
                }
                uses == 0 && lhs.name() != v
            }
            _ => true,
        }
    }
    fn node_ok(node: &Node, hsg: &Hsg, v: &str, found: &mut usize) -> bool {
        match node {
            Node::Block(stmts) => stmts.iter().all(|s| stmt_ok(s, v, found)),
            Node::IfCond(c) => expr_uses(c, v) == 0,
            Node::Call { .. } => false,
            Node::Loop {
                var,
                lo,
                hi,
                step,
                body,
                ..
            } => {
                var != v
                    && expr_uses(lo, v) == 0
                    && expr_uses(hi, v) == 0
                    && step.as_ref().is_none_or(|s| expr_uses(s, v) == 0)
                    && hsg.subgraphs[*body]
                        .nodes
                        .iter()
                        .all(|m| node_ok(m, hsg, v, found))
            }
            Node::Condensed(_) => false,
            Node::Entry | Node::Exit => true,
        }
    }
    let mut found = 0usize;
    g.nodes.iter().all(|n| node_ok(n, hsg, v, &mut found)) && found > 0
}

/// Counts assignments to scalar `v` within a subgraph (recursing through
/// loop bodies). Calls count conservatively as two assignments so counter
/// detection bails out.
fn count_scalar_assignments(g: &Subgraph, hsg: &Hsg, v: &str) -> usize {
    g.nodes
        .iter()
        .map(|n| count_assignments_in_node(n, hsg, v))
        .sum()
}

fn count_assignments_in_node(node: &Node, hsg: &Hsg, v: &str) -> usize {
    match node {
        Node::Block(stmts) => stmts
            .iter()
            .filter(|s| matches!(&s.kind, StmtKind::Assign(LValue::Var(x), _) if x == v))
            .count(),
        Node::Loop { var, body, .. } => {
            usize::from(var == v)
                + hsg.subgraphs[*body]
                    .nodes
                    .iter()
                    .map(|m| count_assignments_in_node(m, hsg, v))
                    .sum::<usize>()
        }
        Node::Call { .. } => 2,
        Node::Condensed(members) => members
            .iter()
            .map(|m| count_assignments_in_node(m, hsg, v))
            .sum(),
        _ => 0,
    }
}
