//! Forward scalar value environments.
//!
//! Every subscript, loop bound and IF condition is normalized to
//! *routine-entry-relative* symbolic values before it enters a region or
//! guard — the realization of the paper's on-the-fly scalar substitution,
//! built in the style of Panorama's interprocedural scalar
//! reaching-definition chains. Integer scalars carry a full symbolic value;
//! REAL and LOGICAL scalars carry a *version name*, so that two uses of an
//! unmodified value correlate (the OCEAN `x > SIZE` pattern) while any
//! intervening definition breaks the correlation.

use pred::CondTemplate;
use std::collections::BTreeMap;
use sym::{Expr, Name};

/// A forward value environment at one program point.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ValueEnv {
    /// Integer scalars with a known entry-relative symbolic value. Missing
    /// entries default to the variable's own (entry) name.
    ints: BTreeMap<String, Expr>,
    /// Version names for opaque (REAL/LOGICAL/unknown-int) scalars.
    /// Missing entries default to the variable's own name.
    versions: BTreeMap<String, Name>,
}

impl ValueEnv {
    /// The identity environment (every scalar is its entry value).
    pub fn identity() -> ValueEnv {
        ValueEnv::default()
    }

    /// The symbolic value of an integer scalar.
    pub fn int_value(&self, name: &str) -> Expr {
        self.ints
            .get(name)
            .cloned()
            .unwrap_or_else(|| Expr::var(name))
    }

    /// The version name of an opaque scalar.
    pub fn version(&self, name: &str) -> Name {
        self.versions
            .get(name)
            .cloned()
            .unwrap_or_else(|| Name::new(name))
    }

    /// Records an integer assignment `name := value` (value already
    /// entry-relative).
    pub fn set_int(&mut self, name: &str, value: Expr) {
        self.ints.insert(name.to_string(), value);
    }

    /// Invalidates a scalar with a fresh synthetic version/value,
    /// returning the synthetic name (callers binding range facts to the
    /// new version need it).
    pub fn clobber(&mut self, name: &str, fresh: &mut FreshNames) -> Name {
        let v = fresh.next(name);
        self.ints.insert(name.to_string(), Expr::var(v.clone()));
        self.versions.insert(name.to_string(), v.clone());
        v
    }

    /// Merges environments at a control-flow join: agreeing values are
    /// kept, disagreeing ones are clobbered.
    pub fn join(self, other: &ValueEnv, fresh: &mut FreshNames) -> ValueEnv {
        self.join_recording(other, fresh, &mut Vec::new())
    }

    /// Like [`ValueEnv::join`], but appends one [`JoinRecord`] per
    /// integer scalar whose disagreeing values were replaced by a fresh
    /// synthetic — the binding points where the value-range pass can
    /// prove an interval for the synthetic (the join of both arms'
    /// proved values).
    pub fn join_recording(
        mut self,
        other: &ValueEnv,
        fresh: &mut FreshNames,
        records: &mut Vec<JoinRecord>,
    ) -> ValueEnv {
        let names: Vec<String> = self.ints.keys().chain(other.ints.keys()).cloned().collect();
        for n in names {
            let left = self.int_value(&n);
            let right = other.int_value(&n);
            if left != right {
                let v = fresh.next(&n);
                self.ints.insert(n.clone(), Expr::var(v.clone()));
                records.push(JoinRecord {
                    synthetic: v,
                    left,
                    right,
                });
            }
        }
        let vnames: Vec<String> = self
            .versions
            .keys()
            .chain(other.versions.keys())
            .cloned()
            .collect();
        for n in vnames {
            if self.version(&n) != other.version(&n) {
                let v = fresh.next(&n);
                self.versions.insert(n.clone(), v);
            }
        }
        self
    }
}

/// One synthetic allocated at a [`ValueEnv::join_recording`] merge: the
/// new name and the two entry-relative values it replaced.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinRecord {
    /// The fresh synthetic bound at the join.
    pub synthetic: Name,
    /// The first arm's value.
    pub left: Expr,
    /// The second arm's value.
    pub right: Expr,
}

/// Generator of fresh synthetic names (`name#k`, or `name#scope.k`
/// inside a named scope). `#` cannot appear in Fortran identifiers, so
/// synthetics never collide with program names.
///
/// Scoping exists for the content-addressed summary cache: the analyzer
/// enters a scope named after each routine before summarizing it, with
/// the counter restarted at zero. Every synthetic name a routine's
/// summarization produces is then a pure function of the routine's
/// content — two runs (or two programs embedding the same routine)
/// allocate *identical* names, which is what makes replaying a cached
/// summary byte-identical to recomputing it. Names from different
/// routines can never collide because the scope is part of the name.
#[derive(Debug, Default)]
pub struct FreshNames {
    scope: String,
    counter: u64,
}

/// Saved generator state, restored when a scope is left.
#[derive(Debug)]
pub struct FreshScope {
    scope: String,
    counter: u64,
}

impl FreshNames {
    /// A fresh synthetic derived from `base`.
    pub fn next(&mut self, base: &str) -> Name {
        self.counter += 1;
        if self.scope.is_empty() {
            Name::new(format!("{base}#{}", self.counter))
        } else {
            Name::new(format!("{base}#{}.{}", self.scope, self.counter))
        }
    }

    /// Enters a named scope with a zeroed counter, returning the state
    /// to pass to [`FreshNames::leave_scope`].
    pub fn enter_scope(&mut self, scope: &str) -> FreshScope {
        FreshScope {
            scope: std::mem::replace(&mut self.scope, scope.to_string()),
            counter: std::mem::replace(&mut self.counter, 0),
        }
    }

    /// Restores the generator state saved by [`FreshNames::enter_scope`].
    pub fn leave_scope(&mut self, saved: FreshScope) {
        self.scope = saved.scope;
        self.counter = saved.counter;
    }
}

/// A registered conditional-counter fact (∀-extension): the synthetic
/// counter variable is zero iff the condition template held for *no*
/// iteration of the recorded range.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterFact {
    /// The condition counted.
    pub template: CondTemplate,
    /// Scalar/array dependencies of the condition.
    pub deps: Vec<Name>,
    /// Polarity under which the counter was incremented.
    pub counted_positive: bool,
    /// First counted index.
    pub lo: Expr,
    /// Last counted index.
    pub hi: Expr,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_defaults() {
        let env = ValueEnv::identity();
        assert_eq!(env.int_value("kc"), Expr::var("kc"));
        assert_eq!(env.version("x").as_str(), "x");
    }

    #[test]
    fn set_and_get() {
        let mut env = ValueEnv::identity();
        env.set_int("kc", Expr::from(0));
        assert_eq!(env.int_value("kc"), Expr::from(0));
    }

    #[test]
    fn clobber_creates_synthetic() {
        let mut env = ValueEnv::identity();
        let mut fresh = FreshNames::default();
        env.clobber("x", &mut fresh);
        assert_ne!(env.version("x").as_str(), "x");
        assert!(env.version("x").as_str().starts_with("x#"));
        assert!(env.int_value("x").as_var().is_some());
    }

    #[test]
    fn join_keeps_agreement_clobbers_disagreement() {
        let mut fresh = FreshNames::default();
        let mut a = ValueEnv::identity();
        let mut b = ValueEnv::identity();
        a.set_int("n", Expr::from(5));
        b.set_int("n", Expr::from(5));
        a.set_int("k", Expr::from(1));
        b.set_int("k", Expr::from(2));
        let j = a.join(&b, &mut fresh);
        assert_eq!(j.int_value("n"), Expr::from(5));
        assert!(j.int_value("k").as_var().is_some());
        assert_ne!(j.int_value("k"), Expr::var("k"));
    }

    #[test]
    fn fresh_names_unique() {
        let mut f = FreshNames::default();
        let a = f.next("x");
        let b = f.next("x");
        assert_ne!(a, b);
    }
}
