//! panostore: the crash-safe persistent tier of the summary cache.
//!
//! An on-disk, content-addressed store for [`CachedRoutine`] entries,
//! shared across processes through a cache directory. The design goal
//! is the ROADMAP's scale-out item — summaries outliving one daemon —
//! under this repo's house robustness rule (PR 3's "sound graceful
//! degradation"): **infrastructure failure is precision loss, never
//! soundness loss**. Concretely:
//!
//! * a record that fails its magic / version / checksum is
//!   *quarantined* — moved aside, counted, reported via a
//!   `cache_quarantine` trace event — never loaded and never fatal;
//! * any unexpected IO error disables the tier with a structured
//!   reason and the analysis falls back to the in-memory tier, whose
//!   output is byte-identical to `--no-cache`;
//! * transient write failures are retried with backoff before the
//!   tier gives up.
//!
//! # On-disk layout (see DESIGN.md §5d)
//!
//! ```text
//! <dir>/seg-<seq>-<pid>.pano    immutable segment files
//! <dir>/LOCK                    advisory write lock (pid inside)
//! <dir>/quarantine/             corrupt files moved aside, never read
//! <dir>/.tmp-<pid>-*            uncommitted writes (crash leftovers)
//! ```
//!
//! A segment is written *whole*: encode → temp file → fsync → atomic
//! rename. The rename is the commit point, so a crash at any earlier
//! instant leaves only a `.tmp-*` file that reopening sweeps away
//! (only for dead pids — a live writer's in-flight temp is left
//! alone); a torn segment can only exist if the filesystem itself tore
//! the rename, and then the checksum catches it. Each segment holds
//! one or more records:
//!
//! ```text
//! segment := SEG_MAGIC record*
//! record  := REC_MAGIC version:u16 key:u128 len:u32 payload checksum:u64
//! ```
//!
//! with the checksum (FNV-1a-64) covering version, key, length and
//! payload. Eviction is segment-granular: oldest sequence numbers are
//! deleted until the directory fits the byte budget (entries are
//! content-addressed, so an evicted entry is re-derivable — eviction
//! is purely a capacity concern, exactly as in the memory tier). When
//! the file count grows past a threshold, live records are compacted
//! into one fresh segment through the same atomic path; a crash
//! mid-compaction leaves records duplicated, deduplicated by the next
//! open.
//!
//! Cross-process sharing is cooperative: mutations take the `LOCK`
//! file (pid inside, staleness decided via `/proc/<pid>`), reads are
//! lock-free against immutable segments. A process indexes the
//! directory once at open; segments another process commits later are
//! picked up at *its next open* — acceptable for a warm-start cache,
//! and it keeps `get` to one file read.

pub mod wire;

use crate::cache::{CacheCounters, CacheKey, CachedRoutine, MemoryCache, SummaryCache};
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Magic at the head of every segment file.
const SEG_MAGIC: &[u8; 8] = b"PANOSEG1";
/// Magic at the head of every record.
const REC_MAGIC: &[u8; 4] = b"PREC";
/// Default byte budget for the cache directory (segments only).
pub const DEFAULT_BUDGET_BYTES: u64 = 256 * 1024 * 1024;
/// Compact when the directory holds more than this many segments.
const COMPACT_SEGMENTS: usize = 128;
/// Write attempts before a failure is considered non-transient.
const WRITE_ATTEMPTS: u32 = 3;

/// FNV-1a, 64-bit — the record checksum. Same family as the content
/// hash; dependency-free and plenty for corruption *detection* (the
/// 128-bit content key already guards against collisions).
fn fnv64(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Point-in-time counters of the disk tier, surfaced through
/// `{"cmd":"stats"}`, the Prometheus endpoint and `--metrics`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiskTierSnapshot {
    /// Lookups served from disk (after a memory miss).
    pub disk_hits: u64,
    /// Lookups that missed the disk tier.
    pub disk_misses: u64,
    /// Corrupt records/files detected and set aside, ever.
    pub quarantined: u64,
    /// Put operations abandoned after retries.
    pub write_errors: u64,
    /// Bytes currently held by committed segment files.
    pub bytes_on_disk: u64,
    /// Committed segment files currently live.
    pub segments: usize,
    /// Distinct keys readable from disk.
    pub entries: usize,
    /// Segments deleted to fit the byte budget, ever.
    pub evictions: u64,
    /// `Some(reason)` when the tier degraded to read-never/write-never.
    pub disabled: Option<String>,
}

/// Where a readable record lives.
#[derive(Clone, Debug)]
struct RecordRef {
    segment: u64,
    /// Byte offset of the payload within the segment file.
    payload_at: u64,
    payload_len: u32,
    checksum: u64,
}

#[derive(Clone, Debug)]
struct SegmentMeta {
    path: PathBuf,
    bytes: u64,
    keys: Vec<u128>,
}

/// A record ready to be written: key, encoded payload, checksum.
type PendingRecord = (u128, Vec<u8>, u64);

#[derive(Default)]
struct DiskState {
    index: HashMap<u128, RecordRef>,
    /// Segment sequence number → metadata, oldest first.
    segments: BTreeMap<u64, SegmentMeta>,
    next_seq: u64,
    /// `Some(reason)` once the tier has degraded; all operations
    /// become no-ops (read-never / write-never).
    disabled: Option<String>,
}

/// The persistent tier. All methods are infallible at the API surface:
/// errors degrade (a miss, a skipped write, or a disabled tier),
/// matching the contract that cache trouble may cost speed but never
/// change output.
pub struct DiskCache {
    dir: PathBuf,
    budget_bytes: u64,
    state: Mutex<DiskState>,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    quarantined: AtomicU64,
    write_errors: AtomicU64,
    evictions: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) a cache directory. Never fails: an
    /// unusable directory yields a tier that is already disabled, with
    /// the reason in [`DiskCache::snapshot`].
    pub fn open(dir: impl Into<PathBuf>, budget_bytes: Option<u64>) -> DiskCache {
        let dir = dir.into();
        let cache = DiskCache {
            dir: dir.clone(),
            budget_bytes: budget_bytes.unwrap_or(DEFAULT_BUDGET_BYTES).max(1),
            state: Mutex::new(DiskState::default()),
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        };
        if let Err(e) = cache.open_scan() {
            cache.disable(format!("open {}: {e}", dir.display()));
        }
        cache
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn state(&self) -> std::sync::MutexGuard<'_, DiskState> {
        // Poison-safety mirrors MemoryCache: a panicking worker must
        // not take the cache down with it.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Flips the tier to read-never/write-never with a structured
    /// reason (kept; the first reason wins).
    fn disable(&self, reason: String) {
        let mut st = self.state();
        if st.disabled.is_none() {
            trace::event("cache_disable", || reason.clone());
            st.disabled = Some(reason);
        }
        st.index.clear();
        st.segments.clear();
    }

    // -- open ---------------------------------------------------------

    /// Scans the directory, building the index from every record that
    /// passes its header and checksum. Corrupt files are quarantined
    /// (their valid prefix re-committed), dead writers' temp files are
    /// swept. Only an error preparing the directory itself propagates
    /// (and disables the tier).
    fn open_scan(&self) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        // Probe writability up front so a read-only directory reports
        // one structured reason instead of failing every later put.
        let probe = self.dir.join(format!(".probe-{}", std::process::id()));
        fs::write(&probe, b"w")?;
        let _ = fs::remove_file(&probe);

        let mut salvaged: Vec<PendingRecord> = Vec::new();
        {
            let _lock = LockGuard::acquire(&self.dir, 10);
            let mut files: Vec<(u64, PathBuf)> = Vec::new();
            for entry in fs::read_dir(&self.dir)? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                let path = entry.path();
                if let Some(pid) = parse_tmp_name(&name) {
                    // Uncommitted write: never renamed, so it holds no
                    // promised data. Swept only when its writer died —
                    // a live process may be between write and rename.
                    if !pid_alive(pid) {
                        let _ = fs::remove_file(&path);
                    }
                    continue;
                }
                if let Some(seq) = parse_segment_name(&name) {
                    files.push((seq, path));
                }
            }
            files.sort();

            let mut st = self.state();
            for (seq, path) in files {
                st.next_seq = st.next_seq.max(seq + 1);
                match scan_segment(seq, &path) {
                    Ok((meta, records, corrupt_tail)) => {
                        if let Some(why) = corrupt_tail {
                            // Salvage the valid prefix *before* the
                            // file moves, then re-commit it below.
                            for (key, rref) in &records {
                                if let Ok(payload) = read_payload_checked(&path, rref) {
                                    salvaged.push((*key, payload, rref.checksum));
                                }
                            }
                            drop(st);
                            self.quarantine_file(&path, &why);
                            st = self.state();
                            continue;
                        }
                        for (key, rref) in records {
                            st.index.insert(key, rref);
                        }
                        st.segments.insert(seq, meta);
                    }
                    Err(why) => {
                        drop(st);
                        self.quarantine_file(&path, &why.to_string());
                        st = self.state();
                    }
                }
            }
        }
        if !salvaged.is_empty() {
            // Keys already re-committed by a fresh segment win over
            // nothing; keys also present in an intact segment keep the
            // intact copy (commit_records only fills absent keys).
            self.commit_records(&salvaged);
        }
        self.maintain();
        Ok(())
    }

    /// Moves a corrupt file into `<dir>/quarantine/`, counting and
    /// tracing it. If the move fails the file is removed; if even that
    /// fails it stays in place unindexed — still never loaded.
    fn quarantine_file(&self, path: &Path, why: &str) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let why = why.to_string();
        let shown = path.display().to_string();
        trace::event("cache_quarantine", || format!("{shown}: {why}"));
        let qdir = self.dir.join("quarantine");
        let moved = fs::create_dir_all(&qdir).and_then(|()| {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "unknown".to_string());
            fs::rename(path, qdir.join(name))
        });
        if moved.is_err() {
            let _ = fs::remove_file(path);
        }
    }

    // -- get ----------------------------------------------------------

    /// Looks a key up on disk. A hit decodes the payload (checksum
    /// re-verified at read time); any failure along the way is a miss,
    /// with corrupt segments quarantined as they are discovered.
    pub fn get_entry(&self, key: &CacheKey) -> Option<CachedRoutine> {
        let (rref, seg_path) = {
            let st = self.state();
            if st.disabled.is_some() {
                return None;
            }
            let Some(rref) = st.index.get(&key.0).cloned() else {
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                return None;
            };
            let Some(path) = st.segments.get(&rref.segment).map(|m| m.path.clone()) else {
                drop(st);
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                return None;
            };
            (rref, path)
        };
        match read_payload_checked(&seg_path, &rref) {
            Ok(payload) => match wire::decode_entry(&payload) {
                Ok(entry) => {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    Some(entry)
                }
                Err(e) => {
                    self.drop_segment(rref.segment);
                    self.quarantine_file(&seg_path, &format!("undecodable record: {e}"));
                    self.disk_misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // Another process evicted the segment under us: a
                // benign race, plain miss.
                self.drop_segment(rref.segment);
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(e) => {
                self.drop_segment(rref.segment);
                self.quarantine_file(&seg_path, &format!("unreadable record: {e}"));
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Forgets a segment and every key resolved through it.
    fn drop_segment(&self, seq: u64) {
        let mut st = self.state();
        if let Some(meta) = st.segments.remove(&seq) {
            for k in meta.keys {
                if st.index.get(&k).is_some_and(|r| r.segment == seq) {
                    st.index.remove(&k);
                }
            }
        }
    }

    // -- put ----------------------------------------------------------

    /// Persists an entry: encode, then commit a fresh segment through
    /// temp + fsync + rename under the advisory lock, then run
    /// eviction/compaction maintenance. Write trouble is retried with
    /// backoff; persistent trouble counts a write error and disables
    /// the tier with the failure as the structured reason.
    pub fn put_entry(&self, key: &CacheKey, entry: &CachedRoutine) {
        {
            let st = self.state();
            if st.disabled.is_some() || st.index.contains_key(&key.0) {
                return;
            }
        }
        let payload = wire::encode_entry(entry);
        let checksum = record_checksum(key.0, &payload);
        if self.commit_records(&[(key.0, payload, checksum)]) {
            self.maintain();
        }
    }

    /// Commits records as one new segment file and indexes them (keys
    /// already indexed keep their existing copy). Returns whether the
    /// segment reached disk. Lock contention (another live process
    /// writing) skips the commit — the memory tier still holds the
    /// data, so skipping is sound.
    fn commit_records(&self, records: &[PendingRecord]) -> bool {
        if records.is_empty() {
            return false;
        }
        let _lock = match LockGuard::acquire(&self.dir, 5) {
            LockOutcome::Held(g) => g,
            LockOutcome::Busy => return false,
            LockOutcome::Failed(e) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                self.disable(format!("lock {}: {e}", self.dir.display()));
                return false;
            }
        };
        let seq = {
            let mut st = self.state();
            if st.disabled.is_some() {
                return false;
            }
            let s = st.next_seq;
            st.next_seq += 1;
            s
        };
        let mut body = Vec::with_capacity(
            SEG_MAGIC.len()
                + records
                    .iter()
                    .map(|(_, p, _)| p.len() + REC_HEADER_LEN + 8)
                    .sum::<usize>(),
        );
        body.extend_from_slice(SEG_MAGIC);
        let mut refs = Vec::with_capacity(records.len());
        for (key, payload, checksum) in records {
            let at = body.len();
            body.extend_from_slice(REC_MAGIC);
            body.extend_from_slice(&wire::WIRE_VERSION.to_le_bytes());
            body.extend_from_slice(&key.to_le_bytes());
            body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            body.extend_from_slice(payload);
            body.extend_from_slice(&checksum.to_le_bytes());
            refs.push((
                *key,
                RecordRef {
                    segment: seq,
                    payload_at: (at + REC_HEADER_LEN) as u64,
                    payload_len: payload.len() as u32,
                    checksum: *checksum,
                },
            ));
        }
        let final_path = self.dir.join(segment_name(seq));
        match commit_file_with_retries(&self.dir, &final_path, &body) {
            Ok(()) => {
                let mut st = self.state();
                for (key, rref) in refs {
                    st.index.entry(key).or_insert(rref);
                }
                st.segments.insert(
                    seq,
                    SegmentMeta {
                        path: final_path,
                        bytes: body.len() as u64,
                        keys: records.iter().map(|(k, _, _)| *k).collect(),
                    },
                );
                true
            }
            Err(e) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                self.disable(format!("write {}: {e}", self.dir.display()));
                false
            }
        }
    }

    // -- eviction / compaction ---------------------------------------

    /// Post-commit maintenance: evict to the byte budget, then compact
    /// if the directory is crowded with small segments.
    fn maintain(&self) {
        self.evict_to_budget();
        let crowded = self.state().segments.len() > COMPACT_SEGMENTS;
        if crowded {
            self.compact();
        }
    }

    /// Deletes oldest segments until the directory fits the budget.
    /// Racing another process's eviction only means an ENOENT remove.
    fn evict_to_budget(&self) {
        loop {
            let victim = {
                let mut st = self.state();
                let total: u64 = st.segments.values().map(|m| m.bytes).sum();
                if total <= self.budget_bytes || st.segments.len() <= 1 {
                    return;
                }
                let Some(seq) = st.segments.keys().next().copied() else {
                    return;
                };
                let Some(meta) = st.segments.remove(&seq) else {
                    return;
                };
                for k in &meta.keys {
                    if st.index.get(k).is_some_and(|r| r.segment == seq) {
                        st.index.remove(k);
                    }
                }
                meta
            };
            self.evictions.fetch_add(1, Ordering::Relaxed);
            let _ = fs::remove_file(&victim.path);
        }
    }

    /// Rewrites all live records into one fresh segment and deletes
    /// the originals. Crash-safe: the new segment commits (or not)
    /// atomically before any original is removed, so a crash anywhere
    /// leaves every record readable (possibly duplicated; the next
    /// open deduplicates by key).
    fn compact(&self) {
        let (records, old): (Vec<PendingRecord>, Vec<(u64, PathBuf)>) = {
            let st = self.state();
            if st.disabled.is_some() {
                return;
            }
            let mut recs = Vec::with_capacity(st.index.len());
            for (key, rref) in &st.index {
                let Some(meta) = st.segments.get(&rref.segment) else {
                    continue;
                };
                if let Ok(payload) = read_payload_checked(&meta.path, rref) {
                    recs.push((*key, payload, rref.checksum));
                }
            }
            // Deterministic segment bytes regardless of HashMap order.
            recs.sort_by_key(|(k, _, _)| *k);
            let old = st
                .segments
                .iter()
                .map(|(s, m)| (*s, m.path.clone()))
                .collect();
            (recs, old)
        };
        if records.is_empty() {
            return;
        }
        // The compacted copy must become the indexed one, or dropping
        // the old segments below would orphan every key.
        {
            let mut st = self.state();
            for (seq, _) in &old {
                let seq = *seq;
                if let Some(meta) = st.segments.remove(&seq) {
                    for k in meta.keys {
                        if st.index.get(&k).is_some_and(|r| r.segment == seq) {
                            st.index.remove(&k);
                        }
                    }
                }
            }
        }
        if !self.commit_records(&records) {
            // Old files stay on disk; a future open re-indexes them.
            return;
        }
        for (_, path) in old {
            let _ = fs::remove_file(path);
        }
    }

    // -- observability ------------------------------------------------

    /// Current counters and occupancy.
    pub fn snapshot(&self) -> DiskTierSnapshot {
        let st = self.state();
        DiskTierSnapshot {
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            bytes_on_disk: st.segments.values().map(|m| m.bytes).sum(),
            segments: st.segments.len(),
            entries: st.index.len(),
            evictions: self.evictions.load(Ordering::Relaxed),
            disabled: st.disabled.clone(),
        }
    }
}

const REC_HEADER_LEN: usize = 4 + 2 + 16 + 4; // magic, version, key, len

fn record_checksum(key: u128, payload: &[u8]) -> u64 {
    fnv64(&[
        &wire::WIRE_VERSION.to_le_bytes(),
        &key.to_le_bytes(),
        &(payload.len() as u32).to_le_bytes(),
        payload,
    ])
}

/// What [`scan_segment`] learned about one file: its metadata, the
/// valid records, and `Some(reason)` when a corrupt tail follows them.
type SegmentScan = (SegmentMeta, Vec<(u128, RecordRef)>, Option<String>);

/// Parses one segment file without touching shared state. A file whose
/// segment header is wrong is an `Err` (whole-file quarantine).
fn scan_segment(seq: u64, path: &Path) -> io::Result<SegmentScan> {
    failpoints::fail_point_io("disk-read", &path.to_string_lossy())?;
    let bytes = fs::read(path)?;
    if bytes.len() < SEG_MAGIC.len() || &bytes[..SEG_MAGIC.len()] != SEG_MAGIC {
        return Err(io::Error::other("bad segment magic"));
    }
    let mut records = Vec::new();
    let mut pos = SEG_MAGIC.len();
    let mut corrupt = None;
    while pos < bytes.len() {
        match parse_record(&bytes, pos) {
            Ok((key, payload_at, len, checksum, next)) => {
                records.push((
                    key,
                    RecordRef {
                        segment: seq,
                        payload_at: payload_at as u64,
                        payload_len: len,
                        checksum,
                    },
                ));
                pos = next;
            }
            Err(why) => {
                corrupt = Some(format!("{why} at byte {pos}"));
                break;
            }
        }
    }
    let meta = SegmentMeta {
        path: path.to_path_buf(),
        bytes: bytes.len() as u64,
        keys: records.iter().map(|(k, _)| *k).collect(),
    };
    Ok((meta, records, corrupt))
}

/// Parses one record at `pos`; returns (key, payload offset, payload
/// len, checksum, next record offset).
fn parse_record(bytes: &[u8], pos: usize) -> Result<(u128, usize, u32, u64, usize), &'static str> {
    let header_end = pos.checked_add(REC_HEADER_LEN).ok_or("record overflow")?;
    if header_end > bytes.len() {
        return Err("truncated record header");
    }
    if &bytes[pos..pos + 4] != REC_MAGIC {
        return Err("bad record magic");
    }
    let version = u16::from_le_bytes(bytes[pos + 4..pos + 6].try_into().expect("2 bytes"));
    if version != wire::WIRE_VERSION {
        return Err("record version mismatch");
    }
    let key = u128::from_le_bytes(bytes[pos + 6..pos + 22].try_into().expect("16 bytes"));
    let len = u32::from_le_bytes(bytes[pos + 22..pos + 26].try_into().expect("4 bytes"));
    let payload_at = header_end;
    let payload_end = payload_at
        .checked_add(len as usize)
        .ok_or("record overflow")?;
    let rec_end = payload_end.checked_add(8).ok_or("record overflow")?;
    if rec_end > bytes.len() {
        return Err("truncated record body");
    }
    let payload = &bytes[payload_at..payload_end];
    let stored = u64::from_le_bytes(bytes[payload_end..rec_end].try_into().expect("8 bytes"));
    if stored != record_checksum(key, payload) {
        return Err("checksum mismatch");
    }
    Ok((key, payload_at, len, stored, rec_end))
}

/// Reads a record's payload from its segment and re-verifies the
/// stored checksum — the file may have changed since open.
fn read_payload_checked(path: &Path, rref: &RecordRef) -> io::Result<Vec<u8>> {
    failpoints::fail_point_io("disk-read", &path.to_string_lossy())?;
    let mut f = fs::File::open(path)?;
    // Re-read the key from the header to bind payload to checksum.
    let key_at = rref
        .payload_at
        .checked_sub((16 + 4) as u64)
        .ok_or_else(|| io::Error::other("record before header"))?;
    f.seek(SeekFrom::Start(key_at))?;
    let mut kb = [0u8; 16];
    f.read_exact(&mut kb)?;
    let key = u128::from_le_bytes(kb);
    f.seek(SeekFrom::Start(rref.payload_at))?;
    let mut payload = vec![0u8; rref.payload_len as usize];
    f.read_exact(&mut payload)?;
    if record_checksum(key, &payload) != rref.checksum {
        return Err(io::Error::other("checksum mismatch on read"));
    }
    Ok(payload)
}

fn segment_name(seq: u64) -> String {
    format!("seg-{seq:012}-{}.pano", std::process::id())
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?;
    let rest = rest.strip_suffix(".pano")?;
    let (seq, _pid) = rest.split_once('-')?;
    seq.parse().ok()
}

/// `Some(pid)` for a `.tmp-<pid>-…` temp-file name.
fn parse_tmp_name(name: &str) -> Option<u32> {
    let rest = name.strip_prefix(".tmp-")?;
    let (pid, _) = rest.split_once('-')?;
    pid.parse().ok()
}

fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

/// Temp-write + fsync + atomic rename, wrapped in retry-with-backoff
/// for transient trouble (three attempts: immediately, ~1ms, ~4ms).
fn commit_file_with_retries(dir: &Path, final_path: &Path, body: &[u8]) -> io::Result<()> {
    let mut last: Option<io::Error> = None;
    for attempt in 0..WRITE_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(std::time::Duration::from_millis(1 << (attempt - 1)));
        }
        match commit_file_once(dir, final_path, body) {
            Ok(()) => return Ok(()),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("at least one attempt"))
}

fn commit_file_once(dir: &Path, final_path: &Path, body: &[u8]) -> io::Result<()> {
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        final_path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default()
    ));
    let result = (|| -> io::Result<()> {
        failpoints::fail_point_io("disk-write", &final_path.to_string_lossy())?;
        let mut f = fs::File::create(&tmp)?;
        f.write_all(body)?;
        failpoints::fail_point_io("disk-fsync", &final_path.to_string_lossy())?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, final_path)?;
        // Make the rename itself durable; best-effort (some
        // filesystems refuse fsync on directories).
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------
// Advisory lock
// ---------------------------------------------------------------------

enum LockOutcome {
    Held(LockGuard),
    /// A live process holds the lock.
    Busy,
    /// The lock file could not be created for IO reasons.
    Failed(io::Error),
}

/// `<dir>/LOCK`, created exclusively with our pid inside. Staleness is
/// decided by `/proc/<pid>` existence, so a `kill -9`'d writer never
/// wedges the directory. RAII: dropping the guard removes the file.
struct LockGuard {
    path: PathBuf,
}

impl LockGuard {
    fn acquire(dir: &Path, attempts: u32) -> LockOutcome {
        let path = dir.join("LOCK");
        if let Err(e) = failpoints::fail_point_io("disk-lock", &path.to_string_lossy()) {
            return LockOutcome::Failed(e);
        }
        for attempt in 0..attempts.max(1) {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = f.write_all(std::process::id().to_string().as_bytes());
                    let _ = f.sync_all();
                    return LockOutcome::Held(LockGuard { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if holder_is_stale(&path) {
                        let _ = fs::remove_file(&path);
                        continue; // retry the create_new race
                    }
                    if attempt + 1 < attempts {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                }
                Err(e) => return LockOutcome::Failed(e),
            }
        }
        LockOutcome::Busy
    }
}

/// `true` when the pid recorded in the lock file no longer exists. An
/// unreadable or garbled lock file usually means a dead writer too —
/// except for the tiny create-to-write window of a live one, which
/// gets a short mtime grace period.
fn holder_is_stale(path: &Path) -> bool {
    match fs::read_to_string(path) {
        Ok(s) => match s.trim().parse::<u32>() {
            Ok(pid) => !pid_alive(pid),
            Err(_) => !recently_modified(path),
        },
        Err(e) => e.kind() != io::ErrorKind::NotFound && !recently_modified(path),
    }
}

fn recently_modified(path: &Path) -> bool {
    fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| t.elapsed().ok())
        .is_some_and(|age| age < std::time::Duration::from_secs(2))
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

// ---------------------------------------------------------------------
// The two-tier cache
// ---------------------------------------------------------------------

/// Memory in front of disk: `get` checks memory, then disk (promoting
/// hits); `put` writes through to both. The memory tier alone already
/// guarantees byte-identical replay, so every disk failure mode simply
/// collapses this into a [`MemoryCache`].
pub struct TieredCache {
    memory: MemoryCache,
    disk: Arc<DiskCache>,
}

impl TieredCache {
    /// Builds a tiered cache over an already opened disk tier.
    pub fn new(memory: MemoryCache, disk: Arc<DiskCache>) -> TieredCache {
        TieredCache { memory, disk }
    }

    /// The disk tier (for tests and direct snapshots).
    pub fn disk_tier(&self) -> &DiskCache {
        &self.disk
    }
}

impl SummaryCache for TieredCache {
    fn get(&self, key: &CacheKey) -> Option<Arc<CachedRoutine>> {
        if let Some(hit) = self.memory.get(key) {
            return Some(hit);
        }
        let entry = Arc::new(self.disk.get_entry(key)?);
        // Promote: later lookups in this process stay in memory.
        self.memory.put(*key, Arc::clone(&entry));
        Some(entry)
    }

    fn put(&self, key: CacheKey, entry: Arc<CachedRoutine>) {
        self.disk.put_entry(&key, &entry);
        self.memory.put(key, entry);
    }

    fn counters(&self) -> CacheCounters {
        self.memory.counters()
    }

    fn disk(&self) -> Option<DiskTierSnapshot> {
        Some(self.disk.snapshot())
    }
}
