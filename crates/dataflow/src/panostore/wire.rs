//! Binary wire codec for persisted cache entries.
//!
//! The vendored serde shim renders JSON for *diagnostics only* — its
//! `Deserialize` derive expands to nothing — so the disk tier carries
//! its own length-prefixed little-endian codec over the whole
//! [`CachedRoutine`] type graph (summary → GAR lists → predicates →
//! symbolic expressions).
//!
//! **Exactness contract.** `decode(encode(x))` must reproduce `x`
//! byte-for-byte under `Debug` formatting, because replaying a disk
//! entry must emit the identical report a cold run would (the cache's
//! replay contract, `dataflow::cache` module docs). Every container in
//! the graph stores values *already in canonical form* (sorted terms,
//! canonicalized atoms, simplified GAR lists), so decoding rebuilds
//! them through raw constructors — [`Disj::from_canonical_atoms`],
//! [`GarList::from_simplified`], struct literals for [`Gar`] — rather
//! than the public normalizing constructors, whose simplifiers are not
//! guaranteed to be fixed points for every value they once produced.
//!
//! **Robustness contract.** Decoding never panics and never trusts a
//! length: every read is bounds-checked, collection counts are capped,
//! and any inconsistency returns [`WireError`] so the caller can
//! quarantine the record instead of loading garbage. (Records are
//! checksummed before decoding, so a `WireError` in practice means a
//! version skew the header check missed or a corrupted-but-colliding
//! payload; both are treated as corruption.)

use crate::analyzer::{ContentNote, LoopAnalysis, RangeNote};
use crate::cache::CachedRoutine;
use crate::summary::{ArraySets, Summary};
use gar::{Approx, Gar, GarList};
use pred::{Atom, CondTemplate, Disj, Pred, RelOp};
use region::{Dim, Range, Region};
use std::collections::{BTreeMap, BTreeSet};
use sym::{Expr, Monomial, Name, Term};

/// Version of the payload layout. Bumped whenever any encoded type
/// gains, loses, or reorders a field; old records then fail the header
/// check and are quarantined rather than misdecoded.
pub const WIRE_VERSION: u16 = 2;

/// Upper bound on any single collection length in a record. Entries
/// are per-routine summaries — thousands of elements, not millions —
/// so anything larger is corruption, and refusing early keeps a bad
/// length from turning into a giant allocation.
const MAX_COUNT: usize = 1 << 22;

/// A malformed or truncated payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What failed to decode.
    pub what: &'static str,
    /// Byte offset at which the failure was noticed.
    pub offset: usize,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wire decode error: {} at byte {}",
            self.what, self.offset
        )
    }
}

impl std::error::Error for WireError {}

type Result<T> = std::result::Result<T, WireError>;

// ---------------------------------------------------------------------
// Primitive encoder / decoder
// ---------------------------------------------------------------------

/// Byte-sink with little-endian primitive writers.
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty sink.
    pub fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn count(&mut self, n: usize) {
        self.u32(n as u32);
    }

    fn str(&mut self, s: &str) {
        self.count(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn opt_i64(&mut self, v: &Option<i64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.i64(*x);
            }
            None => self.bool(false),
        }
    }
}

impl Default for Enc {
    fn default() -> Self {
        Enc::new()
    }
}

/// Bounds-checked little-endian reader over a payload slice.
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, pos: 0 }
    }

    /// Fails unless every byte was consumed — trailing garbage after a
    /// structurally valid prefix is corruption too.
    pub fn finish(self) -> Result<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.err("trailing bytes"))
        }
    }

    fn err(&self, what: &'static str) -> WireError {
        WireError {
            what,
            offset: self.pos,
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.err(what))?;
        if end > self.bytes.len() {
            return Err(self.err(what));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn bool(&mut self, what: &'static str) -> Result<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(self.err(what)),
        }
    }

    fn u32(&mut self, what: &'static str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn i64(&mut self, what: &'static str) -> Result<i64> {
        let b = self.take(8, what)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn count(&mut self, what: &'static str) -> Result<usize> {
        let n = self.u32(what)? as usize;
        if n > MAX_COUNT {
            return Err(self.err(what));
        }
        Ok(n)
    }

    fn str(&mut self, what: &'static str) -> Result<String> {
        let n = self.count(what)?;
        let b = self.take(n, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| self.err(what))
    }

    fn opt_i64(&mut self, what: &'static str) -> Result<Option<i64>> {
        Ok(if self.bool(what)? {
            Some(self.i64(what)?)
        } else {
            None
        })
    }
}

// ---------------------------------------------------------------------
// sym: Name / Monomial / Term / Expr
// ---------------------------------------------------------------------

fn enc_name(e: &mut Enc, n: &Name) {
    e.str(n.as_str());
}

fn dec_name(d: &mut Dec) -> Result<Name> {
    Ok(Name::new(d.str("name")?))
}

fn enc_monomial(e: &mut Enc, m: &Monomial) {
    e.count(m.factors().len());
    for (n, p) in m.factors() {
        enc_name(e, n);
        e.u32(*p);
    }
}

fn dec_monomial(d: &mut Dec) -> Result<Monomial> {
    let n = d.count("monomial factors")?;
    let mut factors = Vec::with_capacity(n);
    for _ in 0..n {
        let name = dec_name(d)?;
        let pow = d.u32("monomial power")?;
        factors.push((name, pow));
    }
    // `from_factors` sorts and merges; on factors encoded from a
    // canonical monomial it is the identity.
    Ok(Monomial::from_factors(factors))
}

fn enc_expr(e: &mut Enc, x: &Expr) {
    e.count(x.terms().len());
    for t in x.terms() {
        e.i64(t.coef);
        enc_monomial(e, &t.mono);
    }
}

fn dec_expr(d: &mut Dec) -> Result<Expr> {
    let n = d.count("expr terms")?;
    let mut terms = Vec::with_capacity(n);
    for _ in 0..n {
        let coef = d.i64("term coef")?;
        let mono = dec_monomial(d)?;
        terms.push(Term::new(coef, mono));
    }
    // Identity on canonical term lists; `None` only when a corrupt
    // payload merged two terms into an overflowing coefficient.
    Expr::try_from_terms(terms).ok_or_else(|| d.err("expr overflow"))
}

fn enc_opt_expr(e: &mut Enc, x: &Option<Expr>) {
    match x {
        Some(x) => {
            e.bool(true);
            enc_expr(e, x);
        }
        None => e.bool(false),
    }
}

fn dec_opt_expr(d: &mut Dec) -> Result<Option<Expr>> {
    Ok(if d.bool("opt expr")? {
        Some(dec_expr(d)?)
    } else {
        None
    })
}

// ---------------------------------------------------------------------
// pred: Atom / Disj / Pred
// ---------------------------------------------------------------------

fn enc_relop(e: &mut Enc, op: RelOp) {
    e.u8(match op {
        RelOp::Lt => 0,
        RelOp::Eq => 1,
        RelOp::Ne => 2,
    });
}

fn dec_relop(d: &mut Dec) -> Result<RelOp> {
    Ok(match d.u8("relop")? {
        0 => RelOp::Lt,
        1 => RelOp::Eq,
        2 => RelOp::Ne,
        _ => return Err(d.err("relop tag")),
    })
}

fn enc_names(e: &mut Enc, names: &[Name]) {
    e.count(names.len());
    for n in names {
        enc_name(e, n);
    }
}

fn dec_names(d: &mut Dec) -> Result<Vec<Name>> {
    let n = d.count("name list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec_name(d)?);
    }
    Ok(out)
}

fn enc_atom(e: &mut Enc, a: &Atom) {
    match a {
        Atom::Rel(x, op) => {
            e.u8(0);
            enc_expr(e, x);
            enc_relop(e, *op);
        }
        Atom::Bool(n, v) => {
            e.u8(1);
            enc_name(e, n);
            e.bool(*v);
        }
        Atom::Cond {
            template,
            index,
            deps,
            positive,
        } => {
            e.u8(2);
            e.str(&template.0);
            enc_expr(e, index);
            enc_names(e, deps);
            e.bool(*positive);
        }
        Atom::ForallCond {
            template,
            lo,
            hi,
            deps,
            positive,
        } => {
            e.u8(3);
            e.str(&template.0);
            enc_expr(e, lo);
            enc_expr(e, hi);
            enc_names(e, deps);
            e.bool(*positive);
        }
    }
}

fn dec_atom(d: &mut Dec) -> Result<Atom> {
    // Stored atoms are already canonical (they came out of a Disj), so
    // variants are rebuilt literally, without `Atom::canon`.
    Ok(match d.u8("atom tag")? {
        0 => {
            let x = dec_expr(d)?;
            let op = dec_relop(d)?;
            Atom::Rel(x, op)
        }
        1 => {
            let n = dec_name(d)?;
            let v = d.bool("bool atom value")?;
            Atom::Bool(n, v)
        }
        2 => {
            let template = CondTemplate::new(d.str("cond template")?);
            let index = dec_expr(d)?;
            let deps = dec_names(d)?;
            let positive = d.bool("cond polarity")?;
            Atom::Cond {
                template,
                index,
                deps,
                positive,
            }
        }
        3 => {
            let template = CondTemplate::new(d.str("forall template")?);
            let lo = dec_expr(d)?;
            let hi = dec_expr(d)?;
            let deps = dec_names(d)?;
            let positive = d.bool("forall polarity")?;
            Atom::ForallCond {
                template,
                lo,
                hi,
                deps,
                positive,
            }
        }
        _ => return Err(d.err("atom tag")),
    })
}

fn enc_disj(e: &mut Enc, dj: &Disj) {
    e.count(dj.atoms().len());
    for a in dj.atoms() {
        enc_atom(e, a);
    }
}

fn dec_disj(d: &mut Dec) -> Result<Disj> {
    let n = d.count("disj atoms")?;
    let mut atoms = Vec::with_capacity(n);
    for _ in 0..n {
        atoms.push(dec_atom(d)?);
    }
    Ok(Disj::from_canonical_atoms(atoms))
}

fn enc_pred(e: &mut Enc, p: &Pred) {
    match p {
        Pred::False => e.u8(0),
        Pred::Cnf { disjs, unknown } => {
            e.u8(1);
            e.count(disjs.len());
            for dj in disjs {
                enc_disj(e, dj);
            }
            e.bool(*unknown);
        }
    }
}

fn dec_pred(d: &mut Dec) -> Result<Pred> {
    Ok(match d.u8("pred tag")? {
        0 => Pred::False,
        1 => {
            let n = d.count("pred disjs")?;
            let mut disjs = Vec::with_capacity(n);
            for _ in 0..n {
                disjs.push(dec_disj(d)?);
            }
            let unknown = d.bool("pred unknown")?;
            Pred::Cnf { disjs, unknown }
        }
        _ => return Err(d.err("pred tag")),
    })
}

// ---------------------------------------------------------------------
// region: Range / Dim / Region
// ---------------------------------------------------------------------

fn enc_region(e: &mut Enc, r: &Region) {
    e.count(r.dims().len());
    for dim in r.dims() {
        match dim {
            Dim::Range(rg) => {
                e.u8(0);
                enc_expr(e, &rg.lo);
                enc_expr(e, &rg.hi);
                enc_expr(e, &rg.step);
            }
            Dim::Unknown => e.u8(1),
        }
    }
}

fn dec_region(d: &mut Dec) -> Result<Region> {
    let n = d.count("region dims")?;
    let mut dims = Vec::with_capacity(n);
    for _ in 0..n {
        dims.push(match d.u8("dim tag")? {
            0 => {
                let lo = dec_expr(d)?;
                let hi = dec_expr(d)?;
                let step = dec_expr(d)?;
                Dim::Range(Range { lo, hi, step })
            }
            1 => Dim::Unknown,
            _ => return Err(d.err("dim tag")),
        });
    }
    Ok(Region::new(dims))
}

// ---------------------------------------------------------------------
// gar: Gar / GarList
// ---------------------------------------------------------------------

fn enc_gar(e: &mut Enc, g: &Gar) {
    enc_pred(e, &g.guard);
    enc_region(e, &g.region);
    e.u8(match g.approx {
        Approx::Exact => 0,
        Approx::Over => 1,
        Approx::Under => 2,
    });
}

fn dec_gar(d: &mut Dec) -> Result<Gar> {
    let guard = dec_pred(d)?;
    let region = dec_region(d)?;
    let approx = match d.u8("approx tag")? {
        0 => Approx::Exact,
        1 => Approx::Over,
        2 => Approx::Under,
        _ => return Err(d.err("approx tag")),
    };
    // Struct literal, not `Gar::with_approx`: the stored GAR already
    // carries its validity conjuncts and normalized marker, and the
    // normalizer must not run twice.
    Ok(Gar {
        guard,
        region,
        approx,
    })
}

fn enc_garlist(e: &mut Enc, l: &GarList) {
    e.count(l.gars().len());
    for g in l.gars() {
        enc_gar(e, g);
    }
}

fn dec_garlist(d: &mut Dec) -> Result<GarList> {
    let n = d.count("garlist")?;
    let mut gars = Vec::with_capacity(n);
    for _ in 0..n {
        gars.push(dec_gar(d)?);
    }
    Ok(GarList::from_simplified(gars))
}

// ---------------------------------------------------------------------
// Maps and sets of the summary layer
// ---------------------------------------------------------------------

fn enc_garlist_map(e: &mut Enc, m: &BTreeMap<String, GarList>) {
    e.count(m.len());
    for (k, v) in m {
        e.str(k);
        enc_garlist(e, v);
    }
}

fn dec_garlist_map(d: &mut Dec) -> Result<BTreeMap<String, GarList>> {
    let n = d.count("garlist map")?;
    let mut m = BTreeMap::new();
    for _ in 0..n {
        let k = d.str("garlist map key")?;
        let v = dec_garlist(d)?;
        m.insert(k, v);
    }
    Ok(m)
}

fn enc_str_set(e: &mut Enc, s: &BTreeSet<String>) {
    e.count(s.len());
    for x in s {
        e.str(x);
    }
}

fn dec_str_set(d: &mut Dec) -> Result<BTreeSet<String>> {
    let n = d.count("string set")?;
    let mut s = BTreeSet::new();
    for _ in 0..n {
        s.insert(d.str("string set entry")?);
    }
    Ok(s)
}

type BoundsMap = BTreeMap<String, (Option<i64>, Option<i64>)>;

fn enc_bounds_map(e: &mut Enc, m: &BoundsMap) {
    e.count(m.len());
    for (k, (lo, hi)) in m {
        e.str(k);
        e.opt_i64(lo);
        e.opt_i64(hi);
    }
}

fn dec_bounds_map(d: &mut Dec) -> Result<BoundsMap> {
    let n = d.count("bounds map")?;
    let mut m = BTreeMap::new();
    for _ in 0..n {
        let k = d.str("bounds map key")?;
        let lo = d.opt_i64("bound lo")?;
        let hi = d.opt_i64("bound hi")?;
        m.insert(k, (lo, hi));
    }
    Ok(m)
}

fn enc_summary(e: &mut Enc, s: &Summary) {
    enc_garlist_map(e, &s.mods);
    enc_garlist_map(e, &s.ues);
    enc_garlist_map(e, &s.des);
    enc_str_set(e, &s.scalar_may_mod);
    enc_str_set(e, &s.scalar_must_mod);
    enc_str_set(e, &s.scalar_ue);
    enc_bounds_map(e, &s.scalar_exit_range);
}

fn dec_summary(d: &mut Dec) -> Result<Summary> {
    Ok(Summary {
        mods: dec_garlist_map(d)?,
        ues: dec_garlist_map(d)?,
        des: dec_garlist_map(d)?,
        scalar_may_mod: dec_str_set(d)?,
        scalar_must_mod: dec_str_set(d)?,
        scalar_ue: dec_str_set(d)?,
        scalar_exit_range: dec_bounds_map(d)?,
    })
}

fn enc_array_sets(e: &mut Enc, a: &ArraySets) {
    enc_garlist(e, &a.mod_i);
    enc_garlist(e, &a.ue_i);
    enc_garlist(e, &a.de_i);
    enc_garlist(e, &a.mod_lt);
    enc_garlist(e, &a.mod_gt);
}

fn dec_array_sets(d: &mut Dec) -> Result<ArraySets> {
    Ok(ArraySets {
        mod_i: dec_garlist(d)?,
        ue_i: dec_garlist(d)?,
        de_i: dec_garlist(d)?,
        mod_lt: dec_garlist(d)?,
        mod_gt: dec_garlist(d)?,
    })
}

fn enc_range_note(e: &mut Enc, n: &RangeNote) {
    match n {
        RangeNote::Refute { cond, always } => {
            e.u8(0);
            e.str(cond);
            e.bool(*always);
        }
        RangeNote::Compare {
            lhs,
            rhs,
            detail,
            result,
        } => {
            e.u8(1);
            e.str(lhs);
            e.str(rhs);
            e.str(detail);
            e.str(result);
        }
    }
}

fn dec_range_note(d: &mut Dec) -> Result<RangeNote> {
    Ok(match d.u8("range note tag")? {
        0 => RangeNote::Refute {
            cond: d.str("refute cond")?,
            always: d.bool("refute always")?,
        },
        1 => RangeNote::Compare {
            lhs: d.str("compare lhs")?,
            rhs: d.str("compare rhs")?,
            detail: d.str("compare detail")?,
            result: d.str("compare result")?,
        },
        _ => return Err(d.err("range note tag")),
    })
}

fn enc_content_note(e: &mut Enc, n: &ContentNote) {
    match n {
        ContentNote::Refute { array, detail } => {
            e.u8(0);
            e.str(array);
            e.str(detail);
        }
        ContentNote::FullDef { array, detail } => {
            e.u8(1);
            e.str(array);
            e.str(detail);
        }
    }
}

fn dec_content_note(d: &mut Dec) -> Result<ContentNote> {
    Ok(match d.u8("content note tag")? {
        0 => ContentNote::Refute {
            array: d.str("refute array")?,
            detail: d.str("refute detail")?,
        },
        1 => ContentNote::FullDef {
            array: d.str("fulldef array")?,
            detail: d.str("fulldef detail")?,
        },
        _ => return Err(d.err("content note tag")),
    })
}

fn enc_loop(e: &mut Enc, l: &LoopAnalysis) {
    e.str(&l.routine);
    e.u64(l.subgraph as u64);
    e.str(&l.var);
    e.u32(l.line);
    e.u64(l.depth as u64);
    enc_opt_expr(e, &l.lo);
    enc_opt_expr(e, &l.hi);
    e.i64(l.step);
    e.count(l.arrays.len());
    for (k, v) in &l.arrays {
        e.str(k);
        enc_array_sets(e, v);
    }
    enc_str_set(e, &l.scalar_ue);
    enc_str_set(e, &l.scalar_mod);
    e.bool(l.premature_exit);
    enc_str_set(e, &l.reductions);
    enc_str_set(e, &l.live_after);
    enc_str_set(e, &l.overlaid);
    e.bool(l.degraded);
    e.count(l.range_notes.len());
    for n in &l.range_notes {
        enc_range_note(e, n);
    }
    enc_bounds_map(e, &l.range_bounds);
    e.count(l.content_notes.len());
    for n in &l.content_notes {
        enc_content_note(e, n);
    }
    enc_str_set(e, &l.content_full);
}

fn dec_loop(d: &mut Dec) -> Result<LoopAnalysis> {
    let routine = d.str("loop routine")?;
    let subgraph = d.u64("loop subgraph")? as usize;
    let var = d.str("loop var")?;
    let line = d.u32("loop line")?;
    let depth = d.u64("loop depth")? as usize;
    let lo = dec_opt_expr(d)?;
    let hi = dec_opt_expr(d)?;
    let step = d.i64("loop step")?;
    let n = d.count("loop arrays")?;
    let mut arrays = BTreeMap::new();
    for _ in 0..n {
        let k = d.str("loop array name")?;
        let v = dec_array_sets(d)?;
        arrays.insert(k, v);
    }
    let scalar_ue = dec_str_set(d)?;
    let scalar_mod = dec_str_set(d)?;
    let premature_exit = d.bool("premature exit")?;
    let reductions = dec_str_set(d)?;
    let live_after = dec_str_set(d)?;
    let overlaid = dec_str_set(d)?;
    let degraded = d.bool("degraded")?;
    let nn = d.count("range notes")?;
    let mut range_notes = Vec::with_capacity(nn);
    for _ in 0..nn {
        range_notes.push(dec_range_note(d)?);
    }
    let range_bounds = dec_bounds_map(d)?;
    let nc = d.count("content notes")?;
    let mut content_notes = Vec::with_capacity(nc);
    for _ in 0..nc {
        content_notes.push(dec_content_note(d)?);
    }
    let content_full = dec_str_set(d)?;
    Ok(LoopAnalysis {
        routine,
        subgraph,
        var,
        line,
        depth,
        lo,
        hi,
        step,
        arrays,
        scalar_ue,
        scalar_mod,
        premature_exit,
        reductions,
        live_after,
        overlaid,
        degraded,
        range_notes,
        range_bounds,
        content_notes,
        content_full,
    })
}

// ---------------------------------------------------------------------
// Entry point: CachedRoutine
// ---------------------------------------------------------------------

/// Encodes an entry into the record payload.
pub fn encode_entry(entry: &CachedRoutine) -> Vec<u8> {
    let mut e = Enc::new();
    enc_summary(&mut e, &entry.summary);
    e.count(entry.loops.len());
    for (ordinal, l) in &entry.loops {
        e.u64(*ordinal as u64);
        enc_loop(&mut e, l);
    }
    e.u64(entry.nodes_processed as u64);
    e.u64(entry.loops_analyzed as u64);
    e.u64(entry.peak_state_size as u64);
    e.u64(entry.summary_size as u64);
    e.into_bytes()
}

/// Decodes a record payload. Total function: corrupt input yields
/// `Err`, never a panic or a partially trusted value.
pub fn decode_entry(bytes: &[u8]) -> Result<CachedRoutine> {
    let mut d = Dec::new(bytes);
    let summary = dec_summary(&mut d)?;
    let n = d.count("loops")?;
    let mut loops = Vec::with_capacity(n);
    for _ in 0..n {
        let ordinal = d.u64("loop ordinal")? as usize;
        let l = dec_loop(&mut d)?;
        loops.push((ordinal, l));
    }
    let nodes_processed = d.u64("nodes processed")? as usize;
    let loops_analyzed = d.u64("loops analyzed")? as usize;
    let peak_state_size = d.u64("peak state size")? as usize;
    let summary_size = d.u64("summary size")? as usize;
    let entry = CachedRoutine {
        summary,
        loops,
        nodes_processed,
        loops_analyzed,
        peak_state_size,
        summary_size,
    };
    d.finish()?;
    Ok(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pred::Pred;
    use sym::parse_expr;

    fn e(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    /// The replay contract is Debug-identity: two entries that render
    /// the same `Debug` produce byte-identical reports.
    fn assert_roundtrip(entry: &CachedRoutine) {
        let bytes = encode_entry(entry);
        let back = decode_entry(&bytes).expect("decode");
        assert_eq!(format!("{entry:?}"), format!("{back:?}"));
        // Re-encoding the decoded value must be byte-stable, or a
        // compaction rewrite would change record bytes.
        assert_eq!(bytes, encode_entry(&back));
    }

    fn rich_entry() -> CachedRoutine {
        let g1 = Gar::new(
            Pred::le(e("1"), e("n")),
            Region::from_ranges([Range::contiguous(e("1"), e("n"))]),
        );
        let g2 = Gar::with_approx(
            Pred::unknown(),
            Region::new(vec![
                Dim::Unknown,
                Dim::Range(Range::new(e("i"), e("i+2"), e("2"))),
            ]),
            Approx::Over,
        );
        let mut mods = BTreeMap::new();
        mods.insert(
            "a".to_string(),
            GarList::from_gars([g1.clone(), g2.clone()]),
        );
        let mut ues = BTreeMap::new();
        ues.insert(
            "b".to_string(),
            GarList::single(Gar::element(
                Pred::atom(Atom::Cond {
                    template: CondTemplate::new("$0 > cut"),
                    index: e("k"),
                    deps: vec![Name::new("cut")],
                    positive: true,
                }),
                [e("k*2+1")],
            )),
        );
        let mut summary = Summary::new();
        summary.mods = mods;
        summary.ues = ues;
        summary.scalar_may_mod.insert("s".to_string());
        summary.scalar_must_mod.insert("s".to_string());
        summary.scalar_ue.insert("t".to_string());
        summary
            .scalar_exit_range
            .insert("s".to_string(), (Some(0), None));

        let mut arrays = BTreeMap::new();
        arrays.insert(
            "a".to_string(),
            ArraySets {
                mod_i: GarList::single(g1.clone()),
                ue_i: GarList::empty(),
                de_i: GarList::single(g2),
                mod_lt: GarList::single(g1.clone()),
                mod_gt: GarList::single(g1),
            },
        );
        let la = LoopAnalysis {
            routine: "sub1".to_string(),
            subgraph: 7,
            var: "i".to_string(),
            line: 12,
            depth: 1,
            lo: Some(e("1")),
            hi: Some(e("n")),
            step: 1,
            arrays,
            scalar_ue: ["t".to_string()].into(),
            scalar_mod: ["s".to_string()].into(),
            premature_exit: false,
            reductions: ["s".to_string()].into(),
            live_after: ["a".to_string()].into(),
            overlaid: BTreeSet::new(),
            degraded: false,
            range_notes: vec![
                RangeNote::Refute {
                    cond: "m > 0".to_string(),
                    always: true,
                },
                RangeNote::Compare {
                    lhs: "m".to_string(),
                    rhs: "100".to_string(),
                    detail: "m in [50, 60]".to_string(),
                    result: "lt".to_string(),
                },
            ],
            range_bounds: [("m".to_string(), (Some(50), Some(60)))].into(),
            content_notes: vec![
                ContentNote::Refute {
                    array: "a".to_string(),
                    detail: "UE region covered by prior full definition".to_string(),
                },
                ContentNote::FullDef {
                    array: "w".to_string(),
                    detail: "every declared element written each iteration".to_string(),
                },
            ],
            content_full: ["w".to_string()].into(),
        };
        CachedRoutine {
            summary,
            loops: vec![(0, la)],
            nodes_processed: 42,
            loops_analyzed: 3,
            peak_state_size: 17,
            summary_size: 9,
        }
    }

    #[test]
    fn empty_entry_roundtrips() {
        assert_roundtrip(&CachedRoutine {
            summary: Summary::new(),
            loops: Vec::new(),
            nodes_processed: 0,
            loops_analyzed: 0,
            peak_state_size: 0,
            summary_size: 0,
        });
    }

    #[test]
    fn rich_entry_roundtrips() {
        assert_roundtrip(&rich_entry());
    }

    #[test]
    fn forall_and_bool_atoms_roundtrip() {
        let p = Pred::from_disjs(
            [
                Disj::unit(Atom::ForallCond {
                    template: CondTemplate::new("$0 > cut"),
                    lo: e("1"),
                    hi: e("n"),
                    deps: vec![Name::new("cut")],
                    positive: false,
                }),
                Disj::unit(Atom::Bool(Name::new("flag"), true)),
            ],
            true,
        );
        let mut entry = rich_entry();
        entry.summary.mods.insert(
            "c".to_string(),
            GarList::single(Gar::new(p, Region::unknown(1))),
        );
        assert_roundtrip(&entry);
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let bytes = encode_entry(&rich_entry());
        for cut in [0, 1, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_entry(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let mut bytes = encode_entry(&rich_entry());
        bytes.push(0);
        assert!(decode_entry(&bytes).is_err());
    }

    #[test]
    fn flipped_bytes_never_panic() {
        let bytes = encode_entry(&rich_entry());
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x41;
            // Either decodes (harmlessly different value) or errors;
            // must never panic.
            let _ = decode_entry(&b);
        }
    }

    #[test]
    fn absurd_count_is_rejected_without_allocation() {
        let mut e = Enc::new();
        e.u32(u32::MAX); // claims ~4 billion map entries
        assert!(decode_entry(&e.into_bytes()).is_err());
    }
}
