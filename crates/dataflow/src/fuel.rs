//! Cooperative resource governance for the analysis engine.
//!
//! Symbolic GAR lists, predicate CNFs and substitution chains can grow
//! without bound on pathological inputs. Rather than diverge (or OOM a
//! resident `panoramad`), the analyzer carries a [`Fuel`] meter and
//! *widens* when a budget runs out: guards go to `true`, regions to the
//! full declared bounds, and every affected verdict falls back to the
//! conservative "not privatizable / serial" answer. The report is marked
//! `degraded: true` with a [`DegradeReason`].
//!
//! Soundness of widening rests on the `Approx::Over` discipline already
//! in the GAR algebra: over-approximate pieces are never "must-usable",
//! so they cannot kill upward-exposed uses in `subtract`, and they make
//! disjointness unprovable in `intersect` — both push verdicts toward
//! serial, never toward parallel.
//!
//! Two budget families behave differently:
//!
//! * **result-constraining** limits (`steps`, `max_gar_len`,
//!   `max_pred_terms`) change *what* is computed deterministically — the
//!   same limits give byte-identical reports regardless of worker count
//!   or cache state, because the analyzer bypasses the summary cache
//!   entirely when any of them is set (see `Analyzer::with_limits`);
//! * the **deadline** (`deadline_ms`) is wall-clock and inherently
//!   non-deterministic; deadline-only runs may still read the cache
//!   (a hit can only *restore* precision), but degraded results are
//!   never written back.

use std::time::Instant;

/// Budget limits for one analysis run. `None` everywhere (the default)
/// means unlimited — the meter then costs two branch checks per tick.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuelLimits {
    /// Maximum propagation steps (HSG nodes + statements processed).
    pub steps: Option<u64>,
    /// Maximum pieces per GAR list before it collapses to unknown.
    pub max_gar_len: Option<usize>,
    /// Maximum predicate size (atoms) per guard before it goes `true`.
    pub max_pred_terms: Option<usize>,
    /// Wall-clock deadline for the whole run, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Per-routine step budget for the value-range pass (default
    /// `vrange::DEFAULT_BUDGET`). Exhaustion degrades range facts to ⊤.
    pub range_budget: Option<u64>,
    /// Per-loop step budget for the array-content pass (default
    /// `vrange::DEFAULT_BUDGET`). Exhaustion discards content facts.
    pub content_budget: Option<u64>,
}

impl FuelLimits {
    /// No limits at all.
    pub fn unlimited() -> Self {
        FuelLimits::default()
    }

    /// True when no budget is set.
    pub fn is_unlimited(&self) -> bool {
        *self == FuelLimits::default()
    }

    /// True when a limit is set that changes *what* the analyzer
    /// computes (as opposed to only *how long* it may take). Such runs
    /// must bypass the summary cache: a warm hit would replay a
    /// full-precision summary that a cold run under the same limits
    /// would have widened, making results depend on cache state.
    pub fn constrains_results(&self) -> bool {
        self.steps.is_some()
            || self.max_gar_len.is_some()
            || self.max_pred_terms.is_some()
            || self.range_budget.is_some()
            || self.content_budget.is_some()
    }

    /// Field-wise merge: `self` wins where set, `other` fills the gaps.
    /// Used to overlay per-request limits onto server defaults.
    pub fn or(self, other: FuelLimits) -> FuelLimits {
        FuelLimits {
            steps: self.steps.or(other.steps),
            max_gar_len: self.max_gar_len.or(other.max_gar_len),
            max_pred_terms: self.max_pred_terms.or(other.max_pred_terms),
            deadline_ms: self.deadline_ms.or(other.deadline_ms),
            range_budget: self.range_budget.or(other.range_budget),
            content_budget: self.content_budget.or(other.content_budget),
        }
    }
}

/// Why a run degraded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeReason {
    /// The step budget ran out (halts propagation).
    FuelExhausted,
    /// The wall-clock deadline passed (halts propagation).
    Deadline,
    /// A GAR list or guard hit its size cap and was widened in place
    /// (analysis continues; only the clamped state loses precision).
    StateCap,
}

impl DegradeReason {
    /// Stable string for reports and metrics.
    pub fn as_str(&self) -> &'static str {
        match self {
            DegradeReason::FuelExhausted => "fuel_exhausted",
            DegradeReason::Deadline => "deadline",
            DegradeReason::StateCap => "state_cap",
        }
    }
}

/// The runtime meter threaded through one [`crate::Analyzer`].
///
/// Exhaustion is *sticky*: once [`Fuel::tick`] returns `false`, every
/// later tick also returns `false`, so all summaries produced after the
/// first widening are themselves widened — there is no window where a
/// half-propagated state leaks into a "precise" result.
#[derive(Debug)]
pub struct Fuel {
    limits: FuelLimits,
    steps_used: u64,
    start: Instant,
    /// First degradation observed (the one reported).
    reason: Option<DegradeReason>,
    /// Set once a steps/deadline budget runs out; sticky.
    halted: bool,
    /// Count of degradation events (clamps + halts). Callers snapshot
    /// this around an extent to tell whether *that* extent degraded.
    events: u64,
}

impl Fuel {
    /// Starts the meter (the deadline clock begins now).
    pub fn new(limits: FuelLimits) -> Self {
        Fuel {
            limits,
            steps_used: 0,
            start: Instant::now(),
            reason: None,
            halted: false,
            events: 0,
        }
    }

    /// The limits this meter enforces.
    pub fn limits(&self) -> FuelLimits {
        self.limits
    }

    /// Charges one propagation step. Returns `false` when the caller
    /// must stop and widen; the verdict is sticky.
    pub fn tick(&mut self) -> bool {
        if self.halted {
            return false;
        }
        self.steps_used += 1;
        if let Some(max) = self.limits.steps {
            if self.steps_used > max {
                self.halt(DegradeReason::FuelExhausted);
                return false;
            }
        }
        if let Some(ms) = self.limits.deadline_ms {
            if self.start.elapsed().as_millis() as u64 >= ms {
                self.halt(DegradeReason::Deadline);
                return false;
            }
        }
        true
    }

    fn halt(&mut self, reason: DegradeReason) {
        self.halted = true;
        self.events += 1;
        if self.reason.is_none() {
            self.reason = Some(reason);
        }
    }

    /// Whether propagation has been halted (steps or deadline). A
    /// `StateCap` degradation does *not* halt — clamped state is still
    /// a sound over-approximation to keep propagating.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Records an in-place widening (e.g. a state cap) without halting.
    /// Never downgrades an existing halt reason.
    pub fn note_degraded(&mut self, reason: DegradeReason) {
        self.events += 1;
        if self.reason.is_none() {
            self.reason = Some(reason);
        }
    }

    /// Number of degradation events so far (see the field doc).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Whether any widening happened during this run.
    pub fn degraded(&self) -> bool {
        self.reason.is_some()
    }

    /// The first degradation reason, if any.
    pub fn reason(&self) -> Option<DegradeReason> {
        self.reason
    }

    /// Steps consumed so far.
    pub fn steps_used(&self) -> u64 {
        self.steps_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_halts() {
        let mut f = Fuel::new(FuelLimits::unlimited());
        for _ in 0..10_000 {
            assert!(f.tick());
        }
        assert!(!f.degraded());
        assert_eq!(f.reason(), None);
    }

    #[test]
    fn step_budget_is_sticky() {
        let mut f = Fuel::new(FuelLimits {
            steps: Some(3),
            ..FuelLimits::default()
        });
        assert!(f.tick());
        assert!(f.tick());
        assert!(f.tick());
        assert!(!f.tick());
        assert!(!f.tick());
        assert_eq!(f.reason(), Some(DegradeReason::FuelExhausted));
        assert!(f.halted());
    }

    #[test]
    fn state_cap_degrades_without_halting() {
        let mut f = Fuel::new(FuelLimits {
            max_gar_len: Some(4),
            ..FuelLimits::default()
        });
        f.note_degraded(DegradeReason::StateCap);
        assert!(f.degraded());
        assert!(!f.halted());
        assert!(f.tick());
    }

    #[test]
    fn first_reason_wins() {
        let mut f = Fuel::new(FuelLimits {
            steps: Some(1),
            ..FuelLimits::default()
        });
        f.note_degraded(DegradeReason::StateCap);
        assert!(f.tick());
        assert!(!f.tick());
        // The step budget halted the run, but the reported reason stays
        // the first degradation observed.
        assert!(f.halted());
        assert_eq!(f.reason(), Some(DegradeReason::StateCap));
    }

    #[test]
    fn deadline_halts() {
        let mut f = Fuel::new(FuelLimits {
            deadline_ms: Some(0),
            ..FuelLimits::default()
        });
        assert!(!f.tick());
        assert_eq!(f.reason(), Some(DegradeReason::Deadline));
    }

    #[test]
    fn constrains_results_excludes_deadline() {
        let deadline_only = FuelLimits {
            deadline_ms: Some(1000),
            ..FuelLimits::default()
        };
        assert!(!deadline_only.constrains_results());
        let stepped = FuelLimits {
            steps: Some(10),
            ..FuelLimits::default()
        };
        assert!(stepped.constrains_results());
        assert!(!stepped.is_unlimited());
        assert!(FuelLimits::unlimited().is_unlimited());
        // The per-pass budgets change what is computed too: a starved
        // range or content pass drops refutations a warm cache replay
        // would have kept.
        for limits in [
            FuelLimits {
                range_budget: Some(10),
                ..FuelLimits::default()
            },
            FuelLimits {
                content_budget: Some(10),
                ..FuelLimits::default()
            },
        ] {
            assert!(limits.constrains_results());
            assert!(!limits.is_unlimited());
        }
    }

    #[test]
    fn merge_prefers_self() {
        let req = FuelLimits {
            steps: Some(5),
            ..FuelLimits::default()
        };
        let def = FuelLimits {
            steps: Some(100),
            deadline_ms: Some(60_000),
            ..FuelLimits::default()
        };
        let merged = req.or(def);
        assert_eq!(merged.steps, Some(5));
        assert_eq!(merged.deadline_ms, Some(60_000));
    }
}
