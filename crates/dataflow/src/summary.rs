//! Summary data structures and analysis options.

use gar::{Gar, GarList};
use std::collections::{BTreeMap, BTreeSet};

/// Technique toggles, matching Table 1's columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Options {
    /// T1 — symbolic analysis: allow symbolic (non-constant) expressions in
    /// regions and bounds. When off, only integer constants and in-scope
    /// loop indices are representable.
    pub symbolic: bool,
    /// T2 — IF-condition analysis: attach branch conditions as guards.
    /// When off, IF statements merge conservatively (may = union,
    /// must = intersection), as in pre-GAR region analyses.
    pub if_conditions: bool,
    /// T3 — interprocedural analysis: summarize and map callees. When off,
    /// a CALL conservatively clobbers every array it can reach.
    pub interprocedural: bool,
    /// The ∀-extension (§5.2 future work): conditional-counter recognition
    /// and universally quantified condition facts (Fig. 1(a)).
    pub forall_ext: bool,
    /// Value-range analysis (DESIGN.md §4g): propagate scalar
    /// interval/congruence facts and let them refute Δ-unknown guards
    /// through the `sym::bounds` oracle.
    pub value_range: bool,
    /// Array-content analysis (DESIGN.md §4i): per-iteration coverage
    /// facts refute UE₍i₎ entries the backward pass over-approximates
    /// and prove full definition for FIRSTPRIVATE→PRIVATE demotion.
    /// Off by default so verdicts stay byte-identical without the flag.
    pub content: bool,
    /// Record a per-node trace of the backward propagation (Fig. 5).
    pub trace: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            symbolic: true,
            if_conditions: true,
            interprocedural: true,
            forall_ext: false,
            value_range: true,
            content: false,
            trace: false,
        }
    }
}

impl Options {
    /// Everything on (including the ∀-extension).
    pub fn full() -> Options {
        Options {
            forall_ext: true,
            ..Options::default()
        }
    }

    /// Conventional baseline: no symbolic, no IF conditions, no
    /// interprocedural analysis, no value ranges.
    pub fn conventional() -> Options {
        Options {
            symbolic: false,
            if_conditions: false,
            interprocedural: false,
            forall_ext: false,
            value_range: false,
            content: false,
            trace: false,
        }
    }
}

/// The MOD/UE summary of a program segment, for all arrays at once plus
/// scalar side information.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Array name → MOD set.
    pub mods: BTreeMap<String, GarList>,
    /// Array name → upwards-exposed use set.
    pub ues: BTreeMap<String, GarList>,
    /// Array name → downwards-exposed use set (uses not overwritten later
    /// within the segment; §3.2.2 uses `DE_i` for the refined
    /// anti-dependence test).
    pub des: BTreeMap<String, GarList>,
    /// Scalars possibly written by the segment.
    pub scalar_may_mod: BTreeSet<String>,
    /// Scalars certainly written on every path through the segment.
    pub scalar_must_mod: BTreeSet<String>,
    /// Scalars read before any write on some path (upwards exposed).
    pub scalar_ue: BTreeSet<String>,
    /// Proved `(lo, hi)` bounds on the exit value of may-modified
    /// scalar formals and COMMON scalars — the interprocedural slice of
    /// the value-range pass, cached alongside the rest of `SUM_call`.
    pub scalar_exit_range: BTreeMap<String, (Option<i64>, Option<i64>)>,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// The MOD set of an array (empty if untouched).
    pub fn mod_of(&self, array: &str) -> GarList {
        self.mods.get(array).cloned().unwrap_or_default()
    }

    /// The UE set of an array (empty if untouched).
    pub fn ue_of(&self, array: &str) -> GarList {
        self.ues.get(array).cloned().unwrap_or_default()
    }

    /// The DE set of an array (empty if untouched).
    pub fn de_of(&self, array: &str) -> GarList {
        self.des.get(array).cloned().unwrap_or_default()
    }

    /// All arrays mentioned by any set.
    pub fn arrays(&self) -> BTreeSet<String> {
        self.mods
            .keys()
            .chain(self.ues.keys())
            .chain(self.des.keys())
            .cloned()
            .collect()
    }

    /// Unions another array's GARs into the MOD map.
    pub fn add_mod(&mut self, array: &str, list: GarList) {
        if list.is_empty() {
            return;
        }
        let entry = self.mods.entry(array.to_string()).or_default();
        *entry = entry.union(&list);
    }

    /// Unions into the UE map.
    pub fn add_ue(&mut self, array: &str, list: GarList) {
        if list.is_empty() {
            return;
        }
        let entry = self.ues.entry(array.to_string()).or_default();
        *entry = entry.union(&list);
    }

    /// Unions into the DE map.
    pub fn add_de(&mut self, array: &str, list: GarList) {
        if list.is_empty() {
            return;
        }
        let entry = self.des.entry(array.to_string()).or_default();
        *entry = entry.union(&list);
    }

    /// A size measure (total GAR pieces) used for the paper's memory
    /// statistics (Fig. 4).
    pub fn size(&self) -> usize {
        self.mods.values().map(GarList::size).sum::<usize>()
            + self.ues.values().map(GarList::size).sum::<usize>()
    }
}

/// The per-iteration and cross-iteration sets the privatization and
/// parallelization tests need for one array in one loop (§3.2).
#[derive(Clone, Debug, Default)]
pub struct ArraySets {
    /// `MOD_i` — written in an arbitrary iteration `i`.
    pub mod_i: GarList,
    /// `UE_i` — upwards exposed in iteration `i`.
    pub ue_i: GarList,
    /// `DE_i` — downwards exposed in iteration `i` (for the refined
    /// anti-dependence test of §3.2.2).
    pub de_i: GarList,
    /// `MOD_<i` — written in iterations before `i`.
    pub mod_lt: GarList,
    /// `MOD_>i` — written in iterations after `i`.
    pub mod_gt: GarList,
}

impl ArraySets {
    /// The fully widened sets for a fuel-exhausted loop: every set is a
    /// single unknown over-approximate GAR of the array's rank. All
    /// dependence tests on these sets fail to prove disjointness, so
    /// the verdicts fall out serial / not privatizable.
    pub fn unknown(rank: usize) -> ArraySets {
        let u = || GarList::single(Gar::unknown(rank));
        ArraySets {
            mod_i: u(),
            ue_i: u(),
            de_i: u(),
            mod_lt: u(),
            mod_gt: u(),
        }
    }
}
