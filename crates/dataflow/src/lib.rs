//! Interprocedural symbolic array dataflow analysis (§4 of Gu, Li & Lee).
//!
//! This crate propagates [`gar::GarList`] summaries (`MOD` and `UE` sets)
//! backward over the [`hsg::Hsg`], implementing the paper's `SUM_segment`,
//! `SUM_bb`, `SUM_loop` and `SUM_call` algorithms:
//!
//! * **IF conditions become guards** (`T2`): sets flowing out of a branch
//!   are qualified by the branch condition, converted to a [`pred::Pred`].
//! * **Scalar values are substituted on the fly** (`T1`): a forward value
//!   environment — the reconstruction of Panorama's interprocedural scalar
//!   reaching-definition chains [Li, TR 93-87] — normalizes every
//!   subscript, bound and condition to routine-entry-relative symbolic
//!   values before it enters a region or guard.
//! * **Routine calls are summarized once and mapped** (`T3`): each routine
//!   gets a context-free summary in terms of its formals, instantiated at
//!   every call site by formal→actual substitution.
//!
//! Each technique can be disabled through [`Options`] to reproduce the
//! paper's T1/T2/T3 ablation (Table 1). The optional ∀-extension
//! (`forall_ext`, §5.2's future work) recognizes conditionally-incremented
//! counters and universally quantified condition facts, which the MDG
//! `interf` loop of Fig. 1(a) requires.

#![warn(missing_docs)]

mod analyzer;
pub mod cache;
mod convert;
pub mod fuel;
pub mod panostore;
mod scalars;
mod summary;

pub use analyzer::{
    AnalysisStats, Analyzer, ContentNote, LoopAnalysis, RangeNote, RoutineAnalysis,
};
pub use cache::{CacheCounters, CacheKey, CachedRoutine, MemoryCache, SummaryCache};
pub use convert::{collect_array_reads, to_pred, to_sym, ConvertCtx};
pub use fuel::{DegradeReason, Fuel, FuelLimits};
pub use panostore::{DiskCache, DiskTierSnapshot, TieredCache};
pub use scalars::{CounterFact, ValueEnv};
pub use summary::{ArraySets, Options, Summary};
