//! Conversion of Fortran expressions into symbolic expressions, regions
//! and guard predicates, under a forward value environment.

use crate::scalars::{CounterFact, ValueEnv};
use fortran::{BinOp, Expr as FExpr, SymbolTable, Ty, UnOp};
use pred::{Atom, CondTemplate, Disj, Pred, RelOp};
use region::{Dim, Region};
use std::collections::{BTreeMap, BTreeSet};
use sym::{Expr, Name};

/// Everything conversion needs to know.
pub struct ConvertCtx<'a> {
    /// The routine's symbol table.
    pub table: &'a SymbolTable,
    /// The forward value environment at the conversion point.
    pub env: &'a ValueEnv,
    /// T1: symbolic expressions allowed.
    pub symbolic: bool,
    /// Loop indices currently in scope (always representable, even with T1
    /// off — conventional dependence analysis handles loop indices).
    pub loop_vars: &'a BTreeSet<String>,
    /// Registered conditional-counter facts (∀-extension).
    pub facts: &'a BTreeMap<String, CounterFact>,
}

impl ConvertCtx<'_> {
    /// Is the expression representable under the T1 setting? With T1 off
    /// only constants and in-scope loop indices may appear.
    fn representable(&self, e: &Expr) -> bool {
        if self.symbolic {
            return true;
        }
        e.vars().iter().all(|v| self.loop_vars.contains(v.as_str()))
    }
}

/// Converts an integer-valued Fortran expression to a symbolic expression,
/// entry-relative via the value environment. `None` when not representable.
pub fn to_sym(e: &FExpr, ctx: &ConvertCtx) -> Option<Expr> {
    let out = to_sym_inner(e, ctx)?;
    if ctx.representable(&out) {
        Some(out)
    } else {
        None
    }
}

fn to_sym_inner(e: &FExpr, ctx: &ConvertCtx) -> Option<Expr> {
    match e {
        FExpr::Int(v) => Some(Expr::from(*v)),
        FExpr::Var(n) => {
            // PARAMETER constants fold to their (integer) value.
            if let Some(c) = ctx.table.constant(n) {
                return to_sym_inner(c, ctx);
            }
            match ctx.table.scalar_ty(n) {
                Some(Ty::Integer) => Some(ctx.env.int_value(n)),
                _ => None,
            }
        }
        FExpr::Bin(op, a, b) => {
            let (a, b) = (to_sym_inner(a, ctx)?, to_sym_inner(b, ctx)?);
            match op {
                BinOp::Add => a.try_add(&b),
                BinOp::Sub => a.try_sub(&b),
                BinOp::Mul => a.try_mul(&b),
                BinOp::Div => {
                    let c = b.as_const()?;
                    a.div_exact(c)
                }
                BinOp::Pow => {
                    let p = b.as_const()?;
                    if !(0..=3).contains(&p) {
                        return None;
                    }
                    let mut acc = Expr::one();
                    for _ in 0..p {
                        acc = acc.try_mul(&a)?;
                    }
                    Some(acc)
                }
                _ => None,
            }
        }
        FExpr::Un(UnOp::Neg, a) => Some(to_sym_inner(a, ctx)?.negate()),
        _ => None,
    }
}

/// Builds the region accessed by an array reference `name(subs…)`,
/// entry-relative. Unrepresentable subscripts — including products of two
/// or more index variables, per §3.1 — become Ω dimensions.
pub fn subscripts_region(subs: &[FExpr], ctx: &ConvertCtx) -> Region {
    Region::new(
        subs.iter()
            .map(|s| match to_sym(s, ctx) {
                Some(e) if e.max_vars_per_term() <= 1 => Dim::unit(e),
                _ => Dim::Unknown,
            })
            .collect(),
    )
}

/// All array elements *read* by an expression (including reads nested in
/// subscripts and intrinsic arguments): `(array, region)` pairs.
pub fn collect_array_reads(e: &FExpr, ctx: &ConvertCtx) -> Vec<(String, Region)> {
    let mut out = Vec::new();
    collect_reads_inner(e, ctx, &mut out);
    out
}

fn collect_reads_inner(e: &FExpr, ctx: &ConvertCtx, out: &mut Vec<(String, Region)>) {
    match e {
        FExpr::Index(name, subs) => {
            if ctx.table.is_array(name) {
                out.push((name.clone(), subscripts_region(subs, ctx)));
            }
            for s in subs {
                collect_reads_inner(s, ctx, out);
            }
        }
        FExpr::Bin(_, a, b) => {
            collect_reads_inner(a, ctx, out);
            collect_reads_inner(b, ctx, out);
        }
        FExpr::Un(_, a) => collect_reads_inner(a, ctx, out),
        _ => {}
    }
}

/// Converts a logical Fortran expression (an IF condition) into a guard
/// predicate. `None` when no useful structure can be extracted — the
/// caller then guards both branches with Δ.
pub fn to_pred(e: &FExpr, ctx: &ConvertCtx) -> Option<Pred> {
    let p = to_pred_inner(e, ctx)?;
    Some(apply_counter_facts(p, ctx.facts))
}

fn to_pred_inner(e: &FExpr, ctx: &ConvertCtx) -> Option<Pred> {
    match e {
        FExpr::Logical(true) => Some(Pred::tru()),
        FExpr::Logical(false) => Some(Pred::fals()),
        FExpr::Var(n) => match ctx.table.scalar_ty(n) {
            Some(Ty::Logical) => Some(Pred::atom(Atom::Bool(ctx.env.version(n), true))),
            _ => None,
        },
        FExpr::Un(UnOp::Not, inner) => Some(to_pred_inner(inner, ctx)?.not()),
        FExpr::Bin(BinOp::And, a, b) => Some(to_pred_inner(a, ctx)?.and(&to_pred_inner(b, ctx)?)),
        FExpr::Bin(BinOp::Or, a, b) => Some(to_pred_inner(a, ctx)?.or(&to_pred_inner(b, ctx)?)),
        FExpr::Bin(op, a, b) if op.is_relational() => {
            // Integer-exact relation?
            if let (Some(sa), Some(sb)) = (to_sym(a, ctx), to_sym(b, ctx)) {
                let atom = match op {
                    BinOp::Lt => Atom::lt(sa, sb),
                    BinOp::Le => Atom::le(sa, sb),
                    BinOp::Gt => Atom::gt(sa, sb),
                    BinOp::Ge => Atom::ge(sa, sb),
                    BinOp::Eq => Atom::eq(sa, sb),
                    BinOp::Ne => Atom::ne(sa, sb),
                    _ => unreachable!(),
                };
                return Some(Pred::atom(atom));
            }
            // Opaque condition template.
            build_cond_atom(e, ctx).map(Pred::atom)
        }
        _ => None,
    }
}

/// Builds an opaque condition-template atom from a relational expression
/// the integer machinery cannot express: REAL comparisons, comparisons
/// involving one array element, intrinsic calls.
fn build_cond_atom(e: &FExpr, ctx: &ConvertCtx) -> Option<Atom> {
    let mut b = TemplateBuilder {
        ctx,
        deps: Vec::new(),
        dep_of: BTreeMap::new(),
        index: None,
        text: String::new(),
    };
    b.walk(e)?;
    let index = b.index.unwrap_or_else(Expr::zero);
    Some(Atom::Cond {
        template: CondTemplate::new(b.text),
        index,
        deps: b.deps,
        positive: true,
    })
}

struct TemplateBuilder<'a, 'b> {
    ctx: &'a ConvertCtx<'b>,
    deps: Vec<Name>,
    dep_of: BTreeMap<Name, usize>,
    /// The single array subscript expression, if one array reference
    /// appears.
    index: Option<Expr>,
    text: String,
}

impl TemplateBuilder<'_, '_> {
    fn dep(&mut self, name: Name) -> usize {
        if let Some(&k) = self.dep_of.get(&name) {
            return k;
        }
        let k = self.deps.len();
        self.deps.push(name.clone());
        self.dep_of.insert(name, k);
        k
    }

    fn walk(&mut self, e: &FExpr) -> Option<()> {
        match e {
            FExpr::Int(v) => self.text.push_str(&v.to_string()),
            FExpr::Real(v) => self.text.push_str(&format!("{v}")),
            FExpr::Logical(v) => self.text.push_str(if *v { "T" } else { "F" }),
            FExpr::Var(n) => {
                if let Some(c) = self.ctx.table.constant(n) {
                    // Fold PARAMETER constants into the template literally.
                    return self.walk(c);
                }
                let k = self.dep(self.ctx.env.version(n));
                self.text.push_str(&format!("${k}"));
            }
            FExpr::Index(name, subs) => {
                if self.ctx.table.is_array(name) {
                    // At most one array reference, 1-D, with a convertible
                    // subscript, becomes the quantifiable index.
                    if self.index.is_some() || subs.len() != 1 {
                        return None;
                    }
                    let sub = to_sym(&subs[0], self.ctx)?;
                    self.index = Some(sub);
                    // The array's values are a dependency: writes to it
                    // must invalidate the condition.
                    let k = self.dep(Name::new(name.as_str()));
                    self.text.push_str(&format!("${k}(@)"));
                } else {
                    // Intrinsic call.
                    self.text.push_str(name);
                    self.text.push('(');
                    for (i, s) in subs.iter().enumerate() {
                        if i > 0 {
                            self.text.push(',');
                        }
                        self.walk(s)?;
                    }
                    self.text.push(')');
                }
            }
            FExpr::Bin(op, a, b) => {
                self.text.push('(');
                self.walk(a)?;
                self.text.push_str(&format!("{op:?}"));
                self.walk(b)?;
                self.text.push(')');
            }
            FExpr::Un(op, a) => {
                self.text.push_str(&format!("{op:?}("));
                self.walk(a)?;
                self.text.push(')');
            }
        }
        Some(())
    }
}

/// Rewrites unit clauses `cnt = 0` over registered counter synthetics into
/// the universally quantified facts they encode (∀-extension).
pub fn apply_counter_facts(p: Pred, facts: &BTreeMap<String, CounterFact>) -> Pred {
    if facts.is_empty() {
        return p;
    }
    let Pred::Cnf { disjs, unknown } = &p else {
        return p;
    };
    let mut changed = false;
    let mut out = Vec::with_capacity(disjs.len());
    for d in disjs {
        if let Some(Atom::Rel(e, RelOp::Eq)) = d.as_unit() {
            if let Some(var) = e.as_var() {
                if let Some(fact) = facts.get(var.as_str()) {
                    // cnt = 0 ⟺ ∀ k ∈ [lo, hi]: condition != counted
                    out.push(Disj::unit(Atom::ForallCond {
                        template: fact.template.clone(),
                        lo: fact.lo.clone(),
                        hi: fact.hi.clone(),
                        deps: fact.deps.clone(),
                        positive: !fact.counted_positive,
                    }));
                    changed = true;
                    continue;
                }
            }
        }
        out.push(d.clone());
    }
    if changed {
        Pred::from_disjs(out, *unknown)
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fortran::parse_program;

    fn with_ctx<R>(src: &str, f: impl FnOnce(&ConvertCtx) -> R) -> R {
        let program = parse_program(src).unwrap();
        let sema = fortran::analyze(&program).unwrap();
        let table = sema.tables.values().next().unwrap();
        let env = ValueEnv::identity();
        let loop_vars = BTreeSet::new();
        let facts = BTreeMap::new();
        let ctx = ConvertCtx {
            table,
            env: &env,
            symbolic: true,
            loop_vars: &loop_vars,
            facts: &facts,
        };
        f(&ctx)
    }

    const DECLS: &str = "
      PROGRAM t
      INTEGER n, m, i, kc, jm(5)
      REAL a(100), b(100), x, cut2
      LOGICAL p
      PARAMETER (size = 64)
      y = 0
      END
";

    fn fexpr(src: &str) -> FExpr {
        // Parse `x = <expr>` and pull the rhs out.
        let text = format!("      PROGRAM e\n      zz = {src}\n      END\n");
        let p = parse_program(&text).unwrap();
        match &p.routines[0].body[0].kind {
            fortran::StmtKind::Assign(_, rhs) => rhs.clone(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn to_sym_basics() {
        with_ctx(DECLS, |ctx| {
            assert_eq!(to_sym(&fexpr("3"), ctx), Some(Expr::from(3)));
            assert_eq!(
                to_sym(&fexpr("n + 1"), ctx),
                Some(Expr::var("n") + Expr::from(1))
            );
            assert_eq!(
                to_sym(&fexpr("2 * i - m"), ctx),
                Some(Expr::var("i") * 2 - Expr::var("m"))
            );
            // real scalar not representable as integer expr
            assert_eq!(to_sym(&fexpr("x"), ctx), None);
            // array element not representable
            assert_eq!(to_sym(&fexpr("jm(i)"), ctx), None);
            // parameter constant folds
            assert_eq!(to_sym(&fexpr("size"), ctx), Some(Expr::from(64)));
            // exact division
            assert_eq!(to_sym(&fexpr("(4 * n) / 2"), ctx), Some(Expr::var("n") * 2));
            assert_eq!(to_sym(&fexpr("n / 2"), ctx), None);
            // power
            assert_eq!(
                to_sym(&fexpr("i ** 2"), ctx),
                Some(Expr::var("i") * Expr::var("i"))
            );
        });
    }

    #[test]
    fn t1_off_rejects_symbolic() {
        let program = parse_program(DECLS).unwrap();
        let sema = fortran::analyze(&program).unwrap();
        let table = sema.tables.values().next().unwrap();
        let env = ValueEnv::identity();
        let mut loop_vars = BTreeSet::new();
        loop_vars.insert("i".to_string());
        let facts = BTreeMap::new();
        let ctx = ConvertCtx {
            table,
            env: &env,
            symbolic: false,
            loop_vars: &loop_vars,
            facts: &facts,
        };
        assert!(to_sym(&fexpr("i + 1"), &ctx).is_some()); // loop var OK
        assert!(to_sym(&fexpr("n"), &ctx).is_none()); // other symbolic rejected
        assert!(to_sym(&fexpr("7"), &ctx).is_some());
    }

    #[test]
    fn env_substitution() {
        let program = parse_program(DECLS).unwrap();
        let sema = fortran::analyze(&program).unwrap();
        let table = sema.tables.values().next().unwrap();
        let mut env = ValueEnv::identity();
        env.set_int("kc", Expr::from(0));
        let loop_vars = BTreeSet::new();
        let facts = BTreeMap::new();
        let ctx = ConvertCtx {
            table,
            env: &env,
            symbolic: true,
            loop_vars: &loop_vars,
            facts: &facts,
        };
        assert_eq!(to_sym(&fexpr("kc + 1"), &ctx), Some(Expr::from(1)));
    }

    #[test]
    fn to_pred_integer_relations() {
        with_ctx(DECLS, |ctx| {
            let p = to_pred(&fexpr("i .LE. n"), ctx).unwrap();
            assert_eq!(p, Pred::le(Expr::var("i"), Expr::var("n")));
            let q = to_pred(&fexpr("kc .NE. 0"), ctx).unwrap();
            assert_eq!(q, Pred::ne(Expr::var("kc"), Expr::from(0)));
            let n = to_pred(&fexpr(".NOT. (i .LE. n)"), ctx).unwrap();
            assert_eq!(n, Pred::le(Expr::var("i"), Expr::var("n")).not());
        });
    }

    #[test]
    fn to_pred_logical_var() {
        with_ctx(DECLS, |ctx| {
            let p = to_pred(&fexpr("p"), ctx).unwrap();
            assert_eq!(p, Pred::atom(Atom::Bool(Name::new("p"), true)));
            let np = to_pred(&fexpr(".NOT. p"), ctx).unwrap();
            assert_eq!(np, Pred::atom(Atom::Bool(Name::new("p"), false)));
        });
    }

    #[test]
    fn opaque_real_condition_correlates() {
        with_ctx(DECLS, |ctx| {
            let p1 = to_pred(&fexpr("x .GT. 64.0"), ctx).unwrap();
            let p2 = to_pred(&fexpr("x .GT. 64.0"), ctx).unwrap();
            assert_eq!(p1, p2);
            // complement relationship holds
            assert!(p1.and(&p2.not()).is_false());
        });
    }

    #[test]
    fn array_condition_gets_index() {
        with_ctx(DECLS, |ctx| {
            let p = to_pred(&fexpr("b(kc + 4) .GT. cut2"), ctx).unwrap();
            let atom = p.disjs()[0].as_unit().unwrap().clone();
            match atom {
                Atom::Cond { index, deps, .. } => {
                    assert_eq!(index, Expr::var("kc") + Expr::from(4));
                    // deps: the array b and the scalar cut2
                    let names: Vec<&str> = deps.iter().map(|d| d.as_str()).collect();
                    assert!(names.contains(&"b"));
                    assert!(names.contains(&"cut2"));
                }
                other => panic!("expected Cond atom, got {other:?}"),
            }
        });
    }

    #[test]
    fn same_condition_different_offset_shares_template() {
        with_ctx(DECLS, |ctx| {
            let p1 = to_pred(&fexpr("b(i) .GT. cut2"), ctx).unwrap();
            let p2 = to_pred(&fexpr("b(i + 4) .GT. cut2"), ctx).unwrap();
            let t1 = match p1.disjs()[0].as_unit().unwrap() {
                Atom::Cond { template, .. } => template.clone(),
                _ => panic!(),
            };
            let t2 = match p2.disjs()[0].as_unit().unwrap() {
                Atom::Cond { template, .. } => template.clone(),
                _ => panic!(),
            };
            assert_eq!(t1, t2);
        });
    }

    #[test]
    fn unconvertible_conditions() {
        with_ctx(DECLS, |ctx| {
            // two array refs → None
            assert!(to_pred(&fexpr("a(i) .GT. b(i)"), ctx).is_none());
            // arithmetic (non-logical) expr → None
            assert!(to_pred(&fexpr("i + 1"), ctx).is_none());
        });
    }

    #[test]
    fn collect_reads() {
        with_ctx(DECLS, |ctx| {
            let reads = collect_array_reads(&fexpr("a(i) + b(jm(i)) * 2"), ctx);
            let names: Vec<&str> = reads.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, vec!["a", "b", "jm"]);
            // b's subscript jm(i) is unconvertible → Ω dim
            assert!(!reads[1].1.is_exact());
            assert!(reads[0].1.is_exact());
        });
    }

    #[test]
    fn counter_fact_rewrites() {
        let mut facts = BTreeMap::new();
        facts.insert(
            "kc#1".to_string(),
            CounterFact {
                template: CondTemplate::new("t"),
                deps: vec![Name::new("b")],
                counted_positive: true,
                lo: Expr::from(1),
                hi: Expr::from(9),
            },
        );
        let p = Pred::eq(Expr::var("kc#1"), Expr::zero());
        let rewritten = apply_counter_facts(p, &facts);
        match rewritten.disjs()[0].as_unit().unwrap() {
            Atom::ForallCond {
                positive, lo, hi, ..
            } => {
                assert!(!positive);
                assert_eq!(lo, &Expr::from(1));
                assert_eq!(hi, &Expr::from(9));
            }
            other => panic!("expected ForallCond, got {other:?}"),
        }
    }
}
