//! Content-addressed routine-summary cache.
//!
//! The unit of memoization is exactly the unit the paper already
//! computes per routine: the context-free `SUM_call` summary (§4.1),
//! together with the per-loop dependence sets recorded while building
//! it. A cache entry is keyed by a hash of the routine's *content* —
//! its AST (including source lines), the analysis [`Options`], and,
//! transitively, the keys of every callee — so two textually identical
//! routines in different programs share an entry, while any change to
//! the routine body, its declarations, an analysis toggle, or anything
//! it calls produces a different key. Content addressing means there
//! are **no invalidation rules**: a stale entry is unreachable by
//! construction, and eviction is purely a capacity concern.
//!
//! Replaying an entry must reproduce, byte for byte, the report a cold
//! analysis would emit. Three mechanisms make that hold (see
//! `Analyzer::summarize_routine`):
//!
//! 1. recorded loop analyses carry a *canonical loop ordinal* instead
//!    of an absolute `SubgraphId`, remapped into the consuming
//!    program's HSG on replay;
//! 2. synthetic names are *routine-scoped* (`x#routine.k`, counter
//!    restarted per routine — see `scalars::FreshNames`), so the names
//!    inside an entry are a pure function of the routine's content:
//!    replaying installs exactly the names a cold run would have
//!    allocated, and names from different routines can never collide;
//! 3. the entry stores the statistics deltas (`nodes_processed`,
//!    `peak_state_size`, …) of the cold computation, which are
//!    replayed into [`crate::AnalysisStats`].

use crate::analyzer::LoopAnalysis;
use crate::summary::{Options, Summary};
use fortran::{Program, ProgramSema};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A 128-bit content hash identifying one `(routine content, options)`
/// summarization problem.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CacheKey(pub u128);

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// FNV-1a, 128-bit variant — dependency-free and fast enough for
/// hashing ASTs once per request; 128 bits make accidental collisions
/// in a long-running daemon negligible.
#[derive(Clone)]
pub struct ContentHasher {
    state: u128,
}

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Default for ContentHasher {
    fn default() -> Self {
        ContentHasher {
            state: FNV128_OFFSET,
        }
    }
}

impl ContentHasher {
    /// Absorbs bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Absorbs a length-prefixed string (prefixing prevents boundary
    /// ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write(&(s.len() as u64).to_le_bytes());
        self.write(s.as_bytes());
    }

    /// The final key.
    pub fn finish(&self) -> CacheKey {
        CacheKey(self.state)
    }
}

/// Everything needed to replay one routine's summarization without
/// redoing it: the context-free summary, the loop analyses recorded
/// during the cold run (keyed by canonical loop ordinal within the
/// routine), and the statistics the cold run accumulated.
#[derive(Clone, Debug)]
pub struct CachedRoutine {
    /// The context-free `SUM_call` summary.
    pub summary: Summary,
    /// `(canonical loop ordinal, analysis)` in recording order. The
    /// ordinal indexes the deterministic pre-order traversal of the
    /// routine's loop-body subgraphs, so it is stable across programs
    /// that embed the same routine at different `SubgraphId`s.
    pub loops: Vec<(usize, LoopAnalysis)>,
    /// HSG nodes the cold summarization visited.
    pub nodes_processed: usize,
    /// Loops the cold summarization analyzed.
    pub loops_analyzed: usize,
    /// Peak transient GAR state during the cold summarization.
    pub peak_state_size: usize,
    /// `total_summary_size` contribution of the cold summarization.
    pub summary_size: usize,
}

/// A shareable summary cache. Implementations must be thread-safe: the
/// `panoramad` scheduler consults one cache from every worker.
pub trait SummaryCache: Send + Sync {
    /// Looks up an entry, recording a hit or miss.
    fn get(&self, key: &CacheKey) -> Option<Arc<CachedRoutine>>;
    /// Inserts an entry computed cold.
    fn put(&self, key: CacheKey, entry: Arc<CachedRoutine>);
    /// Counter snapshot (hits/misses/entries/evictions).
    fn counters(&self) -> CacheCounters;
    /// Snapshot of the persistent tier, when the implementation has
    /// one (see [`crate::panostore`]). Memory-only caches return
    /// `None` and the disk metrics simply do not render.
    fn disk(&self) -> Option<crate::panostore::DiskTierSnapshot> {
        None
    }
}

/// Point-in-time cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries evicted for capacity.
    pub evictions: u64,
}

impl CacheCounters {
    /// Hit ratio in `[0, 1]` (0 when no lookups happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The in-memory cache used by `panoramad`: a hash map guarded by a
/// mutex, FIFO-evicted at an optional capacity. Content addressing
/// makes concurrent `put`s of one key benign — both writers computed
/// logically identical entries, so last-write-wins is correct.
pub struct MemoryCache {
    inner: Mutex<CacheInner>,
    capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<u128, Arc<CachedRoutine>>,
    fifo: VecDeque<u128>,
}

impl Default for MemoryCache {
    fn default() -> Self {
        MemoryCache::new()
    }
}

impl MemoryCache {
    /// An unbounded cache.
    pub fn new() -> MemoryCache {
        MemoryCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache holding at most `capacity` routine entries (FIFO
    /// eviction beyond that).
    pub fn with_capacity(capacity: usize) -> MemoryCache {
        MemoryCache {
            capacity: Some(capacity.max(1)),
            ..MemoryCache::new()
        }
    }

    /// Poison-safe lock: a worker panic mid-`put` leaves the map with
    /// either the whole entry or none of it (a single `insert` is the
    /// only mutation under the lock), so the surviving workers — and the
    /// shutdown metrics dump calling [`SummaryCache::counters`] — keep
    /// going instead of propagating the poison.
    fn inner(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The resident entries, as `(key, entry)` pairs in no particular
    /// order. For tests and cross-tier validation.
    pub fn entries(&self) -> Vec<(CacheKey, Arc<CachedRoutine>)> {
        self.inner()
            .map
            .iter()
            .map(|(k, v)| (CacheKey(*k), Arc::clone(v)))
            .collect()
    }
}

impl SummaryCache for MemoryCache {
    fn get(&self, key: &CacheKey) -> Option<Arc<CachedRoutine>> {
        let inner = self.inner();
        match inner.map.get(&key.0) {
            Some(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(e))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, key: CacheKey, entry: Arc<CachedRoutine>) {
        let mut inner = self.inner();
        if inner.map.insert(key.0, entry).is_none() {
            inner.fifo.push_back(key.0);
            if let Some(cap) = self.capacity {
                while inner.map.len() > cap {
                    let Some(old) = inner.fifo.pop_front() else {
                        break;
                    };
                    inner.map.remove(&old);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn counters(&self) -> CacheCounters {
        let entries = self.inner().map.len();
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Computes the content key of every routine in a program, callees
/// first. A routine's key covers:
///
/// * a format-version tag (bumped when summarization semantics change,
///   so persisted processes never replay stale layouts);
/// * the four semantic [`Options`] toggles (`trace` excluded — it only
///   affects diagnostics, and traced runs bypass the cache anyway);
/// * the routine's full AST rendered via `Debug` (covers parameters,
///   declarations, COMMON layout, statement structure *and* source
///   lines — lines flow into loop verdicts, so they are content here);
/// * with interprocedural analysis on, the keys of all direct callees
///   (sorted), making the key a Merkle hash over the call DAG; with it
///   off, callee bodies are irrelevant and only callee names are mixed
///   in.
pub fn routine_keys(
    program: &Program,
    sema: &ProgramSema,
    opts: &Options,
) -> BTreeMap<String, CacheKey> {
    let mut keys: BTreeMap<String, CacheKey> = BTreeMap::new();
    for name in &sema.bottom_up {
        let Some(routine) = program.routine(name) else {
            continue;
        };
        let mut h = ContentHasher::default();
        h.write_str("panorama-summary-cache-v4");
        h.write(&[
            u8::from(opts.symbolic),
            u8::from(opts.if_conditions),
            u8::from(opts.interprocedural),
            u8::from(opts.forall_ext),
            u8::from(opts.value_range),
            u8::from(opts.content),
        ]);
        h.write_str(&format!("{routine:?}"));
        // Storage association is cross-routine state: alias degradation
        // and the layout-mismatch check consult how *every* routine lays
        // out the COMMON blocks this routine can reach, so those layouts
        // participate in the key. Routines touching no COMMON hash
        // nothing here and still share across programs.
        if let Some(reach) = sema.common_reach.get(name) {
            for b in reach {
                h.write_str(b);
                for (rname, t) in &sema.tables {
                    for (n, loc) in t.storage_iter() {
                        if matches!(&loc.class, fortran::StorageClass::Common(x) if x == b) {
                            h.write_str(rname);
                            h.write_str(&format!("{n}:{loc:?}"));
                        }
                    }
                }
            }
        }
        if let Some(callees) = sema.call_graph.get(name) {
            for callee in callees {
                match keys.get(callee) {
                    Some(k) if opts.interprocedural => {
                        h.write(&k.0.to_le_bytes());
                    }
                    _ => {
                        h.write_str(callee);
                        // Without interprocedural analysis the clobber
                        // scope is the callee's reachable COMMON set,
                        // which depends on the transitive call graph.
                        if let Some(reach) = sema.common_reach.get(callee) {
                            for b in reach {
                                h.write_str(b);
                            }
                        }
                    }
                }
            }
        }
        keys.insert(name.clone(), h.finish());
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Arc<CachedRoutine> {
        Arc::new(CachedRoutine {
            summary: Summary::new(),
            loops: Vec::new(),
            nodes_processed: 1,
            loops_analyzed: 0,
            peak_state_size: 0,
            summary_size: 0,
        })
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let c = MemoryCache::new();
        let k = CacheKey(7);
        assert!(c.get(&k).is_none());
        c.put(k, entry());
        assert!(c.get(&k).is_some());
        let s = c.counters();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn capacity_evicts_fifo() {
        let c = MemoryCache::with_capacity(2);
        for i in 0..3 {
            c.put(CacheKey(i), entry());
        }
        assert!(c.get(&CacheKey(0)).is_none()); // evicted first
        assert!(c.get(&CacheKey(1)).is_some());
        assert!(c.get(&CacheKey(2)).is_some());
        assert_eq!(c.counters().evictions, 1);
    }

    /// Four threads hammer a capacity-8 cache with overlapping keys.
    /// Eviction and counter bookkeeping must stay consistent under
    /// contention: capacity is never exceeded, the FIFO ledger matches
    /// the map, and hits + misses equals the number of lookups issued.
    #[test]
    fn concurrent_put_get_keeps_fifo_and_counters_consistent() {
        const THREADS: u64 = 4;
        const OPS: u64 = 500;
        const CAP: usize = 8;
        let c = std::sync::Arc::new(MemoryCache::with_capacity(CAP));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..OPS {
                        // Overlapping key space across threads so the
                        // same key is raced by puts and gets.
                        let k = CacheKey(u128::from((t * OPS + i) % 32));
                        if i % 3 == 0 {
                            c.get(&k);
                        } else {
                            c.put(k, entry());
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread");
        }
        let s = c.counters();
        assert!(s.entries <= CAP, "capacity exceeded: {s:?}");
        let lookups = THREADS * OPS.div_ceil(3);
        assert_eq!(s.hits + s.misses, lookups, "{s:?}");
        assert!(s.evictions > 0, "eviction path never exercised: {s:?}");
        // The FIFO ledger and the map agree exactly (no ghost keys,
        // no unevictable residents).
        let inner = c.inner();
        assert_eq!(inner.map.len(), inner.fifo.len());
        for k in &inner.fifo {
            assert!(inner.map.contains_key(k), "fifo ghost {k}");
        }
    }

    fn keys_of(src: &str, opts: Options) -> BTreeMap<String, CacheKey> {
        let program = fortran::parse_program(src).unwrap();
        let sema = fortran::analyze(&program).unwrap();
        routine_keys(&program, &sema, &opts)
    }

    const TWO_ROUTINES: &str = "
      PROGRAM main
      REAL a(10)
      INTEGER i
      DO i = 1, 10
        CALL fill(a, i)
      ENDDO
      END
      SUBROUTINE fill(b, j)
      REAL b(10)
      INTEGER j, k
      DO k = 1, 10
        b(k) = j * 1.0
      ENDDO
      END
";

    #[test]
    fn keys_are_deterministic_and_option_sensitive() {
        let a = keys_of(TWO_ROUTINES, Options::default());
        let b = keys_of(TWO_ROUTINES, Options::default());
        assert_eq!(a, b);
        let c = keys_of(
            TWO_ROUTINES,
            Options {
                symbolic: false,
                ..Options::default()
            },
        );
        assert_ne!(a["fill"], c["fill"]);
        assert_ne!(a["main"], c["main"]);
    }

    #[test]
    fn content_toggle_changes_keys() {
        // The content pass changes summaries (refutations, full-definition
        // facts), so cached entries from one setting must not serve the
        // other.
        let a = keys_of(TWO_ROUTINES, Options::default());
        let b = keys_of(
            TWO_ROUTINES,
            Options {
                content: true,
                ..Options::default()
            },
        );
        assert_ne!(a["fill"], b["fill"]);
        assert_ne!(a["main"], b["main"]);
    }

    #[test]
    fn trace_toggle_does_not_change_keys() {
        let a = keys_of(TWO_ROUTINES, Options::default());
        let b = keys_of(
            TWO_ROUTINES,
            Options {
                trace: true,
                ..Options::default()
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn callee_edit_changes_caller_key() {
        let edited = TWO_ROUTINES.replace("b(k) = j * 1.0", "b(k) = j * 2.0");
        let a = keys_of(TWO_ROUTINES, Options::default());
        let b = keys_of(&edited, Options::default());
        assert_ne!(a["fill"], b["fill"]);
        // Merkle propagation: the caller's key moves with the callee.
        assert_ne!(a["main"], b["main"]);
    }

    #[test]
    fn caller_edit_leaves_callee_key_alone() {
        let edited = TWO_ROUTINES.replace("DO i = 1, 10", "DO i = 1, 20");
        let a = keys_of(TWO_ROUTINES, Options::default());
        let b = keys_of(&edited, Options::default());
        assert_eq!(a["fill"], b["fill"]);
        assert_ne!(a["main"], b["main"]);
    }
}
