//! Integration tests for the persistent summary-cache tier.
//!
//! The contracts under test, in the order DESIGN.md §5d states them:
//! real analysis entries roundtrip through disk *exactly* (Debug
//! identity); corruption of any kind is quarantined, never loaded and
//! never fatal; reopening after a crash recovers cleanly; eviction
//! respects the byte budget; injected IO faults (`err` failpoints)
//! degrade the tier instead of crashing; and two instances can share a
//! directory.

use dataflow::cache::{CacheKey, MemoryCache, SummaryCache};
use dataflow::panostore::{DiskCache, TieredCache};
use dataflow::{Analyzer, Options};
use fortran::{analyze, parse_program};
use hsg::build_hsg;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("panostore-test-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

const TWO_ROUTINES: &str = "
      PROGRAM main
      REAL a(100), b(100)
      INTEGER i, m
      m = 40
      DO i = 1, m
        CALL fill(a, b, i, m)
      ENDDO
      END
      SUBROUTINE fill(x, y, j, n)
      REAL x(100), y(100)
      INTEGER j, n, k
      DO k = 1, n
        IF (k .LT. j) THEN
          x(k) = y(k) + 1.0
        ENDIF
        y(k) = x(k) * 2.0
      ENDDO
      END
";

/// Runs a full analysis with the given cache, returning it warm.
fn analyze_into(cache: Arc<dyn SummaryCache>, src: &str) {
    let program = parse_program(src).expect("parse");
    let sema = analyze(&program).expect("sema");
    let hsg = build_hsg(&program).expect("hsg");
    let mut az = Analyzer::with_cache(&program, &sema, &hsg, Options::default(), Some(cache));
    az.run();
}

/// Real entries from a cold analysis, via the memory tier.
fn real_entries(src: &str) -> Vec<(CacheKey, Arc<dataflow::CachedRoutine>)> {
    let mem = Arc::new(MemoryCache::new());
    analyze_into(mem.clone(), src);
    let entries = mem.entries();
    assert!(!entries.is_empty(), "analysis produced no cache entries");
    entries
}

#[test]
fn real_entries_roundtrip_exactly_through_disk() {
    let scratch = Scratch::new("roundtrip");
    let entries = real_entries(TWO_ROUTINES);

    let disk = DiskCache::open(scratch.path(), None);
    for (k, e) in &entries {
        disk.put_entry(k, e);
    }
    assert!(disk.snapshot().disabled.is_none());

    // A *fresh* instance (fresh process stand-in) must read back
    // byte-identical values — Debug identity is the replay contract.
    let disk2 = DiskCache::open(scratch.path(), None);
    for (k, e) in &entries {
        let back = disk2.get_entry(k).expect("warm hit from fresh instance");
        assert_eq!(format!("{e:?}"), format!("{back:?}"), "entry {k}");
    }
    let snap = disk2.snapshot();
    assert_eq!(snap.disk_hits, entries.len() as u64);
    assert_eq!(snap.quarantined, 0);
    assert!(snap.bytes_on_disk > 0);
}

#[test]
fn warm_tiered_analysis_is_disk_fed() {
    let scratch = Scratch::new("tiered");
    {
        let tiered = Arc::new(TieredCache::new(
            MemoryCache::new(),
            Arc::new(DiskCache::open(scratch.path(), None)),
        ));
        analyze_into(tiered.clone(), TWO_ROUTINES);
        assert!(tiered.disk().expect("tier").entries > 0);
    }
    // New process stand-in: empty memory, warm disk.
    let tiered = Arc::new(TieredCache::new(
        MemoryCache::new(),
        Arc::new(DiskCache::open(scratch.path(), None)),
    ));
    analyze_into(tiered.clone(), TWO_ROUTINES);
    let snap = tiered.disk().expect("tier");
    assert!(snap.disk_hits > 0, "warm run should hit disk: {snap:?}");
    assert_eq!(snap.disabled, None);
}

#[test]
fn torn_tail_is_quarantined_and_prefix_salvaged() {
    let scratch = Scratch::new("torn");
    let entries = real_entries(TWO_ROUTINES);
    {
        let disk = DiskCache::open(scratch.path(), None);
        for (k, e) in &entries {
            disk.put_entry(k, e);
        }
    }
    // Tear the tail off one committed segment (simulated torn write /
    // truncated-by-filesystem segment).
    let seg = fs::read_dir(scratch.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "pano"))
        .expect("a segment");
    let bytes = fs::read(&seg).unwrap();
    fs::write(&seg, &bytes[..bytes.len() - 7]).unwrap();

    let disk = DiskCache::open(scratch.path(), None);
    let snap = disk.snapshot();
    assert!(snap.quarantined >= 1, "torn tail counted: {snap:?}");
    assert!(
        scratch.path().join("quarantine").exists(),
        "corrupt file moved aside"
    );
    // Nothing torn was loaded; whatever is indexed decodes fine.
    for (k, e) in &entries {
        if let Some(back) = disk.get_entry(k) {
            assert_eq!(format!("{e:?}"), format!("{back:?}"));
        }
    }
    assert!(snap.disabled.is_none(), "corruption must not disable");
}

#[test]
fn flipped_payload_bit_is_detected_on_open() {
    let scratch = Scratch::new("bitflip");
    let entries = real_entries(TWO_ROUTINES);
    {
        let disk = DiskCache::open(scratch.path(), None);
        disk.put_entry(&entries[0].0, &entries[0].1);
    }
    let seg = fs::read_dir(scratch.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "pano"))
        .expect("a segment");
    let mut bytes = fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&seg, bytes).unwrap();

    let disk = DiskCache::open(scratch.path(), None);
    assert!(disk.get_entry(&entries[0].0).is_none(), "corrupt: miss");
    let snap = disk.snapshot();
    assert!(snap.quarantined >= 1, "{snap:?}");
    assert!(snap.disabled.is_none());
}

#[test]
fn wrong_version_and_wrong_magic_are_quarantined() {
    let scratch = Scratch::new("version");
    let entries = real_entries(TWO_ROUTINES);
    {
        let disk = DiskCache::open(scratch.path(), None);
        disk.put_entry(&entries[0].0, &entries[0].1);
    }
    let seg = fs::read_dir(scratch.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "pano"))
        .expect("a segment");
    // Bump the record's version field (bytes 8..10 = segment magic is
    // 8 bytes, then record magic 4 bytes, then version u16).
    let mut bytes = fs::read(&seg).unwrap();
    bytes[12] = 0xEE;
    bytes[13] = 0xEE;
    fs::write(&seg, &bytes).unwrap();
    let disk = DiskCache::open(scratch.path(), None);
    assert_eq!(disk.snapshot().entries, 0);
    assert!(disk.snapshot().quarantined >= 1);

    // And a file that is not a segment at all.
    fs::write(scratch.path().join("seg-000000000099-1.pano"), b"junk").unwrap();
    let disk = DiskCache::open(scratch.path(), None);
    assert!(disk.snapshot().quarantined >= 1);
    assert!(disk.snapshot().disabled.is_none());
}

#[test]
fn crash_leftover_tmp_file_is_swept_on_open() {
    let scratch = Scratch::new("tmpsweep");
    fs::create_dir_all(scratch.path()).unwrap();
    // A dead pid's uncommitted write (pid 1 is init — treat one that
    // can't be ours; use a pid far beyond pid_max).
    let dead = scratch.path().join(".tmp-999999999-seg-x.pano");
    fs::write(&dead, b"half-written").unwrap();
    let disk = DiskCache::open(scratch.path(), None);
    assert!(!dead.exists(), "uncommitted temp swept");
    assert!(disk.snapshot().disabled.is_none());
}

#[test]
fn eviction_respects_byte_budget_oldest_first() {
    let scratch = Scratch::new("evict");
    let entries = real_entries(TWO_ROUTINES);
    // A budget that fits roughly one segment forces eviction.
    let one_entry_bytes = {
        let probe = Scratch::new("evict-probe");
        let d = DiskCache::open(probe.path(), None);
        d.put_entry(&entries[0].0, &entries[0].1);
        d.snapshot().bytes_on_disk
    };
    let disk = DiskCache::open(scratch.path(), Some(one_entry_bytes + 8));
    for (k, e) in &entries {
        disk.put_entry(k, e);
    }
    let snap = disk.snapshot();
    assert!(snap.evictions > 0, "{snap:?}");
    assert!(snap.bytes_on_disk <= one_entry_bytes + 8 || snap.segments == 1);
    assert!(snap.disabled.is_none());
    // The newest entry survived (oldest-first policy).
    let last = entries.last().unwrap();
    assert!(disk.get_entry(&last.0).is_some());
}

#[test]
fn injected_write_error_degrades_tier_without_crashing() {
    let _guard = failpoints_serial::lock();
    let scratch = Scratch::new("errwrite");
    let entries = real_entries(TWO_ROUTINES);
    let disk = DiskCache::open(scratch.path(), None);
    // Every attempt fails: retries exhaust, the tier disables with a
    // structured reason and write_errors counts it.
    failpoints::configure("disk-write=err(disk is on fire)");
    disk.put_entry(&entries[0].0, &entries[0].1);
    failpoints::clear();
    let snap = disk.snapshot();
    assert_eq!(snap.write_errors, 1);
    let reason = snap.disabled.expect("tier disabled");
    assert!(reason.contains("disk is on fire"), "{reason}");
    // Disabled tier: all ops are no-ops, never panics.
    assert!(disk.get_entry(&entries[0].0).is_none());
    disk.put_entry(&entries[0].0, &entries[0].1);
    assert_eq!(disk.snapshot().write_errors, 1);
}

#[test]
fn transient_write_error_is_retried_to_success() {
    let _guard = failpoints_serial::lock();
    let scratch = Scratch::new("retry");
    let entries = real_entries(TWO_ROUTINES);
    let disk = DiskCache::open(scratch.path(), None);
    // Two injected failures, third attempt (last retry) succeeds.
    failpoints::configure("disk-write=2*err(transient)->off");
    disk.put_entry(&entries[0].0, &entries[0].1);
    failpoints::clear();
    let snap = disk.snapshot();
    assert_eq!(snap.write_errors, 0, "{snap:?}");
    assert_eq!(snap.disabled, None);
    assert!(disk.get_entry(&entries[0].0).is_some());
}

#[test]
fn injected_read_error_is_a_miss_not_a_crash() {
    let _guard = failpoints_serial::lock();
    let scratch = Scratch::new("errread");
    let entries = real_entries(TWO_ROUTINES);
    let disk = DiskCache::open(scratch.path(), None);
    disk.put_entry(&entries[0].0, &entries[0].1);
    failpoints::configure("disk-read=1*err(cosmic rays)->off");
    assert!(disk.get_entry(&entries[0].0).is_none(), "fault → miss");
    failpoints::clear();
    let snap = disk.snapshot();
    assert!(snap.disabled.is_none(), "read fault must not disable");
}

#[test]
fn injected_lock_error_disables_writes_soundly() {
    let _guard = failpoints_serial::lock();
    let scratch = Scratch::new("errlock");
    let entries = real_entries(TWO_ROUTINES);
    let disk = DiskCache::open(scratch.path(), None);
    failpoints::configure("disk-lock=err(lock file unreachable)");
    disk.put_entry(&entries[0].0, &entries[0].1);
    failpoints::clear();
    let snap = disk.snapshot();
    assert!(snap.disabled.is_some(), "{snap:?}");
    assert_eq!(snap.write_errors, 1);
}

#[test]
fn unwritable_directory_disables_with_structured_reason() {
    // A path under a *file* can never be created.
    let scratch = Scratch::new("unwritable");
    fs::create_dir_all(scratch.path()).unwrap();
    let blocker = scratch.path().join("blocker");
    fs::write(&blocker, b"x").unwrap();
    let disk = DiskCache::open(blocker.join("cache"), None);
    let snap = disk.snapshot();
    let reason = snap.disabled.expect("disabled");
    assert!(reason.contains("open"), "{reason}");
    // And it stays inert.
    let entries = real_entries(TWO_ROUTINES);
    disk.put_entry(&entries[0].0, &entries[0].1);
    assert!(disk.get_entry(&entries[0].0).is_none());
}

#[test]
fn two_instances_share_one_directory() {
    let scratch = Scratch::new("share");
    let entries = real_entries(TWO_ROUTINES);
    let a = DiskCache::open(scratch.path(), None);
    for (k, e) in &entries {
        a.put_entry(k, e);
    }
    // Instance B opened afterwards sees A's committed segments.
    let b = DiskCache::open(scratch.path(), None);
    for (k, e) in &entries {
        let back = b.get_entry(k).expect("shared hit");
        assert_eq!(format!("{e:?}"), format!("{back:?}"));
    }
    // A's own reads still work (immutable segments, lock-free reads).
    assert!(a.get_entry(&entries[0].0).is_some());
    // A stale LOCK file from a dead process does not wedge writes.
    fs::write(scratch.path().join("LOCK"), b"999999999").unwrap();
    let c = DiskCache::open(scratch.path(), None);
    c.put_entry(&entries[0].0, &entries[0].1);
    assert!(c.snapshot().disabled.is_none());
}

/// Failpoint configuration is process-global; tests that arm it must
/// not interleave.
mod failpoints_serial {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
