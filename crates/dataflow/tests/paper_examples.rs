//! End-to-end tests of the dataflow analysis on the paper's own examples:
//! the §3 `in`/`out` walkthrough, Fig. 1(b) (ARC2D `filerx`), Fig. 1(c)
//! (OCEAN), and the Fig. 1(a) MDG kernel under the ∀-extension.

use dataflow::{Analyzer, Options};
use fortran::{analyze, parse_program};
use hsg::build_hsg;
use pred::Pred;
use sym::Expr;

struct Run<'a> {
    program: fortran::Program,
    sema: fortran::ProgramSema,
    hsg: hsg::Hsg,
    opts: Options,
    _marker: std::marker::PhantomData<&'a ()>,
}

fn prepare(src: &str, opts: Options) -> Run<'static> {
    let program = parse_program(src).expect("parse");
    let sema = analyze(&program).expect("sema");
    let hsg = build_hsg(&program).expect("hsg");
    Run {
        program,
        sema,
        hsg,
        opts,
        _marker: std::marker::PhantomData,
    }
}

impl Run<'_> {
    fn analyzer(&self) -> Analyzer<'_> {
        Analyzer::new(&self.program, &self.sema, &self.hsg, self.opts)
    }
}

const OCEAN_SRC: &str = "
      PROGRAM ocean
      REAL A(1000)
      INTEGER n, m, i
      REAL x
      n = 40
      m = 100
      DO i = 1, n
        x = 3.5
        call in(A, x, m)
        call out(A, x, m)
      ENDDO
      END

      SUBROUTINE in(B, x, mm)
      REAL B(*)
      INTEGER mm, j
      REAL x
      IF (x .GT. 64.0) RETURN
      DO j = 1, mm
        B(j) = 0.0
      ENDDO
      END

      SUBROUTINE out(B, x, mm)
      REAL B(*)
      INTEGER mm, j
      REAL x, y
      IF (x .GT. 64.0) RETURN
      DO j = 1, mm
        y = B(j)
      ENDDO
      END
";

#[test]
fn subroutine_in_mod_summary() {
    // §3: "the set MOD of subroutine in is [x <= SIZE ∧ 1 <= mm, B(1:mm)]".
    let run = prepare(OCEAN_SRC, Options::default());
    let mut az = run.analyzer();
    let s = az.summarize_routine("in");
    let mods = s.mod_of("b");
    assert_eq!(mods.len(), 1, "MOD(b) = {mods}");
    let g = &mods.gars()[0];
    assert!(g.is_exact(), "expected exact MOD, got {g}");
    assert_eq!(g.region.to_string(), "(1:mm)");
    // guard carries 1 <= mm and the (negated) opaque x > SIZE condition
    assert!(g.guard.implies(&Pred::le(Expr::from(1), Expr::var("mm"))));
    assert!(!g.guard.is_true());
    // no upward-exposed uses of b in `in`
    assert!(s.ue_of("b").is_empty());
}

#[test]
fn subroutine_out_ue_summary() {
    // §3: "The set UE of the subroutine out is [x <= SIZE ∧ 1 <= mm, B(1:mm)]".
    let run = prepare(OCEAN_SRC, Options::default());
    let mut az = run.analyzer();
    let s = az.summarize_routine("out");
    let ues = s.ue_of("b");
    assert_eq!(ues.len(), 1, "UE(b) = {ues}");
    let g = &ues.gars()[0];
    assert_eq!(g.region.to_string(), "(1:mm)");
    assert!(g.guard.implies(&Pred::le(Expr::from(1), Expr::var("mm"))));
    assert!(s.mod_of("b").is_empty());
}

#[test]
fn fig1c_ocean_privatizable() {
    // Fig 1(c): UE_i(A) of the i loop must be empty — the `out` use is
    // covered by the `in` definition under the correlated x > SIZE guard.
    let run = prepare(OCEAN_SRC, Options::default());
    let mut az = run.analyzer();
    az.run();
    let outer = az
        .loops
        .iter()
        .find(|l| l.routine == "ocean" && l.var == "i")
        .expect("outer loop analyzed");
    let sets = outer.arrays.get("a").expect("array a analyzed");
    assert!(
        sets.ue_i.definitely_empty(),
        "UE_i(a) should be empty, got {}",
        sets.ue_i
    );
    // and hence no loop-carried flow dependence
    assert!(sets.ue_i.intersect(&sets.mod_lt).definitely_empty());
}

#[test]
fn fig1c_needs_interprocedural() {
    // With T3 off the call clobbers A and privatization fails.
    let run = prepare(
        OCEAN_SRC,
        Options {
            interprocedural: false,
            ..Options::default()
        },
    );
    let mut az = run.analyzer();
    az.run();
    let outer = az
        .loops
        .iter()
        .find(|l| l.routine == "ocean" && l.var == "i")
        .unwrap();
    let sets = outer.arrays.get("a").unwrap();
    assert!(!sets.ue_i.definitely_empty());
}

#[test]
fn fig1c_needs_if_conditions() {
    // With T2 off the `in` MOD cannot kill the `out` UE (the IF is merged
    // conservatively), so UE_i is nonempty.
    let run = prepare(
        OCEAN_SRC,
        Options {
            if_conditions: false,
            ..Options::default()
        },
    );
    let mut az = run.analyzer();
    az.run();
    let outer = az
        .loops
        .iter()
        .find(|l| l.routine == "ocean" && l.var == "i")
        .unwrap();
    let sets = outer.arrays.get("a").unwrap();
    assert!(
        !sets.ue_i.definitely_empty(),
        "UE_i(a) unexpectedly empty without IF-condition analysis"
    );
}

const ARC2D_SRC: &str = "
      PROGRAM filerx
      REAL A(1000)
      INTEGER i, j, jlow, jup, jmax
      LOGICAL p
      jlow = 2
      jup = jmax - 1
      DO i = 1, 4
        DO j = jlow, jup
          A(j) = 1.0
        ENDDO
        IF (.NOT. p) THEN
          A(jmax) = 2.0
        ENDIF
        DO j = jlow, jup
          q = A(j) + A(jmax)
        ENDDO
      ENDDO
      END
";

#[test]
fn fig1b_arc2d_no_loop_carried_flow() {
    // Fig 5's derivation: UE_i ∩ MOD_<i = ∅ because the loop-invariant
    // guard P appears positively in UE_i and negatively in MOD_<i.
    let run = prepare(ARC2D_SRC, Options::default());
    let mut az = run.analyzer();
    az.run();
    let outer = az
        .loops
        .iter()
        .find(|l| l.routine == "filerx" && l.var == "i")
        .expect("outer loop");
    let sets = outer.arrays.get("a").expect("array a");
    // UE_i: only A(jmax), guarded by p ∧ jmax outside [jlow, jup].
    assert!(
        !sets.ue_i.definitely_empty(),
        "UE_i(a) should be the guarded A(jmax) piece"
    );
    let inter = sets.ue_i.intersect(&sets.mod_lt);
    assert!(
        inter.definitely_empty(),
        "UE_i ∩ MOD_<i should be empty:\n  UE_i   = {}\n  MOD_<i = {}\n  inter  = {}",
        sets.ue_i,
        sets.mod_lt,
        inter
    );
}

#[test]
fn fig1b_needs_if_conditions() {
    let run = prepare(
        ARC2D_SRC,
        Options {
            if_conditions: false,
            ..Options::default()
        },
    );
    let mut az = run.analyzer();
    az.run();
    let outer = az
        .loops
        .iter()
        .find(|l| l.routine == "filerx" && l.var == "i")
        .unwrap();
    let sets = outer.arrays.get("a").unwrap();
    let inter = sets.ue_i.intersect(&sets.mod_lt);
    assert!(
        !inter.definitely_empty(),
        "without T2 the A(jmax) flow dependence cannot be disproved"
    );
}

const MDG_SRC: &str = "
      PROGRAM interf
      REAL A(20), B(20), cut2, ttemp
      INTEGER i, k, kc, nmol1
      cut2 = 1.5
      nmol1 = 100
      DO i = 1, nmol1
        kc = 0
        DO k = 1, 9
          B(k) = 0.5
          IF (B(k) .GT. cut2) kc = kc + 1
        ENDDO
        DO k = 2, 5
          IF (B(k+4) .GT. cut2) goto 1
          A(k+4) = 1.0
1       ENDDO
        IF (kc .NE. 0) goto 2
        DO k = 11, 14
          ttemp = A(k-5)
        ENDDO
2       CONTINUE
      ENDDO
      END
";

#[test]
fn fig1a_mdg_without_forall_not_proved() {
    // The base analysis (paper's implementation) cannot privatize A here —
    // Table 2 reports `no` for RL.
    let run = prepare(MDG_SRC, Options::default());
    let mut az = run.analyzer();
    az.run();
    let outer = az
        .loops
        .iter()
        .find(|l| l.routine == "interf" && l.var == "i")
        .unwrap();
    let sets = outer.arrays.get("a").unwrap();
    assert!(
        !sets.ue_i.definitely_empty(),
        "base analysis should NOT prove UE_i(a) empty (needs ∀)"
    );
}

#[test]
fn fig1a_mdg_with_forall_extension() {
    // With the ∀-extension the counter inference shows A(6:9) is written
    // before the use whenever the use happens: UE_i(a) = ∅.
    let run = prepare(MDG_SRC, Options::full());
    let mut az = run.analyzer();
    az.run();
    let outer = az
        .loops
        .iter()
        .find(|l| l.routine == "interf" && l.var == "i")
        .unwrap();
    let sets = outer.arrays.get("a").unwrap();
    assert!(
        sets.ue_i.definitely_empty(),
        "∀-extension should prove UE_i(a) empty, got {}",
        sets.ue_i
    );
    // B is written every iteration and read in conditions only: its UE_i
    // must be empty too (B(k) is written before the IF reads it).
    let bsets = outer.arrays.get("b").unwrap();
    assert!(
        bsets.ue_i.definitely_empty(),
        "UE_i(b) should be empty, got {}",
        bsets.ue_i
    );
}

#[test]
fn trfd_like_symbolic_triangular() {
    // TRFD olda-style: a work array filled then read with symbolic bounds;
    // needs T1 but neither T2 nor T3.
    let src = "
      PROGRAM olda
      REAL xrsiq(500), v
      INTEGER i, j, mrs, num
      DO i = 1, num
        DO j = 1, mrs
          xrsiq(j) = 1.0
        ENDDO
        DO j = 1, mrs
          v = xrsiq(j)
        ENDDO
      ENDDO
      END
";
    let run = prepare(src, Options::default());
    let mut az = run.analyzer();
    az.run();
    let outer = az
        .loops
        .iter()
        .find(|l| l.routine == "olda" && l.var == "i")
        .unwrap();
    let sets = outer.arrays.get("xrsiq").unwrap();
    assert!(sets.ue_i.definitely_empty(), "UE_i = {}", sets.ue_i);

    // With T1 off, the symbolic bound mrs is not representable: fails.
    let run2 = prepare(
        src,
        Options {
            symbolic: false,
            ..Options::default()
        },
    );
    let mut az2 = run2.analyzer();
    az2.run();
    let outer2 = az2
        .loops
        .iter()
        .find(|l| l.routine == "olda" && l.var == "i")
        .unwrap();
    let sets2 = outer2.arrays.get("xrsiq").unwrap();
    assert!(!sets2.ue_i.definitely_empty());
}

#[test]
fn track_like_interprocedural_constant() {
    // TRACK nlfilt-style: privatization across a call with constant
    // bounds; needs T3 only.
    let src = "
      PROGRAM nlfilt
      REAL P1(900)
      INTEGER i, n
      DO i = 1, n
        call fill(P1)
        call use(P1)
      ENDDO
      END
      SUBROUTINE fill(W)
      REAL W(900)
      INTEGER k
      DO k = 1, 900
        W(k) = 0.0
      ENDDO
      END
      SUBROUTINE use(W)
      REAL W(900)
      INTEGER k
      REAL t
      DO k = 1, 900
        t = W(k)
      ENDDO
      END
";
    for (t1, t2) in [(true, true), (false, false), (false, true), (true, false)] {
        let run = prepare(
            src,
            Options {
                symbolic: t1,
                if_conditions: t2,
                ..Options::default()
            },
        );
        let mut az = run.analyzer();
        az.run();
        let outer = az
            .loops
            .iter()
            .find(|l| l.routine == "nlfilt" && l.var == "i")
            .unwrap();
        let sets = outer.arrays.get("p1").unwrap();
        assert!(
            sets.ue_i.definitely_empty(),
            "T1={t1} T2={t2}: UE_i = {}",
            sets.ue_i
        );
    }
    // But with T3 off it fails.
    let run = prepare(
        src,
        Options {
            interprocedural: false,
            ..Options::default()
        },
    );
    let mut az = run.analyzer();
    az.run();
    let outer = az
        .loops
        .iter()
        .find(|l| l.routine == "nlfilt" && l.var == "i")
        .unwrap();
    assert!(!outer.arrays.get("p1").unwrap().ue_i.definitely_empty());
}

#[test]
fn loop_level_mod_expansion() {
    // The paper's §3 walkthrough: MOD of `in`'s j loop is
    // [1 <= mm, B(1:mm)] — check the loop-level sets directly.
    let run = prepare(OCEAN_SRC, Options::default());
    let mut az = run.analyzer();
    az.run();
    let jloop = az
        .loops
        .iter()
        .find(|l| l.routine == "in" && l.var == "j")
        .unwrap();
    let sets = jloop.arrays.get("b").unwrap();
    // MOD_i = [True, B(j)]
    assert_eq!(sets.mod_i.len(), 1);
    assert_eq!(sets.mod_i.gars()[0].region.to_string(), "(j)");
    // MOD_<i = [1 < j, B(1:j-1)]
    assert_eq!(sets.mod_lt.len(), 1, "MOD_<j = {}", sets.mod_lt);
    assert_eq!(sets.mod_lt.gars()[0].region.to_string(), "(1:j - 1)");
    // MOD_>i = [j < mm, B(j+1:mm)]
    assert_eq!(sets.mod_gt.len(), 1, "MOD_>j = {}", sets.mod_gt);
    assert_eq!(sets.mod_gt.gars()[0].region.to_string(), "(j + 1:mm)");
}

#[test]
fn premature_exit_is_conservative() {
    let src = "
      PROGRAM t
      REAL w(100), s
      INTEGER i, k
      DO i = 1, 10
        DO k = 1, 100
          IF (w(k) .GT. 0.0) goto 99
          w(k) = 1.0
        ENDDO
99      s = 1.0
      ENDDO
      END
";
    let run = prepare(src, Options::default());
    let mut az = run.analyzer();
    az.run();
    let inner = az.loops.iter().find(|l| l.var == "k").unwrap();
    assert!(inner.premature_exit);
    // the inner loop's sets must not claim exact coverage of w
    let sets = inner.arrays.get("w").unwrap();
    assert!(!sets.mod_i.is_exact() || sets.mod_i.is_empty());
}

#[test]
fn stats_populated() {
    let run = prepare(OCEAN_SRC, Options::default());
    let mut az = run.analyzer();
    az.run();
    assert!(az.stats.nodes_processed > 0);
    assert_eq!(az.stats.routines_analyzed, 3);
    assert!(az.stats.loops_analyzed >= 3);
    assert!(az.stats.peak_state_size > 0);
}
