//! Tests for the downwards-exposed (`DE`) sets and the §3.2.2 refined
//! anti-dependence test.

use dataflow::{Analyzer, Options};
use fortran::{analyze, parse_program};
use hsg::build_hsg;

fn loops_of(src: &str) -> Vec<dataflow::LoopAnalysis> {
    let program = parse_program(src).unwrap();
    let sema = analyze(&program).unwrap();
    let h = build_hsg(&program).unwrap();
    let mut az = Analyzer::new(&program, &sema, &h, Options::default());
    az.run();
    let (loops, _, _) = az.finish();
    loops
}

#[test]
fn de_catches_write_then_read_anti_dep() {
    // w(5) written then read each iteration: UE_i is empty (the read is
    // covered in-iteration), but the read *is* downwards exposed — the
    // next iteration's write overwrites a value just read: a real anti
    // dependence that the UE-based test would miss.
    let loops = loops_of(
        "
      PROGRAM t
      REAL w(10), r(100)
      REAL x
      INTEGER i
      DO i = 1, 100
        w(5) = float(i)
        x = w(5)
        r(i) = x
      ENDDO
      END
",
    );
    let l = loops.iter().find(|l| l.var == "i").unwrap();
    let sets = &l.arrays["w"];
    assert!(sets.ue_i.definitely_empty(), "UE_i = {}", sets.ue_i);
    assert!(!sets.de_i.definitely_empty(), "DE_i must contain w(5)");
    assert!(!sets.de_i.intersect(&sets.mod_gt).definitely_empty());
    // The loop still parallelizes by privatizing w.
    let v = privatize::judge_loop(l);
    let w = v.arrays.iter().find(|a| a.array == "w").unwrap();
    assert!(w.anti_dep && w.output_dep && !w.flow_dep);
    assert!(w.privatizable);
    assert!(v.parallel_after_privatization, "{v:?}");
}

#[test]
fn de_killed_by_final_overwrite() {
    // The read is followed by another write of the same element in the
    // same iteration: not downwards exposed — no separate anti dependence
    // (the output dependence still exists and drives privatization).
    let loops = loops_of(
        "
      PROGRAM t
      REAL w(10), r(100)
      REAL x
      INTEGER i
      DO i = 1, 100
        w(5) = float(i)
        x = w(5)
        w(5) = x + 1.0
        r(i) = x
      ENDDO
      END
",
    );
    let l = loops.iter().find(|l| l.var == "i").unwrap();
    let sets = &l.arrays["w"];
    assert!(
        sets.de_i.definitely_empty(),
        "the trailing write kills the exposure: DE_i = {}",
        sets.de_i
    );
    let v = privatize::judge_loop(l);
    let w = v.arrays.iter().find(|a| a.array == "w").unwrap();
    assert!(!w.anti_dep, "{v:?}");
    assert!(w.output_dep && w.privatizable);
}

#[test]
fn de_survives_partial_overwrite() {
    // Only part of the read range is overwritten afterwards; the rest
    // stays exposed.
    let loops = loops_of(
        "
      PROGRAM t
      REAL w(20), r(100)
      REAL s
      INTEGER i, k
      DO i = 1, 100
        s = 0.0
        DO k = 1, 20
          w(k) = float(i + k)
        ENDDO
        DO k = 1, 20
          s = s + w(k)
        ENDDO
        DO k = 1, 10
          w(k) = 0.0
        ENDDO
        r(i) = s
      ENDDO
      END
",
    );
    let l = loops.iter().find(|l| l.var == "i" && l.depth == 0).unwrap();
    let sets = &l.arrays["w"];
    // w(11:20) read by the sum remains downwards exposed.
    assert!(!sets.de_i.definitely_empty());
    let text = sets.de_i.to_string();
    assert!(text.contains("11:20"), "DE_i = {text}");
}

#[test]
fn de_respects_branch_guards() {
    // A read on one branch is only downward-exposed under that branch's
    // condition.
    let loops = loops_of(
        "
      PROGRAM t
      REAL w(10), r(100)
      REAL x
      INTEGER i
      DO i = 1, 100
        w(3) = float(i)
        IF (i .GT. 50) THEN
          x = w(3)
        ELSE
          x = 0.0
        ENDIF
        r(i) = x
      ENDDO
      END
",
    );
    let l = loops.iter().find(|l| l.var == "i").unwrap();
    let sets = &l.arrays["w"];
    assert!(!sets.de_i.definitely_empty());
    // the guard i > 50 must appear on the DE piece
    assert!(
        sets.de_i.gars().iter().all(|g| !g.guard.is_true()),
        "DE_i = {}",
        sets.de_i
    );
}

#[test]
fn routine_level_de_summary() {
    let src = "
      PROGRAM main
      REAL a(50)
      INTEGER q
      q = 1
      call use2(a)
      END
      SUBROUTINE use2(b)
      REAL b(50)
      REAL x, y
      x = b(1)
      b(1) = x + 1.0
      y = b(2)
      END
";
    let program = parse_program(src).unwrap();
    let sema = analyze(&program).unwrap();
    let h = build_hsg(&program).unwrap();
    let mut az = Analyzer::new(&program, &sema, &h, Options::default());
    let s = az.summarize_routine("use2");
    // b(1) read then overwritten → not in DE; b(2) read last → in DE.
    let de = s.de_of("b");
    let text = de.to_string();
    assert!(text.contains("(2)"), "DE = {text}");
    assert!(!text.contains("(1)"), "DE = {text}");
    // UE has both reads (merged into the adjacent range b(1:2)).
    let ue = s.ue_of("b");
    assert_eq!(ue.to_string(), "[TRUE, (1:2)]");
}
