//! Loop-shape coverage: descending loops, non-unit steps, zero-trip
//! loops, and loops whose bounds come through PARAMETER chains.

use dataflow::{Analyzer, Options};
use fortran::{analyze, parse_program};
use hsg::build_hsg;
use privatize::judge_all;

fn verdicts(src: &str) -> Vec<privatize::LoopVerdict> {
    let program = parse_program(src).unwrap();
    let sema = analyze(&program).unwrap();
    let h = build_hsg(&program).unwrap();
    let mut az = Analyzer::new(&program, &sema, &h, Options::default());
    az.run();
    judge_all(&az.loops)
}

fn outer<'a>(vs: &'a [privatize::LoopVerdict], var: &str) -> &'a privatize::LoopVerdict {
    vs.iter()
        .filter(|v| v.var == var)
        .min_by_key(|v| v.depth)
        .unwrap()
}

#[test]
fn descending_loop_elementwise() {
    let vs = verdicts(
        "
      PROGRAM t
      REAL a(100), b(100)
      INTEGER i
      DO i = 100, 1, -1
        a(i) = b(i) + 1.0
      ENDDO
      END
",
    );
    let v = outer(&vs, "i");
    assert!(v.parallel_as_is, "{v:?}");
}

#[test]
fn descending_recurrence_detected() {
    let vs = verdicts(
        "
      PROGRAM t
      REAL a(100)
      INTEGER i
      DO i = 99, 1, -1
        a(i) = a(i+1)
      ENDDO
      END
",
    );
    let v = outer(&vs, "i");
    assert!(!v.parallel_after_privatization, "{v:?}");
}

#[test]
fn strided_loop_disjoint_writes() {
    let vs = verdicts(
        "
      PROGRAM t
      REAL a(200)
      INTEGER i
      DO i = 1, 100, 2
        a(i) = float(i)
      ENDDO
      END
",
    );
    let v = outer(&vs, "i");
    assert!(v.parallel_as_is, "{v:?}");
}

#[test]
fn strided_work_array_privatizes() {
    let vs = verdicts(
        "
      PROGRAM t
      REAL w(10), r(100)
      INTEGER i, k
      DO i = 1, 99, 2
        DO k = 1, 10
          w(k) = float(i + k)
        ENDDO
        r(i) = w(5)
      ENDDO
      END
",
    );
    let v = outer(&vs, "i");
    assert!(v.parallel_after_privatization, "{v:?}");
    assert!(v.privatized.contains(&"w".to_string()));
}

#[test]
fn zero_trip_loop_harmless() {
    let vs = verdicts(
        "
      PROGRAM t
      REAL a(10), q
      INTEGER i
      DO i = 5, 1
        a(i) = 1.0
      ENDDO
      q = a(3)
      END
",
    );
    let v = outer(&vs, "i");
    // trivially parallel (no iterations can conflict)
    assert!(v.parallel_as_is || v.parallel_after_privatization, "{v:?}");
}

#[test]
fn parameter_chain_bounds() {
    let vs = verdicts(
        "
      PROGRAM t
      PARAMETER (half = 32, full = half * 2)
      REAL w(100), r(50)
      INTEGER i, k
      DO i = 1, 50
        DO k = 1, full
          w(k) = float(i)
        ENDDO
        r(i) = w(full)
      ENDDO
      END
",
    );
    let v = outer(&vs, "i");
    assert!(v.parallel_after_privatization, "{v:?}");
    assert!(v.privatized.contains(&"w".to_string()));
}

#[test]
fn symbolic_descending_conservative() {
    // Descending with symbolic bounds: summaries stay sound
    // (over-approximate), verdict conservative but no crash.
    let vs = verdicts(
        "
      PROGRAM t
      REAL w(100), r(50)
      INTEGER i, k, n
      n = int(float(80))
      DO i = 1, 50
        DO k = n, 1, -1
          w(k) = float(i + k)
        ENDDO
        r(i) = w(1)
      ENDDO
      END
",
    );
    let v = outer(&vs, "i");
    // w is written every iteration before the read of w(1): whether the
    // analysis proves it depends on the descending-loop summary; it must
    // at least not be unsound — we just require a verdict to exist and w
    // to be recorded.
    assert!(v.arrays.iter().any(|a| a.array == "w"));
}
