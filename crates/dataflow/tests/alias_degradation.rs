//! Call-site alias degradation and the conservative-clobber path:
//! dropping DE at clobber sites (no invented anti dependences), scoping
//! the COMMON clobber to the callee's reachable storage classes, and
//! poisoning EQUIVALENCE overlays.

use dataflow::{Analyzer, Options};
use fortran::{analyze, parse_program};
use hsg::build_hsg;

fn loops_of(src: &str, opts: Options) -> Vec<dataflow::LoopAnalysis> {
    let program = parse_program(src).unwrap();
    let sema = analyze(&program).unwrap();
    let h = build_hsg(&program).unwrap();
    let mut az = Analyzer::new(&program, &sema, &h, opts);
    az.run();
    let (loops, _, _) = az.finish();
    loops
}

fn no_t3() -> Options {
    Options {
        interprocedural: false,
        ..Options::default()
    }
}

#[test]
fn clobber_site_drops_de_instead_of_inventing_anti_deps() {
    // The read of b(1) is overwritten later in the same iteration, so
    // nothing of b is downwards exposed. The conservative call used to
    // add an unknown region to DE anyway, which manufactured a spurious
    // anti dependence (DE_i ∩ MOD_>i with unknown MOD from the clobber).
    // An empty DE is the sound direction for an over-approximated
    // summary: any read a must-write removes from DE implies that write
    // is in MOD_i, so the output test still reports the conflict.
    let loops = loops_of(
        "
      PROGRAM t
      REAL b(10), r(100)
      REAL x
      INTEGER i
      DO i = 1, 100
        x = b(1)
        b(1) = float(i)
        CALL f(b)
        r(i) = x
      ENDDO
      END

      SUBROUTINE f(b)
      REAL b(10)
      b(2) = 1.0
      END
",
        no_t3(),
    );
    let l = loops.iter().find(|l| l.var == "i").unwrap();
    let sets = &l.arrays["b"];
    assert!(sets.de_i.definitely_empty(), "DE_i = {}", sets.de_i);
    assert!(!sets.mod_i.definitely_empty(), "clobber must keep MOD");
    assert!(!sets.ue_i.definitely_empty(), "clobber must keep UE");
    let v = privatize::judge_loop(l);
    let b = v.arrays.iter().find(|a| a.array == "b").unwrap();
    assert!(!b.anti_dep, "clobbered DE must not invent anti deps: {b:?}");
    assert!(b.flow_dep, "unknown UE against unknown MOD stays flow");
    assert!(b.output_dep, "unknown MOD against itself stays output");
    assert!(
        !v.parallel_after_privatization,
        "verdict stays conservative"
    );
}

const CALLEE_NO_COMMON: &str = "
      SUBROUTINE f(b)
      REAL b(10)
      b(1) = 1.0
      END
";

const CALLEE_WITH_COMMON: &str = "
      SUBROUTINE f(b)
      REAL c(100), b(10)
      COMMON /data/ c
      b(1) = 1.0
      c(1) = 2.0
      END
";

fn common_caller(callee: &str) -> String {
    format!(
        "
      PROGRAM t
      REAL c(100), b(10)
      COMMON /data/ c
      INTEGER i
      DO i = 1, 100
        c(i) = float(i)
        CALL f(b)
      ENDDO
      END
{callee}"
    )
}

#[test]
fn clobber_scope_excludes_commons_the_callee_cannot_reach() {
    // `f` declares no COMMON and calls nothing, so the conservative
    // call can only touch its actual `b`. The seed clobbered every
    // COMMON name in the caller instead, which would have degraded `c`.
    let loops = loops_of(&common_caller(CALLEE_NO_COMMON), no_t3());
    let l = loops.iter().find(|l| l.var == "i").unwrap();
    let v = privatize::judge_loop(l);
    let c = v.arrays.iter().find(|a| a.array == "c").unwrap();
    assert!(
        !c.flow_dep && !c.output_dep && !c.anti_dep,
        "COMMON array the callee cannot reach must stay precise: {c:?}"
    );
    let b = v.arrays.iter().find(|a| a.array == "b").unwrap();
    assert!(b.output_dep, "the actual is still clobbered: {b:?}");
}

#[test]
fn clobber_scope_includes_commons_the_callee_reaches() {
    // Same caller, but now `f` declares /data/ itself: `c` is in the
    // callee's reachable storage and must be degraded.
    let loops = loops_of(&common_caller(CALLEE_WITH_COMMON), no_t3());
    let l = loops.iter().find(|l| l.var == "i").unwrap();
    let v = privatize::judge_loop(l);
    let c = v.arrays.iter().find(|a| a.array == "c").unwrap();
    assert!(
        c.output_dep,
        "COMMON array the callee declares must be clobbered: {c:?}"
    );
}

#[test]
fn clobber_scope_follows_transitive_callees() {
    // `f` itself is storage-free but calls `g`, which writes /data/:
    // the reach is transitive, so `c` still degrades at the CALL f site.
    let src = "
      PROGRAM t
      REAL c(100), b(10)
      COMMON /data/ c
      INTEGER i
      DO i = 1, 100
        c(i) = float(i)
        CALL f(b)
      ENDDO
      END

      SUBROUTINE f(b)
      REAL b(10)
      b(1) = 1.0
      CALL g()
      END

      SUBROUTINE g()
      REAL c(100)
      COMMON /data/ c
      c(1) = 2.0
      END
";
    let loops = loops_of(src, no_t3());
    let l = loops.iter().find(|l| l.var == "i").unwrap();
    let v = privatize::judge_loop(l);
    let c = v.arrays.iter().find(|a| a.array == "c").unwrap();
    assert!(c.output_dep, "transitively reached COMMON degrades: {c:?}");
}

#[test]
fn must_aliased_actuals_union_both_formal_views() {
    // CALL step(a, a, i): the callee writes x(i) and reads y(i-1);
    // with both formals bound to `a` the read observes the previous
    // iteration's write — a loop-carried flow dependence that vanishes
    // if either formal's contribution is dropped on the floor.
    let src = "
      PROGRAM t
      REAL a(200), r(200)
      INTEGER i
      a(1) = 0.0
      DO i = 2, 100
        CALL step(a, a, i)
        r(i) = a(i)
      ENDDO
      END

      SUBROUTINE step(x, y, i)
      REAL x(200), y(200)
      INTEGER i
      x(i) = y(i-1) + 1.0
      END
";
    let loops = loops_of(src, Options::default());
    let l = loops
        .iter()
        .find(|l| l.routine == "t" && l.var == "i")
        .unwrap();
    let v = privatize::judge_loop(l);
    let a = v.arrays.iter().find(|a| a.array == "a").unwrap();
    assert!(a.flow_dep, "aliased recurrence must be detected: {a:?}");
    assert!(!a.privatizable, "{a:?}");
    assert!(!v.parallel_after_privatization, "{v:?}");
}

#[test]
fn equivalence_partners_are_overlaid_and_poisoned() {
    // w and v share storage via EQUIVALENCE. Privatizing w would break
    // the read of v(1) (it reads w(1)'s cell), so overlaid arrays are
    // banned from candidacy and writes poison the partner's MOD.
    let src = "
      PROGRAM t
      REAL w(10), v(10), r(100)
      EQUIVALENCE (w(1), v(1))
      INTEGER i, k
      DO i = 1, 100
        DO k = 1, 10
          w(k) = float(i + k)
        ENDDO
        r(i) = v(1)
      ENDDO
      END
";
    let loops = loops_of(src, Options::default());
    let l = loops.iter().find(|l| l.var == "i" && l.depth == 0).unwrap();
    assert!(
        l.overlaid.contains("w") && l.overlaid.contains("v"),
        "{:?}",
        l.overlaid
    );
    let v = privatize::judge_loop(l);
    let w = v.arrays.iter().find(|a| a.array == "w").unwrap();
    assert!(!w.privatizable, "overlaid arrays never privatize: {w:?}");
    assert!(
        !v.parallel_after_privatization,
        "the overlay carries a cross-iteration dependence: {v:?}"
    );
    // Without the EQUIVALENCE the same loop privatizes w and runs
    // parallel — the degradation is attributable to the overlay alone.
    let clean = loops_of(
        &src.replace("      EQUIVALENCE (w(1), v(1))\n", ""),
        Options::default(),
    );
    let l2 = clean.iter().find(|l| l.var == "i" && l.depth == 0).unwrap();
    assert!(l2.overlaid.is_empty());
    let v2 = privatize::judge_loop(l2);
    assert!(v2.parallel_after_privatization, "{v2:?}");
}
