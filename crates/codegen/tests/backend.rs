//! panogen unit tests: clause selection, plan lowering guards, skip
//! diagnostics and emission identity.

use codegen::{transform, SkipReason};
use dataflow::{Analyzer, LoopAnalysis, Options};
use fortran::{parse_program, strip_lines, Program, ProgramSema};
use privatize::{judge_all, LoopVerdict};

fn run(src: &str) -> (Program, ProgramSema, Vec<LoopAnalysis>, Vec<LoopVerdict>) {
    let program = parse_program(src).unwrap();
    let sema = fortran::analyze(&program).unwrap();
    let h = hsg::build_hsg(&program).unwrap();
    let mut az = Analyzer::new(&program, &sema, &h, Options::full());
    az.run();
    let verdicts = judge_all(&az.loops);
    let (loops, _, _) = az.finish();
    (program, sema, loops, verdicts)
}

#[test]
fn clause_selection_private_firstprivate_lastprivate() {
    // w: privatized, reads w(101:200) it never writes -> FIRSTPRIVATE.
    // p: privatized, written before read, dead after -> PRIVATE.
    // m: private scalar read after the loop -> LASTPRIVATE.
    // k: inner index, dead after -> PRIVATE.
    let (program, sema, loops, verdicts) = run("
      PROGRAM t
      REAL w(200), p(10), a(100)
      INTEGER i, k, m
      DO i = 1, 100
        DO k = 1, 100
          w(k) = w(k + 100) + float(i)
        ENDDO
        DO k = 1, 10
          p(k) = w(k)
        ENDDO
        m = i + i
        a(i) = w(5) + p(3)
      ENDDO
      a(1) = a(1) + float(m)
      END
");
    let t = transform(&program, &sema, &loops, &verdicts);
    let lt = t.loop_transform("t", "i").expect("i loop transformed");
    assert!(lt.clauses.firstprivate.contains(&"w".to_string()), "{lt:?}");
    assert!(lt.clauses.private.contains(&"p".to_string()), "{lt:?}");
    assert!(lt.clauses.lastprivate.contains(&"m".to_string()), "{lt:?}");
    assert!(lt.clauses.private.contains(&"k".to_string()), "{lt:?}");
    assert!(!lt.clauses.lastprivate.contains(&"k".to_string()));
    // Clause decisions are recorded in provenance.
    assert!(lt
        .provenance
        .iter()
        .any(|e| e.op == "clause" && e.subject == "w" && e.result.contains("FIRSTPRIVATE")));
    // No reduction refusal applies, so the loop is also planned.
    assert!(lt.planned, "{:?}", lt.plan_note);
    assert!(t.plan.matches("t", "i", lt.line));
    // The directive carries all clauses.
    assert!(
        lt.directive.starts_with("!$OMP PARALLEL DO"),
        "{}",
        lt.directive
    );
    assert!(lt.directive.contains("FIRSTPRIVATE(w)"), "{}", lt.directive);
    assert!(lt.directive.contains("LASTPRIVATE(m)"), "{}", lt.directive);
}

#[test]
fn sibling_same_var_loops_both_planned() {
    // Two sibling parallel loops share index k: the executor keys plans
    // by (routine, var, line), so each gets its own line-anchored entry
    // and both are planned.
    let (program, sema, loops, verdicts) = run("
      PROGRAM t
      REAL a(50), b(50)
      INTEGER k
      DO k = 1, 50
        a(k) = float(k)
      ENDDO
      DO k = 1, 50
        b(k) = a(k) * 2.0
      ENDDO
      END
");
    let t = transform(&program, &sema, &loops, &verdicts);
    assert_eq!(t.loops.len(), 2);
    for lt in &t.loops {
        assert!(lt.planned, "{:?}", lt.plan_note);
        assert!(t.plan.matches("t", "k", lt.line));
        assert!(lt.directive.starts_with("!$OMP PARALLEL DO"));
    }
    let lines: Vec<u32> = t.loops.iter().map(|lt| lt.line).collect();
    assert_ne!(lines[0], lines[1], "entries anchor to distinct lines");
    assert!(!t.plan.matches("t", "k", 0), "no entry at a bogus line");
    assert_eq!(t.source.matches("!$OMP PARALLEL DO").count(), 2);
}

#[test]
fn nested_loop_reported_not_replanned() {
    let (program, sema, loops, verdicts) = run("
      PROGRAM t
      REAL a(100, 100)
      INTEGER i, j
      DO i = 1, 100
        DO j = 1, 100
          a(j, i) = float(i + j)
        ENDDO
      ENDDO
      END
");
    let t = transform(&program, &sema, &loops, &verdicts);
    assert_eq!(t.loops.len(), 1, "only the outer loop transforms");
    assert_eq!(t.loops[0].var, "i");
    let nested = t
        .skipped
        .iter()
        .find(|s| s.var == "j")
        .expect("inner loop skip diagnostic");
    assert_eq!(nested.reason, SkipReason::Nested);
    assert!(nested.detail.contains("t/do i"), "{}", nested.detail);
}

#[test]
fn serial_loop_reported_with_blockers() {
    let (program, sema, loops, verdicts) = run("
      PROGRAM t
      REAL a(100)
      INTEGER i
      DO i = 2, 100
        a(i) = a(i-1)
      ENDDO
      END
");
    let t = transform(&program, &sema, &loops, &verdicts);
    assert!(t.loops.is_empty());
    let skip = &t.skipped[0];
    assert_eq!(skip.reason, SkipReason::Serial);
    assert!(skip.detail.contains("ArrayFlowDep"), "{}", skip.detail);
    assert!(!t.source.contains("!$OMP"));
}

#[test]
fn synthetic_verdict_skipped_with_structured_diagnostic() {
    let (program, sema, loops, mut verdicts) = run("
      PROGRAM t
      REAL a(10)
      INTEGER i
      DO i = 1, 10
        a(i) = 1.0
      ENDDO
      END
");
    // A harness-synthesized verdict: no source line to anchor to.
    let mut synthetic = verdicts[0].clone();
    synthetic.line = 0;
    synthetic.id = "t/do q#99".to_string();
    synthetic.var = "q".to_string();
    verdicts.push(synthetic);
    let t = transform(&program, &sema, &loops, &verdicts);
    assert_eq!(t.loops.len(), 1, "the real loop still transforms");
    let skip = t
        .skipped
        .iter()
        .find(|s| s.reason == SkipReason::Synthetic)
        .expect("synthetic skip diagnostic");
    assert_eq!(skip.line, 0);
    assert_eq!(skip.id, "t/do q#99");
    assert!(skip.detail.contains("line 0"), "{}", skip.detail);
    assert!(skip.render().contains("[synthetic]"));
}

#[test]
fn integer_reduction_planned_real_reduction_annotated_only() {
    let (program, sema, loops, verdicts) = run("
      PROGRAM t
      REAL a(100), s
      INTEGER i, n
      n = 0
      s = 0.0
      DO i = 1, 100
        s = s + a(i)
      ENDDO
      DO n = 1, 100
        a(n) = s
      ENDDO
      END
");
    let t = transform(&program, &sema, &loops, &verdicts);
    let red = t.loop_transform("t", "i").unwrap();
    assert!(
        red.directive.contains("REDUCTION(+:s)"),
        "{}",
        red.directive
    );
    assert!(!red.planned);
    assert!(
        red.plan_note
            .as_deref()
            .unwrap_or("")
            .contains("REAL reduction"),
        "{:?}",
        red.plan_note
    );

    let (program, sema, loops, verdicts) = run("
      PROGRAM t
      INTEGER a(100), s, i
      s = 0
      DO i = 1, 100
        s = s + a(i)
      ENDDO
      a(1) = s
      END
");
    let t = transform(&program, &sema, &loops, &verdicts);
    let red = t.loop_transform("t", "i").unwrap();
    assert!(red.directive.contains("REDUCTION(+:s)"));
    assert!(red.planned, "{:?}", red.plan_note);
}

#[test]
fn integer_product_planned_real_product_annotated_only() {
    // INTEGER products are exact under wrapping multiplication, so the
    // executor can combine partials multiplicatively; REAL products stay
    // directive-only (reassociation is not byte-stable).
    let (program, sema, loops, verdicts) = run("
      PROGRAM t
      INTEGER a(20), s, i
      s = 1
      DO i = 1, 20
        s = s * a(i)
      ENDDO
      a(1) = s
      END
");
    let t = transform(&program, &sema, &loops, &verdicts);
    let red = t.loop_transform("t", "i").unwrap();
    assert!(
        red.directive.contains("REDUCTION(*:s)"),
        "{}",
        red.directive
    );
    assert!(red.planned, "{:?}", red.plan_note);

    let (program, sema, loops, verdicts) = run("
      PROGRAM t
      REAL a(20), s
      INTEGER i
      s = 1.0
      DO i = 1, 20
        s = s * a(i)
      ENDDO
      a(1) = s
      END
");
    let t = transform(&program, &sema, &loops, &verdicts);
    let red = t.loop_transform("t", "i").unwrap();
    assert!(red.directive.contains("REDUCTION(*:s)"));
    assert!(!red.planned);
    assert!(
        red.plan_note
            .as_deref()
            .unwrap_or("")
            .contains("REAL reduction"),
        "{:?}",
        red.plan_note
    );
}

#[test]
fn goto_forces_scalar_copy_out() {
    // A backward GOTO can revisit pre-loop text after the loop ran, so
    // every private scalar becomes LASTPRIVATE.
    let (program, sema, loops, verdicts) = run("
      PROGRAM t
      REAL a(50)
      INTEGER i, m
      DO i = 1, 50
        m = i + 1
        a(i) = float(m)
      ENDDO
      IF (a(1) .GT. 0.0) goto 9
      a(2) = 1.0
9     CONTINUE
      END
");
    let t = transform(&program, &sema, &loops, &verdicts);
    let lt = t.loop_transform("t", "i").unwrap();
    assert!(lt.clauses.lastprivate.contains(&"m".to_string()), "{lt:?}");
}

#[test]
fn emitted_source_reparses_to_original_ast() {
    let (program, sema, loops, verdicts) = run("
      PROGRAM t
      REAL w(10), a(100)
      INTEGER i, k
      DO i = 1, 100
        DO k = 1, 10
          w(k) = float(i) / float(k)
        ENDDO
        a(i) = w(1) + w(10)
      ENDDO
      END
");
    let t = transform(&program, &sema, &loops, &verdicts);
    assert!(t.source.contains("!$OMP PARALLEL DO"));
    assert!(t.source.contains("!$OMP END PARALLEL DO"));
    let reparsed = parse_program(&t.source).unwrap();
    assert_eq!(strip_lines(&reparsed), strip_lines(&program));
}

#[test]
fn directive_rendering_format() {
    let c = codegen::Clauses {
        private: vec!["k".into(), "w".into()],
        firstprivate: vec!["u".into()],
        lastprivate: vec!["m".into()],
        reduction_add: vec!["s".into()],
        reduction_mul: vec!["p".into()],
    };
    assert_eq!(
        c.directive(),
        "!$OMP PARALLEL DO PRIVATE(k, w) FIRSTPRIVATE(u) LASTPRIVATE(m) \
         REDUCTION(+:s) REDUCTION(*:p)"
    );
    assert!(c.all_names().contains("s"));
}
