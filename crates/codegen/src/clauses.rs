//! OpenMP data-sharing clause selection (DESIGN.md §4h).
//!
//! Maps a positive [`privatize::LoopVerdict`] onto the four data-sharing
//! clauses, using the dependence sets the verdict was judged from:
//!
//! * **PRIVATE** — a privatized array whose `UE_i` set is provably empty
//!   (every read is preceded by a same-iteration write), or a private
//!   scalar not observable after the loop. The per-thread copy may start
//!   undefined.
//! * **FIRSTPRIVATE** — a privatized array with upward-exposed reads
//!   (`UE_i` not provably empty): the private copy must start from the
//!   incoming shared values.
//! * **LASTPRIVATE** — a privatized array the analysis marked live after
//!   the loop (`needs_copy_out`), or a private scalar that may be
//!   observed after the loop: the sequentially-last value is copied back.
//!   A copy-out *array* is always also FIRSTPRIVATE: LASTPRIVATE
//!   transfers the whole final private copy, and the analysis does not
//!   prove the final iteration writes every live-out element, so the
//!   copy must start from the shared values.
//! * **REDUCTION(+:…)** / **REDUCTION(*:…)** — recognized reduction
//!   scalars, split by the operator found in the loop body.
//!
//! Every choice is recorded as a [`ProvEntry`] so `--transform-out`
//! reports *why* each name got its clause.

use dataflow::LoopAnalysis;
use fortran::{Expr, LValue, Routine, Stmt, StmtKind, SymbolTable};
use privatize::{LoopVerdict, ProvEntry};
use serde::Serialize;
use std::collections::BTreeSet;

/// The selected data-sharing clauses for one loop, ready to render into a
/// `!$OMP PARALLEL DO` directive. Names are the lower-cased identifiers
/// of the printed program. A name appears in at most one of `private` /
/// `firstprivate`; `lastprivate` may repeat a `firstprivate` name (both
/// copy-in and copy-out) but never a `private` one (LASTPRIVATE already
/// implies privatization).
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct Clauses {
    /// PRIVATE list (arrays and scalars).
    pub private: Vec<String>,
    /// FIRSTPRIVATE list (arrays with upward-exposed reads).
    pub firstprivate: Vec<String>,
    /// LASTPRIVATE list (arrays and scalars needing copy-out).
    pub lastprivate: Vec<String>,
    /// REDUCTION(+:…) scalars (covers `s = s + e` and `s = s - e`).
    pub reduction_add: Vec<String>,
    /// REDUCTION(*:…) scalars (`s = s * e`).
    pub reduction_mul: Vec<String>,
}

impl Clauses {
    /// Renders the full `!$OMP PARALLEL DO …` directive line.
    pub fn directive(&self) -> String {
        let mut s = String::from("!$OMP PARALLEL DO");
        let clause = |out: &mut String, kw: &str, names: &[String]| {
            if !names.is_empty() {
                out.push_str(&format!(" {kw}({})", names.join(", ")));
            }
        };
        clause(&mut s, "PRIVATE", &self.private);
        clause(&mut s, "FIRSTPRIVATE", &self.firstprivate);
        clause(&mut s, "LASTPRIVATE", &self.lastprivate);
        if !self.reduction_add.is_empty() {
            s.push_str(&format!(" REDUCTION(+:{})", self.reduction_add.join(", ")));
        }
        if !self.reduction_mul.is_empty() {
            s.push_str(&format!(" REDUCTION(*:{})", self.reduction_mul.join(", ")));
        }
        s
    }

    /// All clause-listed names, for quick membership checks in tests.
    pub fn all_names(&self) -> BTreeSet<&str> {
        self.private
            .iter()
            .chain(&self.firstprivate)
            .chain(&self.lastprivate)
            .chain(&self.reduction_add)
            .chain(&self.reduction_mul)
            .map(String::as_str)
            .collect()
    }
}

/// Selects clauses for one transformable loop.
///
/// `body` is the loop's statement list (for reduction-operator
/// classification); `la` supplies the `UE_i` sets behind the
/// PRIVATE-vs-FIRSTPRIVATE split.
pub fn select(
    v: &LoopVerdict,
    la: &LoopAnalysis,
    routine: &Routine,
    table: &SymbolTable,
    body: &[Stmt],
    prov: &mut Vec<ProvEntry>,
) -> Clauses {
    let mut c = Clauses::default();

    // Arrays: the verdict's privatized list, classified by copy-in
    // (UE_i) and copy-out (liveness) needs.
    for name in &v.privatized {
        let copy_in = la
            .arrays
            .get(name)
            .is_some_and(|sets| !sets.ue_i.definitely_empty());
        let copy_out = v
            .arrays
            .iter()
            .find(|a| &a.array == name)
            .is_some_and(|a| a.needs_copy_out);
        let (clause, why) = if copy_out {
            // LASTPRIVATE transfers the final iteration's *whole* private
            // copy. Unless the content pass proved every declared element
            // is written each iteration, the copy must be seeded from the
            // shared array (FIRSTPRIVATE) or never-written elements would
            // come back undefined.
            if !copy_in && la.content_full.contains(name) {
                c.lastprivate.push(name.clone());
                (
                    "LASTPRIVATE",
                    "live after the loop; content pass proves every declared \
                     element is written each iteration, so no seeding is needed",
                )
            } else {
                c.firstprivate.push(name.clone());
                c.lastprivate.push(name.clone());
                if copy_in {
                    (
                        "FIRSTPRIVATE LASTPRIVATE",
                        "UE_i not provably empty (reads pre-loop values); live after the loop",
                    )
                } else {
                    (
                        "FIRSTPRIVATE LASTPRIVATE",
                        "live after the loop: copy-out transfers the whole array, so the \
                         private copy is seeded to preserve never-written elements",
                    )
                }
            }
        } else if copy_in {
            c.firstprivate.push(name.clone());
            (
                "FIRSTPRIVATE",
                "UE_i not provably empty (reads pre-loop values)",
            )
        } else {
            c.private.push(name.clone());
            (
                "PRIVATE",
                "UE_i empty (written before read); dead after the loop",
            )
        };
        prov.push(ProvEntry {
            op: "clause".to_string(),
            subject: name.clone(),
            detail: why.to_string(),
            result: clause.to_string(),
        });
    }

    // Scalars: private ones that may be observed after the loop need
    // their sequentially-last value copied back.
    let live = scalars_live_after(routine, v.line, &v.var);
    for s in &v.private_scalars {
        // COMMON scalars and dummy arguments escape the routine (the
        // caller can observe them) regardless of local liveness.
        let observable = live.contains(s.as_str())
            || table.common_block(s).is_some()
            || routine.params.contains(s);
        let (clause, why) = if observable {
            c.lastprivate.push(s.clone());
            ("LASTPRIVATE", "may be observed after the loop")
        } else {
            c.private.push(s.clone());
            ("PRIVATE", "dead after the loop")
        };
        prov.push(ProvEntry {
            op: "clause".to_string(),
            subject: s.clone(),
            detail: why.to_string(),
            result: clause.to_string(),
        });
    }

    // Reductions, split by the operator used in the body.
    for s in &v.reductions {
        let mul = reduction_is_product(body, s);
        let clause = if mul {
            c.reduction_mul.push(s.clone());
            "REDUCTION(*)"
        } else {
            c.reduction_add.push(s.clone());
            "REDUCTION(+)"
        };
        prov.push(ProvEntry {
            op: "clause".to_string(),
            subject: s.clone(),
            detail: "recognized reduction".to_string(),
            result: clause.to_string(),
        });
    }
    c
}

/// Does any `s = s * e` assignment appear in the body? (The recognizer
/// only accepts `v = v op e` forms with op in `{+, -, *}`, so a single
/// multiplicative site makes the whole chain a product reduction.)
fn reduction_is_product(body: &[Stmt], s: &str) -> bool {
    let mut found = false;
    walk_stmts(body, &mut |st| {
        if let StmtKind::Assign(LValue::Var(lhs), Expr::Bin(fortran::BinOp::Mul, ..)) = &st.kind {
            if lhs == s {
                found = true;
            }
        }
    });
    found
}

/// Over-approximates the scalars whose value may be observed after the
/// loop at `(line, var)` finishes: every identifier occurring in a
/// statement that follows the loop in the routine's text. A GOTO
/// anywhere in the routine forces full conservatism (control may revisit
/// "earlier" text after the loop). Copying a last value back is always
/// semantics-preserving, so over-approximation only costs clause
/// precision, never correctness.
fn scalars_live_after(routine: &Routine, line: u32, var: &str) -> BTreeSet<String> {
    let mut has_goto = false;
    walk_stmts(&routine.body, &mut |s| {
        if matches!(s.kind, StmtKind::Goto(_)) {
            has_goto = true;
        }
    });
    let mut live = BTreeSet::new();
    if has_goto {
        // Every scalar may be re-read via a backward jump.
        walk_stmts(&routine.body, &mut |s| collect_stmt_names(s, &mut live));
    } else {
        let mut found = false;
        collect_after(&routine.body, line, var, &mut found, &mut live);
    }
    live
}

/// Pre-order statement walk over nested bodies.
fn walk_stmts(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for s in stmts {
        f(s);
        match &s.kind {
            StmtKind::Do { body, .. } => walk_stmts(body, f),
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                walk_stmts(then_body, f);
                walk_stmts(else_body, f);
            }
            StmtKind::LogicalIf(_, inner) => walk_stmts(std::slice::from_ref(inner), f),
            _ => {}
        }
    }
}

/// Collects identifiers from statements textually after the target loop.
/// Once the loop statement itself is passed, every sibling and ancestor
/// sibling counts; branches parallel to the loop (e.g. the ELSE arm of
/// an IF that contains it) are included conservatively.
fn collect_after(
    stmts: &[Stmt],
    line: u32,
    var: &str,
    found: &mut bool,
    out: &mut BTreeSet<String>,
) {
    for s in stmts {
        if *found {
            collect_stmt_names(s, out);
            continue;
        }
        match &s.kind {
            StmtKind::Do { var: v, .. } if s.line == line && v == var => {
                *found = true; // the loop's own body is not "after"
            }
            StmtKind::Do { body, .. } => {
                let before = *found;
                collect_after(body, line, var, found, out);
                if *found && !before {
                    // The target loop is nested inside this DO: the whole
                    // enclosing body (including statements textually
                    // before the target) re-executes on the next
                    // iteration, so all of it is dynamically "after".
                    collect_stmt_names(s, out);
                }
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                let before = *found;
                collect_after(then_body, line, var, found, out);
                if *found && !before {
                    // Loop sits in the THEN arm: the ELSE arm never runs
                    // in the same pass, but collecting it is harmlessly
                    // conservative.
                    for t in else_body {
                        collect_stmt_names(t, out);
                    }
                } else {
                    collect_after(else_body, line, var, found, out);
                }
            }
            StmtKind::LogicalIf(_, inner) => {
                collect_after(std::slice::from_ref(&**inner), line, var, found, out)
            }
            _ => {}
        }
    }
}

/// Inserts every identifier an expression mentions.
fn expr_names(e: &Expr, out: &mut BTreeSet<String>) {
    e.walk(&mut |x| match x {
        Expr::Var(n) | Expr::Index(n, _) => {
            out.insert(n.clone());
        }
        _ => {}
    });
}

/// Every identifier a statement mentions (reads and writes — a write-only
/// occurrence still keeps the copy-out harmless).
fn collect_stmt_names(s: &Stmt, out: &mut BTreeSet<String>) {
    match &s.kind {
        StmtKind::Assign(lv, rhs) => {
            out.insert(lv.name().to_string());
            if let LValue::Element(_, subs) = lv {
                for e in subs {
                    expr_names(e, out);
                }
            }
            expr_names(rhs, out);
        }
        StmtKind::If { cond, .. } => expr_names(cond, out),
        StmtKind::LogicalIf(cond, _) => expr_names(cond, out),
        StmtKind::Do { lo, hi, step, .. } => {
            expr_names(lo, out);
            expr_names(hi, out);
            if let Some(e) = step {
                expr_names(e, out);
            }
        }
        StmtKind::Call(_, args) => {
            for a in args {
                expr_names(a, out);
            }
        }
        StmtKind::Goto(_) | StmtKind::Return | StmtKind::Continue | StmtKind::Stop => {}
    }
    // Nested bodies of the statement are also "after" the loop.
    match &s.kind {
        StmtKind::Do { body, .. } => {
            for t in body {
                collect_stmt_names(t, out);
            }
        }
        StmtKind::If {
            then_body,
            else_body,
            ..
        } => {
            for t in then_body.iter().chain(else_body) {
                collect_stmt_names(t, out);
            }
        }
        StmtKind::LogicalIf(_, inner) => collect_stmt_names(inner, out),
        _ => {}
    }
}
