//! Lowering selected clauses to an executable [`interp::LoopPlan`].
//!
//! The interpreter's threaded executor keys its [`interp::ParallelPlan`]
//! by `(routine, index var, line)`, so routines with several `DO`
//! statements on the same index variable lower without ambiguity — the
//! plan entry fires only on the verified loop.
//!
//! One refusal keeps the differential byte-exact: REAL-typed reductions
//! (sum or product) — partial reassociation is not byte-stable in
//! floating point (the directive still carries `REDUCTION(+:s)` or
//! `REDUCTION(*:s)`; a real OpenMP compiler accepts the same
//! tolerance). INTEGER reductions of either operator are exact under
//! wrapping arithmetic and are planned.

use crate::clauses::Clauses;
use fortran::{Routine, Stmt, StmtKind, SymbolKind, SymbolTable, Ty};
use interp::LoopPlan;
use privatize::{LoopVerdict, ProvEntry};

/// Tries to lower one loop's clauses to an executable plan. Returns the
/// plan, or `None` with a human-readable note naming the refusal. Either
/// way a `lower` provenance entry is appended.
pub fn lower(
    v: &LoopVerdict,
    clauses: &Clauses,
    _routine: &Routine,
    table: &SymbolTable,
    prov: &mut Vec<ProvEntry>,
) -> (Option<LoopPlan>, Option<String>) {
    let refuse = |prov: &mut Vec<ProvEntry>, note: String| {
        prov.push(ProvEntry {
            op: "lower".to_string(),
            subject: String::new(),
            detail: note.clone(),
            result: "not_planned".to_string(),
        });
        (None, Some(note))
    };

    if let Some(s) = clauses
        .reduction_add
        .iter()
        .chain(&clauses.reduction_mul)
        .find(|s| scalar_ty(table, s) == Some(Ty::Real))
    {
        return refuse(
            prov,
            format!("REAL reduction {s}: parallel partial reassociation is not byte-stable"),
        );
    }

    // Split the name lists by kind; LASTPRIVATE arrays not already
    // FIRSTPRIVATE still need a private (zero-initialized) copy.
    let is_array = |n: &String| table.is_array(n);
    let firstprivate: Vec<String> = clauses.firstprivate.clone();
    let mut private_arrays: Vec<String> = clauses
        .private
        .iter()
        .filter(|n| is_array(n))
        .cloned()
        .collect();
    for n in clauses.lastprivate.iter().filter(|n| is_array(n)) {
        if !firstprivate.contains(n) && !private_arrays.contains(n) {
            private_arrays.push(n.clone());
        }
    }
    let copy_out: Vec<String> = clauses
        .lastprivate
        .iter()
        .filter(|n| is_array(n))
        .cloned()
        .collect();
    let mut private_scalars: Vec<String> = clauses
        .private
        .iter()
        .filter(|n| !is_array(n))
        .cloned()
        .collect();
    let scalar_copy_out: Vec<String> = clauses
        .lastprivate
        .iter()
        .filter(|n| !is_array(n))
        .cloned()
        .collect();
    for s in &scalar_copy_out {
        if !private_scalars.contains(s) {
            private_scalars.push(s.clone());
        }
    }

    prov.push(ProvEntry {
        op: "lower".to_string(),
        subject: String::new(),
        detail: format!(
            "plan key ({}, {}, {}); private arrays [{}], firstprivate [{}], copy-out [{}], \
             private scalars [{}], scalar copy-out [{}], reductions [{}]",
            v.routine,
            v.var,
            v.line,
            private_arrays.join(", "),
            firstprivate.join(", "),
            copy_out.join(", "),
            private_scalars.join(", "),
            scalar_copy_out.join(", "),
            clauses
                .reduction_add
                .iter()
                .chain(&clauses.reduction_mul)
                .cloned()
                .collect::<Vec<_>>()
                .join(", "),
        ),
        result: "planned".to_string(),
    });
    (
        Some(LoopPlan {
            private_arrays,
            firstprivate,
            private_scalars,
            copy_out,
            scalar_copy_out,
            sum_reductions: clauses.reduction_add.clone(),
            mul_reductions: clauses.reduction_mul.clone(),
        }),
        None,
    )
}

/// Declared type of a scalar (None for arrays/constants/undeclared).
fn scalar_ty(table: &SymbolTable, name: &str) -> Option<Ty> {
    match table.get(name) {
        Some(SymbolKind::Scalar(t)) => Some(*t),
        _ => None,
    }
}

/// Counts `DO` statements (at any nesting depth) using `var` as index.
pub fn count_do_with_var(stmts: &[Stmt], var: &str) -> usize {
    let mut n = 0;
    for s in stmts {
        match &s.kind {
            StmtKind::Do { var: v, body, .. } => {
                if v == var {
                    n += 1;
                }
                n += count_do_with_var(body, var);
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                n += count_do_with_var(then_body, var);
                n += count_do_with_var(else_body, var);
            }
            StmtKind::LogicalIf(_, inner) => {
                n += count_do_with_var(std::slice::from_ref(inner), var);
            }
            _ => {}
        }
    }
    n
}
