//! panogen — the parallel-code emission backend (DESIGN.md §4h).
//!
//! Consumes privatization verdicts ([`privatize::LoopVerdict`]) together
//! with the dependence sets behind them ([`dataflow::LoopAnalysis`]) and
//! turns every parallelizable loop into parallel code, two ways at once:
//!
//! * **annotated Fortran** — the program re-printed with `!$OMP PARALLEL
//!   DO` directives whose `PRIVATE` / `FIRSTPRIVATE` / `LASTPRIVATE` /
//!   `REDUCTION` clauses come from the verdict and the UE/MOD sets
//!   ([`clauses`], [`emit`]);
//! * **an executable [`interp::ParallelPlan`]** — the same clause
//!   choices lowered to the interpreter's threaded executor ([`lower`]),
//!   so a wrong clause is not a style nit but a differential failure
//!   against sequential execution.
//!
//! Loops the backend does not transform surface as structured
//! [`SkipDiag`]s rather than silently dropping: synthetic loops (no
//! source location), serial verdicts, budget-degraded verdicts, and
//! loops nested inside an already-parallelized ancestor. A transformed
//! loop whose plan could not be lowered (REAL-typed reduction) still
//! carries its directive; `planned` is false and `plan_note` says why.
//!
//! Every decision is traced: the whole pass runs under a `codegen` span,
//! each loop under `codegen:<loop-id>`, and each [`LoopTransform`]
//! carries `clause`/`lower`/`emit` provenance entries in the same
//! [`ProvEntry`] schema the verdicts use.

#![warn(missing_docs)]

pub mod clauses;
pub mod emit;
pub mod lower;

pub use clauses::Clauses;

use dataflow::LoopAnalysis;
use emit::DirectiveMap;
use fortran::{Program, ProgramSema, Routine, Stmt, StmtKind};
use interp::ParallelPlan;
use privatize::{LoopVerdict, ProvEntry};
use serde::Serialize;
use std::collections::BTreeMap;
use trace::ledger::{self, Cause, Site};

/// Why a loop was left untransformed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkipReason {
    /// The verdict has no source location (`line == 0`): the loop was
    /// synthesized by a harness, and a directive cannot anchor to it.
    Synthetic,
    /// The verdict is serial — the blockers are listed in the detail.
    Serial,
    /// The verdict came from a budget-degraded (widened) analysis.
    /// Degraded verdicts are sound, but panogen only transforms loops
    /// proved parallel at full precision.
    Degraded,
    /// The loop is nested inside a loop already being parallelized;
    /// the executor does not nest parallel regions.
    Nested,
}

impl SkipReason {
    /// Stable lower-case name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SkipReason::Synthetic => "synthetic",
            SkipReason::Serial => "serial",
            SkipReason::Degraded => "degraded",
            SkipReason::Nested => "nested",
        }
    }
}

impl Serialize for SkipReason {
    /// Serializes as the stable lower-case name, matching
    /// [`SkipDiag::render`] and the DESIGN.md §4h schema.
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

/// A structured "this loop was not transformed" diagnostic.
#[derive(Clone, Debug, Serialize)]
pub struct SkipDiag {
    /// Stable loop id (`routine/do var#sg`).
    pub id: String,
    /// Enclosing routine.
    pub routine: String,
    /// Loop index variable.
    pub var: String,
    /// 1-based source line of the DO statement (0 = synthetic).
    pub line: u32,
    /// Why the loop was skipped.
    pub reason: SkipReason,
    /// Human-readable elaboration (e.g. the blocker list).
    pub detail: String,
}

impl SkipDiag {
    /// One-line rendering for stderr reports.
    pub fn render(&self) -> String {
        format!(
            "skip {} [{}]: {}",
            self.id,
            self.reason.as_str(),
            self.detail
        )
    }
}

/// One transformed loop.
#[derive(Clone, Debug, Serialize)]
pub struct LoopTransform {
    /// Stable loop id (`routine/do var#sg`).
    pub id: String,
    /// Enclosing routine.
    pub routine: String,
    /// Loop index variable.
    pub var: String,
    /// 1-based source line of the DO statement.
    pub line: u32,
    /// Selected data-sharing clauses.
    pub clauses: Clauses,
    /// The emitted `!$OMP PARALLEL DO …` directive line.
    pub directive: String,
    /// Whether the loop was also lowered into the executable plan.
    pub planned: bool,
    /// Why lowering was refused, when `planned` is false.
    pub plan_note: Option<String>,
    /// The transformation decision trace (`clause`/`lower`/`emit` ops),
    /// in the verdict-provenance schema.
    pub provenance: Vec<ProvEntry>,
}

/// The complete result of the emission backend on one program.
pub struct Transform {
    /// Transformed loops, in (routine, source line) order.
    pub loops: Vec<LoopTransform>,
    /// Structured diagnostics for every untransformed loop verdict.
    pub skipped: Vec<SkipDiag>,
    /// The executable plan covering every `planned` loop.
    pub plan: ParallelPlan,
    /// The OpenMP-annotated source (reparses to the original AST).
    pub source: String,
}

impl Transform {
    /// The transform record for a loop, by routine and index variable
    /// (outermost first, mirroring `Analysis::verdict`).
    pub fn loop_transform(&self, routine: &str, var: &str) -> Option<&LoopTransform> {
        self.loops
            .iter()
            .find(|t| t.routine == routine && t.var == var)
    }

    /// Machine-readable report: transformed loops, skip diagnostics,
    /// planned-loop count and the annotated source. The executable plan
    /// itself is not serialized — `loops[].planned` plus the `lower`
    /// provenance entries record everything it contains.
    pub fn json(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("loops".to_string(), self.loops.to_json_value()),
            ("skipped".to_string(), self.skipped.to_json_value()),
            (
                "planned".to_string(),
                serde::Value::UInt(self.loops.iter().filter(|t| t.planned).count() as u64),
            ),
            ("source".to_string(), serde::Value::Str(self.source.clone())),
        ])
    }
}

/// Records one skip diagnostic: the trace counter, the precision-ledger
/// `lower_skip` event and the structured [`SkipDiag`] stay in lockstep
/// so every untransformed verdict is attributable in all three surfaces.
fn skip(out: &mut Transform, diag: SkipDiag) {
    trace::add("codegen_skipped", 1);
    ledger::record(Cause::LowerSkip, || {
        Site::routine(diag.routine.clone())
            .var(diag.var.clone())
            .line(diag.line)
            .detail(format!("{}: {}", diag.reason.as_str(), diag.detail))
    });
    out.skipped.push(diag);
}

/// Runs the emission backend: clause selection, plan lowering and
/// directive emission for every parallelizable loop of the analysis.
pub fn transform(
    program: &Program,
    sema: &ProgramSema,
    loops: &[LoopAnalysis],
    verdicts: &[LoopVerdict],
) -> Transform {
    let _span = trace::span("codegen");
    let by_id: BTreeMap<String, &LoopAnalysis> = loops.iter().map(|la| (la.id(), la)).collect();
    let vmap: BTreeMap<(String, u32, String), &LoopVerdict> = verdicts
        .iter()
        .filter(|v| v.line > 0)
        .map(|v| ((v.routine.clone(), v.line, v.var.clone()), v))
        .collect();

    let mut out = Transform {
        loops: Vec::new(),
        skipped: Vec::new(),
        plan: ParallelPlan::new(),
        source: String::new(),
    };
    let mut directives = DirectiveMap::new();

    // Synthetic loops can never anchor a directive.
    for v in verdicts.iter().filter(|v| v.line == 0) {
        skip(
            &mut out,
            SkipDiag {
                id: v.id.clone(),
                routine: v.routine.clone(),
                var: v.var.clone(),
                line: 0,
                reason: SkipReason::Synthetic,
                detail: "no source location (line 0): harness-synthesized loop".to_string(),
            },
        );
    }

    for r in &program.routines {
        let table = &sema.tables[&r.name];
        walk(
            &r.body,
            r,
            table,
            &vmap,
            &by_id,
            None,
            &mut out,
            &mut directives,
        );
    }

    out.source = emit::emit(program, &directives);
    trace::add("codegen_emitted_bytes", out.source.len() as u64);
    out
}

/// Recursive outermost-first selection walk over one routine's body.
/// `enclosing` carries the id of the nearest transformed ancestor loop.
#[allow(clippy::too_many_arguments)]
fn walk(
    stmts: &[Stmt],
    r: &Routine,
    table: &fortran::SymbolTable,
    vmap: &BTreeMap<(String, u32, String), &LoopVerdict>,
    by_id: &BTreeMap<String, &LoopAnalysis>,
    enclosing: Option<&str>,
    out: &mut Transform,
    directives: &mut DirectiveMap,
) {
    for s in stmts {
        match &s.kind {
            StmtKind::Do { var, body, .. } => {
                let key = (r.name.clone(), s.line, var.clone());
                let verdict = vmap.get(&key).copied();
                let mut inner_enclosing = enclosing;
                if let Some(v) = verdict {
                    if let Some(parent) = enclosing {
                        skip(
                            out,
                            SkipDiag {
                                id: v.id.clone(),
                                routine: v.routine.clone(),
                                var: v.var.clone(),
                                line: v.line,
                                reason: SkipReason::Nested,
                                detail: format!("inside parallelized loop {parent}"),
                            },
                        );
                    } else if v.degraded {
                        skip(
                            out,
                            SkipDiag {
                                id: v.id.clone(),
                                routine: v.routine.clone(),
                                var: v.var.clone(),
                                line: v.line,
                                reason: SkipReason::Degraded,
                                detail: "verdict from budget-degraded (widened) analysis"
                                    .to_string(),
                            },
                        );
                    } else if !v.parallel_after_privatization {
                        skip(
                            out,
                            SkipDiag {
                                id: v.id.clone(),
                                routine: v.routine.clone(),
                                var: v.var.clone(),
                                line: v.line,
                                reason: SkipReason::Serial,
                                detail: format!("blockers: {:?}", v.blockers),
                            },
                        );
                    } else {
                        let t = transform_loop(v, by_id, r, table, body, out);
                        directives.insert(key, t.directive.clone());
                        inner_enclosing = Some(&v.id);
                        out.loops.push(t);
                    }
                }
                walk(
                    body,
                    r,
                    table,
                    vmap,
                    by_id,
                    inner_enclosing,
                    out,
                    directives,
                );
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                walk(then_body, r, table, vmap, by_id, enclosing, out, directives);
                walk(else_body, r, table, vmap, by_id, enclosing, out, directives);
            }
            StmtKind::LogicalIf(_, inner) => {
                walk(
                    std::slice::from_ref(&**inner),
                    r,
                    table,
                    vmap,
                    by_id,
                    enclosing,
                    out,
                    directives,
                );
            }
            _ => {}
        }
    }
}

/// Transforms one chosen loop: selects clauses, tries to lower the plan,
/// renders the directive and records provenance.
fn transform_loop(
    v: &LoopVerdict,
    by_id: &BTreeMap<String, &LoopAnalysis>,
    r: &Routine,
    table: &fortran::SymbolTable,
    body: &[Stmt],
    out: &mut Transform,
) -> LoopTransform {
    let _span = trace::span_with(|| format!("codegen:{}", v.id));
    trace::add("codegen_transformed", 1);
    let mut prov = Vec::new();
    let la = by_id.get(&v.id).copied();
    let c = match la {
        Some(la) => clauses::select(v, la, r, table, body, &mut prov),
        // Without the dependence sets (should not happen — every verdict
        // has a LoopAnalysis) fall back to copy-in-everything, which is
        // always sound.
        None => Clauses {
            firstprivate: v.privatized.clone(),
            lastprivate: v.private_scalars.clone(),
            reduction_add: v.reductions.clone(),
            ..Clauses::default()
        },
    };
    let (plan, note) = lower::lower(v, &c, r, table, &mut prov);
    let planned = plan.is_some();
    if let Some(p) = plan {
        trace::add("codegen_planned", 1);
        out.plan.add(&v.routine, &v.var, v.line, p);
    } else {
        ledger::record(Cause::LowerSkip, || {
            Site::routine(v.routine.clone())
                .var(v.var.clone())
                .line(v.line)
                .detail(format!(
                    "directive emitted but plan not lowered: {}",
                    note.as_deref().unwrap_or("no lowering note")
                ))
        });
    }
    let directive = c.directive();
    prov.push(ProvEntry {
        op: "emit".to_string(),
        subject: String::new(),
        detail: format!("line {}", v.line),
        result: "annotated".to_string(),
    });
    LoopTransform {
        id: v.id.clone(),
        routine: v.routine.clone(),
        var: v.var.clone(),
        line: v.line,
        clauses: c,
        directive,
        planned,
        plan_note: note,
        provenance: prov,
    }
}
