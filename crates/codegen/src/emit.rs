//! OpenMP-annotated source emission.
//!
//! Directives ride the faithful pretty-printer ([`fortran::printer`]) as
//! comment annotations anchored to `(routine, line, var)` of the selected
//! `DO` statements. Because `!` starts a comment anywhere in the liberal
//! free form, the emitted text reparses to the original AST — the
//! emission golden and the round-trip test both pin this.

use fortran::{Annotator, Program, Routine, Stmt, StmtKind};
use std::collections::BTreeMap;

/// Directive text per annotated loop, keyed `(routine, line, var)`.
pub type DirectiveMap = BTreeMap<(String, u32, String), String>;

struct Omp<'a> {
    map: &'a DirectiveMap,
}

impl Omp<'_> {
    fn key(&self, r: &Routine, s: &Stmt) -> Option<(String, u32, String)> {
        if let StmtKind::Do { var, .. } = &s.kind {
            let key = (r.name.clone(), s.line, var.clone());
            if self.map.contains_key(&key) {
                return Some(key);
            }
        }
        None
    }
}

impl Annotator for Omp<'_> {
    fn before(&mut self, r: &Routine, s: &Stmt) -> Vec<String> {
        match self.key(r, s) {
            Some(k) => vec![self.map[&k].clone()],
            None => Vec::new(),
        }
    }

    fn after(&mut self, r: &Routine, s: &Stmt) -> Vec<String> {
        match self.key(r, s) {
            Some(_) => vec!["!$OMP END PARALLEL DO".to_string()],
            None => Vec::new(),
        }
    }
}

/// Prints the program with the given directives attached.
pub fn emit(program: &Program, directives: &DirectiveMap) -> String {
    fortran::print_program_annotated(program, &mut Omp { map: directives })
}
