//! panotrace — structured tracing for the analysis pipeline.
//!
//! The same discipline as the `failpoints` shim: when no collector is
//! installed anywhere in the process, every instrumentation site —
//! [`span`], [`span_with`], [`add`], [`event`] — is a single relaxed
//! atomic load and an immediate return. No allocation, no formatting,
//! no thread-local access on the disabled path; closures passed to
//! [`span_with`] and [`event`] are never called.
//!
//! When a [`Collector`] *is* installed on the current thread, sites
//! record a tree of spans with monotonic microsecond timestamps, typed
//! counters (GAR list lengths, predicate-term counts, cache hits,
//! widenings, …) attached to the innermost open span, and point-in-time
//! events. Two renderings:
//!
//! * [`Collector::tree`] — a hierarchical [`SpanNode`] forest with
//!   timestamps rebased to the first span, the structure embedded in
//!   daemon responses (`"trace":true`) and asserted byte-identical
//!   across worker counts and cache settings by the determinism suite;
//! * [`chrome_trace`] — Chrome trace-event JSON (one *process* track
//!   per labelled collector, e.g. per daemon worker), loadable in
//!   Perfetto or `chrome://tracing`. [`Registry`] accumulates labelled
//!   collectors across threads behind a poison-safe lock for exactly
//!   this sink.
//!
//! Collectors are per-thread and installation is explicit, so one
//! traced request in a daemon never sees spans from a neighbouring
//! worker. The crate is std-only: it renders its own JSON.

#![warn(missing_docs)]

pub mod ledger;

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Number of collectors installed process-wide. The disabled fast path
/// is one relaxed load of this counter.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CURRENT: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

const NO_PARENT: usize = usize::MAX;

/// One recorded span (internal arena representation).
#[derive(Clone, Debug)]
struct SpanRec {
    name: String,
    parent: usize,
    start_us: u64,
    dur_us: u64,
    counters: Vec<(String, u64)>,
    events: Vec<SpanEvent>,
}

/// A point-in-time event attached to a span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Microseconds since the collector's (rebased) origin.
    pub at_us: u64,
    /// Event name, e.g. `cache_replay`.
    pub name: String,
    /// Free-form detail, e.g. the routine that was replayed.
    pub detail: String,
}

/// One node of the rendered span tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span name, e.g. `dataflow` or `sum_loop:interf/i`.
    pub name: String,
    /// Start, microseconds since the first span of the collector.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Typed counters accumulated while this span was innermost, in
    /// first-touch order (deterministic for a deterministic run).
    pub counters: Vec<(String, u64)>,
    /// Events recorded while this span was innermost.
    pub events: Vec<SpanEvent>,
    /// Child spans in start order.
    pub children: Vec<SpanNode>,
}

/// A per-thread span collector. Create one, [`install`] it, run the
/// instrumented code, then [`uninstall`] to get it back.
#[derive(Clone, Debug)]
pub struct Collector {
    epoch: Instant,
    spans: Vec<SpanRec>,
    stack: Vec<usize>,
    /// Counters recorded with no span open.
    counters: Vec<(String, u64)>,
    /// Events recorded with no span open.
    events: Vec<SpanEvent>,
}

impl Collector {
    /// A collector whose timestamps are relative to its creation.
    pub fn new() -> Self {
        Self::with_epoch(Instant::now())
    }

    /// A collector measuring against a shared epoch — how daemon
    /// workers align their tracks on one [`Registry`] timeline.
    pub fn with_epoch(epoch: Instant) -> Self {
        Collector {
            epoch,
            spans: Vec::new(),
            stack: Vec::new(),
            counters: Vec::new(),
            events: Vec::new(),
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn open(&mut self, name: String) -> usize {
        let parent = self.stack.last().copied().unwrap_or(NO_PARENT);
        let idx = self.spans.len();
        self.spans.push(SpanRec {
            name,
            parent,
            start_us: self.now_us(),
            dur_us: 0,
            counters: Vec::new(),
            events: Vec::new(),
        });
        self.stack.push(idx);
        idx
    }

    fn close(&mut self, idx: usize) {
        let end = self.now_us();
        if let Some(rec) = self.spans.get_mut(idx) {
            rec.dur_us = end.saturating_sub(rec.start_us);
        }
        // Normal RAII drops close the top of the stack; an out-of-order
        // drop (unwinding, mem::forget games) removes the span wherever
        // it is so siblings keep nesting correctly.
        match self.stack.iter().rposition(|&i| i == idx) {
            Some(pos) if pos == self.stack.len() - 1 => {
                self.stack.pop();
            }
            Some(pos) => {
                self.stack.remove(pos);
            }
            None => {}
        }
    }

    fn bump(&mut self, name: &str, delta: u64) {
        let counters = match self.stack.last() {
            Some(&idx) => &mut self.spans[idx].counters,
            None => &mut self.counters,
        };
        match counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += delta,
            None => counters.push((name.to_string(), delta)),
        }
    }

    fn note(&mut self, name: &str, detail: String) {
        let at_us = self.now_us();
        let ev = SpanEvent {
            at_us,
            name: name.to_string(),
            detail,
        };
        match self.stack.last() {
            Some(&idx) => self.spans[idx].events.push(ev),
            None => self.events.push(ev),
        }
    }

    /// True when no span was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.events.is_empty()
    }

    /// The recorded span forest, timestamps rebased so the earliest
    /// span starts at 0 (daemon uptime must not leak into responses).
    pub fn tree(&self) -> Vec<SpanNode> {
        let base = self.spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let mut nodes: Vec<SpanNode> = self
            .spans
            .iter()
            .map(|s| SpanNode {
                name: s.name.clone(),
                start_us: s.start_us - base,
                dur_us: s.dur_us,
                counters: s.counters.clone(),
                events: s
                    .events
                    .iter()
                    .map(|e| SpanEvent {
                        at_us: e.at_us.saturating_sub(base),
                        ..e.clone()
                    })
                    .collect(),
                children: Vec::new(),
            })
            .collect();
        // Children were pushed in start order; reattach bottom-up so
        // each parent receives its children already ordered.
        let mut roots = Vec::new();
        for idx in (0..self.spans.len()).rev() {
            let node = nodes.pop().expect("arena length");
            let parent = self.spans[idx].parent;
            if parent == NO_PARENT {
                roots.push(node);
            } else {
                nodes[parent].children.insert(0, node);
            }
        }
        roots.reverse();
        roots
    }

    /// Counters recorded outside any span (rarely used; instrumented
    /// code normally runs under a phase span).
    pub fn top_level_counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// The instant this collector's timestamps are measured against.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Appends another (finished) collector's recordings to this one,
    /// re-anchoring timestamps onto this collector's epoch and keeping
    /// span parenting intact. This is how a daemon worker folds a
    /// per-request collector — swapped in so the flight recorder gets
    /// an isolated span tree — back into its own `--trace-out` track:
    /// the spliced spans appear exactly where they would have been
    /// recorded directly. `other`'s open-span stack is ignored; splice
    /// finished collectors only.
    pub fn splice(&mut self, other: &Collector) {
        // `other` was created after `self` in the intended use; if not,
        // saturate — a 0 shift only misplaces, never corrupts, spans.
        let shift = other
            .epoch
            .checked_duration_since(self.epoch)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let offset = self.spans.len();
        for rec in &other.spans {
            let mut rec = rec.clone();
            rec.start_us += shift;
            for ev in &mut rec.events {
                ev.at_us += shift;
            }
            if rec.parent != NO_PARENT {
                rec.parent += offset;
            }
            self.spans.push(rec);
        }
        for (name, delta) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => *v += delta,
                None => self.counters.push((name.clone(), *delta)),
            }
        }
        for ev in &other.events {
            self.events.push(SpanEvent {
                at_us: ev.at_us + shift,
                ..ev.clone()
            });
        }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

/// Is any collector installed anywhere in the process? One relaxed
/// atomic load; the per-thread check happens only at recording sites.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Installs a collector on the current thread, replacing (and
/// discarding) any previous one.
pub fn install(c: Collector) {
    CURRENT.with(|cur| {
        let mut cur = cur.borrow_mut();
        if cur.is_none() {
            ACTIVE.fetch_add(1, Ordering::Relaxed);
        }
        *cur = Some(c);
    });
}

/// Removes and returns the current thread's collector, if any.
pub fn uninstall() -> Option<Collector> {
    CURRENT.with(|cur| {
        let taken = cur.borrow_mut().take();
        if taken.is_some() {
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
        taken
    })
}

/// An installed-collector scope: uninstalls on drop, even when the
/// traced code panics (daemon workers catch panics and must not leak a
/// stale collector into the next request).
pub struct CollectorScope {
    _priv: (),
}

impl CollectorScope {
    /// Installs `c` and returns the scope guard.
    pub fn install(c: Collector) -> Self {
        install(c);
        CollectorScope { _priv: () }
    }

    /// Ends the scope, returning the collector.
    pub fn finish(self) -> Option<Collector> {
        std::mem::forget(self);
        uninstall()
    }
}

impl Drop for CollectorScope {
    fn drop(&mut self) {
        let _ = uninstall();
    }
}

/// An open span; closes itself on drop. Obtained from [`span`] /
/// [`span_with`]; inert (a two-word no-op) when tracing is disabled.
pub struct Span {
    idx: usize,
    active: bool,
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.active {
            CURRENT.with(|cur| {
                if let Some(c) = cur.borrow_mut().as_mut() {
                    c.close(self.idx);
                }
            });
        }
    }
}

const INERT: Span = Span {
    idx: 0,
    active: false,
};

/// Opens a span named `name` under the innermost open span.
#[inline]
pub fn span(name: &str) -> Span {
    if !enabled() {
        return INERT;
    }
    span_slow(|| name.to_string())
}

/// Opens a span with a lazily built name — the closure never runs when
/// tracing is disabled, so hot paths pay no formatting cost.
#[inline]
pub fn span_with(name: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return INERT;
    }
    span_slow(name)
}

fn span_slow(name: impl FnOnce() -> String) -> Span {
    CURRENT.with(|cur| match cur.borrow_mut().as_mut() {
        Some(c) => {
            let name = name();
            Span {
                idx: c.open(name),
                active: true,
            }
        }
        None => INERT,
    })
}

/// Adds `delta` to the typed counter `name` on the innermost open span.
#[inline]
pub fn add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    CURRENT.with(|cur| {
        if let Some(c) = cur.borrow_mut().as_mut() {
            c.bump(name, delta);
        }
    });
}

/// Records a point-in-time event on the innermost open span. The
/// detail closure never runs when tracing is disabled.
#[inline]
pub fn event(name: &str, detail: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    CURRENT.with(|cur| {
        if let Some(c) = cur.borrow_mut().as_mut() {
            let d = detail();
            c.note(name, d);
        }
    });
}

/// A process-wide accumulator of labelled collectors — the daemon's
/// `--trace-out` sink. Each label becomes one Chrome process track;
/// collectors created with [`Registry::epoch`] share its timeline.
pub struct Registry {
    epoch: Instant,
    tracks: Mutex<Vec<(String, Collector)>>,
}

impl Registry {
    /// A registry whose timeline starts now.
    pub fn new() -> Self {
        Registry {
            epoch: Instant::now(),
            tracks: Mutex::new(Vec::new()),
        }
    }

    /// The shared epoch for worker collectors.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(String, Collector)>> {
        // A worker panic between adopt() calls must not wedge the
        // shutdown dump: recover from poisoning like the PR 3 locks.
        self.tracks.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Files a finished collector under `label` (e.g. `worker-3`).
    pub fn adopt(&self, label: &str, c: Collector) {
        if c.is_empty() {
            return;
        }
        self.lock().push((label.to_string(), c));
    }

    /// Renders everything adopted so far as Chrome trace-event JSON,
    /// one process track per distinct label.
    pub fn chrome_trace(&self) -> String {
        let tracks = self.lock();
        let borrowed: Vec<(String, &Collector)> =
            tracks.iter().map(|(label, c)| (label.clone(), c)).collect();
        chrome_trace(&borrowed)
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders labelled collectors as a Chrome trace-event JSON document
/// (`{"traceEvents":[...]}`): complete (`"ph":"X"`) events for spans
/// with counters in `args`, instant (`"ph":"i"`) events for
/// [`SpanEvent`]s, and one `process_name` metadata record per distinct
/// label. Loadable in Perfetto and `chrome://tracing`.
pub fn chrome_trace(tracks: &[(String, &Collector)]) -> String {
    let mut pids: Vec<&str> = Vec::new();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let emit = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    for (label, collector) in tracks {
        let pid = match pids.iter().position(|l| l == label) {
            Some(p) => p,
            None => {
                pids.push(label);
                let meta = format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                     \"args\":{{\"name\":{}}}}}",
                    pids.len() - 1,
                    json_str(label)
                );
                emit(meta, &mut out, &mut first);
                pids.len() - 1
            }
        };
        for rec in &collector.spans {
            let mut args = String::from("{");
            for (i, (k, v)) in rec.counters.iter().enumerate() {
                if i > 0 {
                    args.push(',');
                }
                args.push_str(&format!("{}:{}", json_str(k), v));
            }
            args.push('}');
            emit(
                format!(
                    "{{\"name\":{},\"cat\":\"panorama\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":{},\"tid\":0,\"args\":{}}}",
                    json_str(&rec.name),
                    rec.start_us,
                    rec.dur_us,
                    pid,
                    args
                ),
                &mut out,
                &mut first,
            );
            for ev in &rec.events {
                emit(
                    format!(
                        "{{\"name\":{},\"cat\":\"panorama\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\
                         \"pid\":{},\"tid\":0,\"args\":{{\"detail\":{}}}}}",
                        json_str(&ev.name),
                        ev.at_us,
                        pid,
                        json_str(&ev.detail)
                    ),
                    &mut out,
                    &mut first,
                );
            }
        }
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string escaping (the crate is std-only by design).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `ACTIVE` is process-global, so tests that assert on `enabled()`
    /// must not overlap with tests that install collectors.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn with_collector(f: impl FnOnce()) -> Collector {
        let scope = CollectorScope::install(Collector::new());
        f();
        scope.finish().expect("collector installed")
    }

    #[test]
    fn disabled_sites_are_inert() {
        let _g = serial();
        assert!(!enabled());
        let _s = span("never");
        span_with(|| panic!("name closure must not run"));
        add("n", 1);
        event("e", || panic!("detail closure must not run"));
        assert!(uninstall().is_none());
    }

    #[test]
    fn spans_nest_and_counters_attach() {
        let _g = serial();
        let c = with_collector(|| {
            let _outer = span("outer");
            add("ticks", 2);
            {
                let _inner = span_with(|| format!("inner:{}", 1));
                add("ticks", 3);
                event("hit", || "x".to_string());
            }
            add("ticks", 1);
        });
        let tree = c.tree();
        assert_eq!(tree.len(), 1);
        let outer = &tree[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.counters, vec![("ticks".to_string(), 3)]);
        assert_eq!(outer.children.len(), 1);
        let inner = &outer.children[0];
        assert_eq!(inner.name, "inner:1");
        assert_eq!(inner.counters, vec![("ticks".to_string(), 3)]);
        assert_eq!(inner.events.len(), 1);
        assert_eq!(inner.events[0].name, "hit");
    }

    #[test]
    fn tree_rebases_to_first_span() {
        let _g = serial();
        let c = with_collector(|| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _s = span("late");
        });
        assert_eq!(c.tree()[0].start_us, 0);
    }

    #[test]
    fn siblings_stay_ordered() {
        let _g = serial();
        let c = with_collector(|| {
            let _root = span("root");
            for name in ["a", "b", "c"] {
                let _s = span(name);
            }
        });
        let tree = c.tree();
        let names: Vec<&str> = tree[0].children.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let _g = serial();
        let c = with_collector(|| {
            let _s = span("phase \"q\"");
            add("gar_pieces", 7);
            event("cache_replay", || "routine x\n".to_string());
        });
        let json = chrome_trace(&[("worker-0".to_string(), &c)]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"phase \\\"q\\\"\""));
        assert!(json.contains("\"gar_pieces\":7"));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn registry_groups_by_label() {
        let _g = serial();
        let reg = Registry::new();
        let mk = |name: &str| {
            let scope = CollectorScope::install(Collector::with_epoch(reg.epoch()));
            let _s = span(name);
            drop(_s);
            scope.finish().unwrap()
        };
        reg.adopt("worker-0", mk("a"));
        reg.adopt("worker-1", mk("b"));
        reg.adopt("worker-0", mk("c"));
        reg.adopt("worker-0", Collector::new()); // empty: dropped
        let json = reg.chrome_trace();
        assert_eq!(json.matches("process_name").count(), 2);
        assert!(json.contains("\"pid\":0"));
        assert!(json.contains("\"pid\":1"));
    }

    #[test]
    fn splice_preserves_structure_and_shifts_time() {
        let _g = serial();
        let mut worker = with_collector(|| {
            let _s = span("before");
        });
        std::thread::sleep(std::time::Duration::from_millis(2));
        let request = with_collector(|| {
            let _outer = span("analyze");
            let _inner = span("dataflow");
            add("steps", 4);
            event("cache_replay", || "extr".to_string());
        });
        let before = request.spans[0].start_us;
        worker.splice(&request);
        let tree = worker.tree();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree[0].name, "before");
        assert_eq!(tree[1].name, "analyze");
        assert_eq!(tree[1].children.len(), 1);
        assert_eq!(tree[1].children[0].name, "dataflow");
        assert_eq!(tree[1].children[0].counters, vec![("steps".to_string(), 4)]);
        // The request collector's epoch postdates the worker's by ≥2ms,
        // so its spans land later on the worker timeline.
        assert!(worker.spans[1].start_us >= before + 2_000);
    }

    #[test]
    fn splice_merges_top_level_counters() {
        let _g = serial();
        let mut a = with_collector(|| add("n", 1));
        let b = with_collector(|| {
            add("n", 2);
            add("m", 5);
        });
        a.splice(&b);
        assert_eq!(
            a.top_level_counters(),
            &[("n".to_string(), 3), ("m".to_string(), 5)]
        );
    }

    #[test]
    fn adversarial_span_names_escape_cleanly() {
        let _g = serial();
        let names = [
            "quote \" in name",
            "back\\slash\\path",
            "non-ascii: héllo 名前 🙂",
            "ctrl\u{7}\u{1f}chars",
            "tab\tand\nnewline\rret",
        ];
        let c = with_collector(|| {
            for n in &names {
                let _s = span(n);
                event(n, || format!("detail {n}"));
            }
        });
        let json = chrome_trace(&[("w \"q\"\\".to_string(), &c)]);
        // No raw control bytes may survive into the document; every
        // quote and backslash inside a string must be escaped.
        for b in json.bytes() {
            assert!(b >= 0x20, "raw control byte {b:#x} leaked into JSON");
        }
        assert!(json.contains("quote \\\" in name"));
        assert!(json.contains("back\\\\slash\\\\path"));
        assert!(json.contains("héllo 名前 🙂"));
        assert!(json.contains("\\u0007"));
        assert!(json.contains("\\t"));
        assert!(json.contains("\\n"));
        assert!(json.contains("\\r"));
    }

    #[test]
    fn scope_uninstalls_on_panic() {
        let _g = serial();
        let result = std::panic::catch_unwind(|| {
            let _scope = CollectorScope::install(Collector::new());
            let _s = span("doomed");
            panic!("boom");
        });
        assert!(result.is_err());
        assert!(!enabled());
        assert!(uninstall().is_none());
    }
}
