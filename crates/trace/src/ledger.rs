//! panoledger — precision-loss accounting for the analysis pipeline.
//!
//! Every place the analyzer deliberately answers ⊤ instead of thinking
//! harder — fuel widenings, alias degradations at call sites, exhausted
//! value-range/content budgets, refused control flow, summary-cache
//! bypasses, condensed goto-cycles, codegen lowering refusals — records
//! one typed [`PrecisionEvent`] here. The ledger is the ground truth
//! behind `panorama --precision-report`, the daemon's
//! `panorama_precision_*` counters and the flight recorder: a verdict
//! that went serial because of a degradation, rather than a proven
//! dependence, must be attributable to the event that caused it.
//!
//! Same zero-cost discipline as the span collector (and the
//! `failpoints` shim): with no ledger installed anywhere in the
//! process, [`record`] is a single relaxed atomic load and an immediate
//! return — the site closure never runs, so hot paths pay no
//! formatting or allocation. Ledgers are per-thread; one request in a
//! daemon never sees a neighbouring worker's events.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of ledgers installed process-wide; the disabled fast path is
/// one relaxed load of this counter.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CURRENT: RefCell<Option<Ledger>> = const { RefCell::new(None) };
}

/// Hard cap on events per ledger: a pathological input must not turn
/// the accounting layer into a memory leak. Overflow is counted, not
/// silently dropped.
pub const MAX_EVENTS: usize = 16_384;

/// Why precision was lost at a site. Each variant names one
/// conservative approximation the pipeline takes; the `as_str` strings
/// are stable schema (DESIGN.md §4j) shared by the JSON report, the
/// Prometheus `cause` label and the flight recorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cause {
    /// `dataflow::fuel` exhaustion widened a summary, segment or loop
    /// to an unknown over-approximation (steps, state caps, deadline).
    FuelWiden,
    /// `SUM_call` could not prove the call alias-clean: some arrays got
    /// unknown MOD/UE or lost DE, or a COMMON mismatch degraded a block.
    AliasDegrade,
    /// The value-range pass ran out of budget inside a routine; range
    /// facts from that routine are incomplete.
    RangeBudget,
    /// The array-content pass ran out of budget on a loop body; its
    /// UE₍i₎ refutations and full-definition facts were discarded.
    ContentBudget,
    /// The array-content pass refused a loop body outright (CALL, GOTO,
    /// RETURN or STOP in the body — unmodelled control flow).
    ContentRefused,
    /// An offered routine-summary cache was bypassed (propagation trace
    /// requested, or resource limits constrain results), so this run
    /// re-derived summaries a warm run would have replayed.
    CacheBypass,
    /// A goto-cycle was condensed and summarized conservatively: every
    /// array touched inside became unknown MOD/UE with no DE.
    GotoCondense,
    /// The emission backend declined to transform or lower a loop
    /// (synthetic, serial, degraded, nested, or an unlowerable clause).
    LowerSkip,
}

impl Cause {
    /// Every cause, in stable report order.
    pub const ALL: [Cause; 8] = [
        Cause::FuelWiden,
        Cause::AliasDegrade,
        Cause::RangeBudget,
        Cause::ContentBudget,
        Cause::ContentRefused,
        Cause::CacheBypass,
        Cause::GotoCondense,
        Cause::LowerSkip,
    ];

    /// Stable lower-snake-case name used across every surface.
    pub fn as_str(self) -> &'static str {
        match self {
            Cause::FuelWiden => "fuel_widen",
            Cause::AliasDegrade => "alias_degrade",
            Cause::RangeBudget => "range_budget",
            Cause::ContentBudget => "content_budget",
            Cause::ContentRefused => "content_refused",
            Cause::CacheBypass => "cache_bypass",
            Cause::GotoCondense => "goto_condense",
            Cause::LowerSkip => "lower_skip",
        }
    }

    /// Inverse of [`Cause::as_str`].
    pub fn parse(s: &str) -> Option<Cause> {
        Cause::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// Causes that can flip a loop verdict from parallel to serial (or
    /// discard a refutation that would have flipped it back): the
    /// degradation class the suite-wide invariant tests account for.
    /// `CacheBypass`, `GotoCondense` and `LowerSkip` lose time or
    /// emission coverage, not verdict precision the verdicts don't
    /// already record as a proven dependence.
    pub fn degrades_verdicts(self) -> bool {
        matches!(
            self,
            Cause::FuelWiden
                | Cause::AliasDegrade
                | Cause::RangeBudget
                | Cause::ContentBudget
                | Cause::ContentRefused
        )
    }
}

impl std::fmt::Display for Cause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where precision was lost: the site fields of a [`PrecisionEvent`],
/// built lazily by the closure passed to [`record`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Site {
    /// Enclosing routine (empty when the loss is not routine-scoped,
    /// e.g. a whole-run cache bypass).
    pub routine: String,
    /// Affected variable or loop index (empty when not var-specific).
    pub var: String,
    /// 1-based source line (0 when unknown).
    pub line: u32,
    /// Free-form elaboration, e.g. the callee or the widened arrays.
    pub detail: String,
}

impl Site {
    /// A site anchored to `routine`; chain the other fields.
    pub fn routine(routine: impl Into<String>) -> Site {
        Site {
            routine: routine.into(),
            ..Site::default()
        }
    }

    /// Sets the affected variable.
    pub fn var(mut self, var: impl Into<String>) -> Site {
        self.var = var.into();
        self
    }

    /// Sets the source line.
    pub fn line(mut self, line: u32) -> Site {
        self.line = line;
        self
    }

    /// Sets the detail text.
    pub fn detail(mut self, detail: impl Into<String>) -> Site {
        self.detail = detail.into();
        self
    }
}

/// One recorded precision loss: a cause at a site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrecisionEvent {
    /// What kind of approximation was taken.
    pub cause: Cause,
    /// Enclosing routine (may be empty).
    pub routine: String,
    /// Affected variable or loop index (may be empty).
    pub var: String,
    /// 1-based source line (0 = unknown).
    pub line: u32,
    /// Free-form elaboration.
    pub detail: String,
}

/// A per-thread event ledger. Install one ([`LedgerScope`]), run the
/// pipeline, take it back out.
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    events: Vec<PrecisionEvent>,
    dropped: u64,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    fn push(&mut self, ev: PrecisionEvent) {
        if self.events.len() >= MAX_EVENTS {
            self.dropped += 1;
        } else {
            self.events.push(ev);
        }
    }

    /// The recorded events, in record order.
    pub fn events(&self) -> &[PrecisionEvent] {
        &self.events
    }

    /// Consumes the ledger into its event list.
    pub fn into_events(self) -> Vec<PrecisionEvent> {
        self.events
    }

    /// Events dropped past [`MAX_EVENTS`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Is any ledger installed anywhere in the process? One relaxed load;
/// the per-thread check happens only at recording sites.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Installs a ledger on the current thread, replacing (and discarding)
/// any previous one.
pub fn install(l: Ledger) {
    CURRENT.with(|cur| {
        let mut cur = cur.borrow_mut();
        if cur.is_none() {
            ACTIVE.fetch_add(1, Ordering::Relaxed);
        }
        *cur = Some(l);
    });
}

/// Removes and returns the current thread's ledger, if any.
pub fn uninstall() -> Option<Ledger> {
    CURRENT.with(|cur| {
        let taken = cur.borrow_mut().take();
        if taken.is_some() {
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
        taken
    })
}

/// An installed-ledger scope: uninstalls on drop, even when the
/// accounted code panics (daemon workers catch panics and must not
/// leak a stale ledger into the next request).
pub struct LedgerScope {
    _priv: (),
}

impl LedgerScope {
    /// Installs a fresh ledger and returns the scope guard.
    pub fn install() -> Self {
        install(Ledger::new());
        LedgerScope { _priv: () }
    }

    /// Ends the scope, returning the ledger.
    pub fn finish(self) -> Option<Ledger> {
        std::mem::forget(self);
        uninstall()
    }
}

impl Drop for LedgerScope {
    fn drop(&mut self) {
        let _ = uninstall();
    }
}

/// Records one precision loss on the current thread's ledger. The site
/// closure never runs when no ledger is installed — the disabled path
/// is one relaxed atomic load.
#[inline]
pub fn record(cause: Cause, site: impl FnOnce() -> Site) {
    if !enabled() {
        return;
    }
    CURRENT.with(|cur| {
        if let Some(l) = cur.borrow_mut().as_mut() {
            let s = site();
            l.push(PrecisionEvent {
                cause,
                routine: s.routine,
                var: s.var,
                line: s.line,
                detail: s.detail,
            });
        }
    });
}

/// The current thread's event count — a cursor for [`events_since`].
/// `0` when no ledger is installed.
pub fn mark() -> usize {
    if !enabled() {
        return 0;
    }
    CURRENT.with(|cur| cur.borrow().as_ref().map_or(0, |l| l.events.len()))
}

/// The current thread's overflow-drop count (see [`MAX_EVENTS`]); `0`
/// when no ledger is installed. Snapshot alongside [`mark`] to compute
/// the drops attributable to a nested extent.
pub fn dropped_count() -> u64 {
    if !enabled() {
        return 0;
    }
    CURRENT.with(|cur| cur.borrow().as_ref().map_or(0, |l| l.dropped))
}

/// Clones the events recorded after `mark` without uninstalling the
/// ledger — how a nested consumer (the driver building a report inside
/// a daemon whose worker owns the scope) reads its own slice.
pub fn events_since(mark: usize) -> Vec<PrecisionEvent> {
    if !enabled() {
        return Vec::new();
    }
    CURRENT.with(|cur| {
        cur.borrow()
            .as_ref()
            .map_or(Vec::new(), |l| l.events.get(mark..).unwrap_or(&[]).to_vec())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, PoisonError};

    /// `ACTIVE` is process-global, so tests that assert on `enabled()`
    /// must not overlap with tests that install ledgers.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_record_is_inert() {
        let _g = serial();
        assert!(!enabled());
        record(Cause::FuelWiden, || panic!("site closure must not run"));
        assert_eq!(mark(), 0);
        assert!(events_since(0).is_empty());
        assert!(uninstall().is_none());
    }

    #[test]
    fn records_events_in_order() {
        let _g = serial();
        let scope = LedgerScope::install();
        record(Cause::FuelWiden, || {
            Site::routine("interf").var("x").line(7).detail("segment")
        });
        let m = mark();
        record(Cause::AliasDegrade, || {
            Site::routine("main").detail("main -> extr")
        });
        let since = events_since(m);
        let ledger = scope.finish().expect("ledger installed");
        assert_eq!(ledger.events().len(), 2);
        assert_eq!(ledger.events()[0].cause, Cause::FuelWiden);
        assert_eq!(ledger.events()[0].routine, "interf");
        assert_eq!(ledger.events()[0].var, "x");
        assert_eq!(ledger.events()[0].line, 7);
        assert_eq!(since.len(), 1);
        assert_eq!(since[0].cause, Cause::AliasDegrade);
        assert!(!enabled());
    }

    #[test]
    fn scope_uninstalls_on_panic() {
        let _g = serial();
        let result = std::panic::catch_unwind(|| {
            let _scope = LedgerScope::install();
            record(Cause::GotoCondense, || Site::routine("doomed"));
            panic!("boom");
        });
        assert!(result.is_err());
        assert!(!enabled());
        assert!(uninstall().is_none());
    }

    #[test]
    fn overflow_is_counted_not_grown() {
        let _g = serial();
        let scope = LedgerScope::install();
        for i in 0..(MAX_EVENTS + 5) {
            record(Cause::LowerSkip, || Site::routine("r").line(i as u32));
        }
        let ledger = scope.finish().unwrap();
        assert_eq!(ledger.events().len(), MAX_EVENTS);
        assert_eq!(ledger.dropped(), 5);
    }

    #[test]
    fn cause_names_round_trip() {
        for c in Cause::ALL {
            assert_eq!(Cause::parse(c.as_str()), Some(c));
        }
        assert_eq!(Cause::parse("nope"), None);
    }
}
