//! Dynamic race oracle: cross-validates static parallelization verdicts.
//!
//! The static pipeline (dataflow → privatize) claims, per loop, either
//! "parallelizable (after privatization)" or "must stay serial, because
//! of these blockers". Both claims are checkable against a ground truth:
//! run the loop *sequentially* under the interpreter's shadow-memory
//! tracer ([`interp::Machine::run_traced`]) and observe which elements
//! are actually touched by conflicting iterations.
//!
//! Two invariants fall out, and [`validate`] enforces / measures them:
//!
//! * **Soundness** — a loop judged parallel after privatization must
//!   show *zero* dynamic loop-carried conflicts on its shared arrays,
//!   and no privatized array may have an upward-exposed read paired
//!   with a write from another iteration (a per-iteration private copy
//!   would leave that read uninitialized). A violation here is a bug in
//!   the analyzer, never an acceptable imprecision.
//! * **Precision** — a loop judged serial purely for array reasons whose
//!   arrays are dynamically conflict-free on the exercised input is a
//!   *precision gap*: the conservative answer was safe but lossy. Gaps
//!   are reported as a metric, not an error.
//!
//! When the oracle confirms a negative verdict it produces
//! [`privatize::Diagnostic`] witnesses — array, element, the two
//! conflicting iterations and their source lines — which
//! [`attach_diagnostics`] copies onto the corresponding verdicts for the
//! CLI to render.

#![warn(missing_docs)]

use fortran::{Program, ProgramSema};
use interp::{LoopTrace, Machine, RaceClass, RaceWitness};
use privatize::{Blocker, DepClass, Diagnostic, LoopVerdict};
use serde::Serialize;
use std::collections::BTreeMap;

/// How a static verdict compares against the dynamic trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum Outcome {
    /// Static and dynamic agree: a parallel verdict with a race-free
    /// trace, or a serial verdict whose blockers the trace confirms (or
    /// that rests on evidence — scalars, premature exits — the array
    /// oracle cannot contradict).
    Confirmed,
    /// Static said parallel, the trace shows a race on a shared array
    /// (or a privatization that changes semantics). Analyzer bug.
    SoundnessViolation,
    /// Static said serial for array reasons only, but every blamed array
    /// ran conflict-free. Conservative, not wrong.
    PrecisionGap,
    /// The loop never executed on this input (zero iterations, dead
    /// code, runtime error, or an ambiguous `(routine, var)` target), so
    /// the oracle has no evidence either way.
    NotExercised,
}

/// Oracle result for one loop verdict.
#[derive(Clone, Debug, Serialize)]
pub struct LoopComparison {
    /// Stable loop id (matches [`LoopVerdict::id`]).
    pub id: String,
    /// Enclosing routine.
    pub routine: String,
    /// Loop index variable.
    pub var: String,
    /// Iterations the traced run executed (across all loop entries).
    pub iterations: u64,
    /// Static: parallel with no transform.
    pub static_parallel_as_is: bool,
    /// Static: parallel after privatization.
    pub static_parallel_after_privatization: bool,
    /// Observed conflict classes per array (empty vec never occurs).
    pub dynamic_conflicts: BTreeMap<String, Vec<DepClass>>,
    /// The comparison outcome.
    pub outcome: Outcome,
    /// Concrete witnesses: for violations, the offending accesses; for
    /// confirmed serial verdicts, evidence for the blockers.
    pub diagnostics: Vec<Diagnostic>,
    /// Free-form context (why NotExercised, which array violated, …).
    pub note: String,
    /// The traced run exhausted the interpreter's operation budget:
    /// the oracle ran out of resources, the program did not fail.
    pub budget_exceeded: bool,
}

/// Aggregate oracle report over a set of loop verdicts.
#[derive(Clone, Debug, Default, Serialize)]
pub struct OracleReport {
    /// Per-loop comparisons, in verdict order.
    pub loops: Vec<LoopComparison>,
    /// Loops where static and dynamic agree.
    pub confirmed: usize,
    /// Soundness violations (must be zero for a correct analyzer).
    pub soundness_violations: usize,
    /// Serial verdicts dynamically shown conflict-free (imprecision).
    pub precision_gaps: usize,
    /// Loops the input did not exercise.
    pub not_exercised: usize,
    /// Loops whose traced run ran out of interpreter budget (a subset
    /// of `not_exercised`).
    pub budget_exceeded: usize,
}

impl OracleReport {
    /// True iff no loop violated the soundness invariant.
    pub fn sound(&self) -> bool {
        self.soundness_violations == 0
    }

    /// The comparisons that violated soundness.
    pub fn violations(&self) -> impl Iterator<Item = &LoopComparison> {
        self.loops
            .iter()
            .filter(|c| c.outcome == Outcome::SoundnessViolation)
    }
}

/// Converts a dynamic race class to the static dependence class.
pub fn dep_class(class: RaceClass) -> DepClass {
    match class {
        RaceClass::Flow => DepClass::Flow,
        RaceClass::Anti => DepClass::Anti,
        RaceClass::Output => DepClass::Output,
    }
}

/// Converts a trace witness into a verdict diagnostic.
pub fn witness_to_diagnostic(w: &RaceWitness) -> Diagnostic {
    Diagnostic {
        array: w.array.clone(),
        class: dep_class(w.class),
        element: w.element.clone(),
        earlier_iter: w.earlier_iter,
        later_iter: w.later_iter,
        earlier_line: w.earlier_line,
        later_line: w.later_line,
    }
}

/// Runs the program sequentially with shadow-memory tracing on the
/// verdict's loop.
pub fn trace_loop(
    program: &Program,
    sema: &ProgramSema,
    verdict: &LoopVerdict,
) -> Result<LoopTrace, interp::RuntimeError> {
    trace_loop_budgeted(program, sema, verdict, interp::DEFAULT_OP_BUDGET)
}

/// [`trace_loop`] with an explicit interpreter operation budget.
pub fn trace_loop_budgeted(
    program: &Program,
    sema: &ProgramSema,
    verdict: &LoopVerdict,
    budget: u64,
) -> Result<LoopTrace, interp::RuntimeError> {
    let machine = Machine::with_budget(program, sema, budget);
    // Target the DO statement by source line when the verdict has one,
    // so loops sharing an index variable don't pollute each other's
    // traces.
    let line = (verdict.line != 0).then_some(verdict.line);
    let (_, _, trace) = machine.run_traced_at(&verdict.routine, &verdict.var, line)?;
    Ok(trace)
}

/// Compares one static verdict against its dynamic trace. Pure: callers
/// that already hold a trace (tests, batch drivers) can reuse it.
pub fn compare_loop(verdict: &LoopVerdict, trace: &LoopTrace) -> LoopComparison {
    let mut cmp = LoopComparison {
        id: verdict.id.clone(),
        routine: verdict.routine.clone(),
        var: verdict.var.clone(),
        iterations: trace.iterations,
        static_parallel_as_is: verdict.parallel_as_is,
        static_parallel_after_privatization: verdict.parallel_after_privatization,
        dynamic_conflicts: trace
            .arrays
            .iter()
            .filter(|(_, r)| r.has_conflict())
            .map(|(name, r)| {
                (
                    name.clone(),
                    r.classes().into_iter().map(dep_class).collect(),
                )
            })
            .collect(),
        outcome: Outcome::Confirmed,
        diagnostics: Vec::new(),
        note: String::new(),
        budget_exceeded: false,
    };

    if trace.iterations == 0 {
        cmp.outcome = Outcome::NotExercised;
        cmp.note = "loop did not execute on this input".into();
        return cmp;
    }

    if verdict.parallel_after_privatization {
        // Soundness: shared arrays must be conflict-free; privatized
        // arrays must not read values another iteration wrote (or would
        // have needed copy-in).
        for (name, races) in &trace.arrays {
            let privatized = verdict.privatized.contains(name);
            if privatized {
                if races.ue_write_conflict {
                    let w = races
                        .witness(RaceClass::Flow)
                        .or_else(|| races.witness(RaceClass::Anti));
                    if let Some(w) = w {
                        cmp.diagnostics.push(witness_to_diagnostic(w));
                    }
                    cmp.note = format!(
                        "privatized array `{name}` has an upward-exposed read \
                         conflicting with another iteration's write"
                    );
                    cmp.outcome = Outcome::SoundnessViolation;
                }
            } else if races.has_conflict() {
                for class in races.classes() {
                    if let Some(w) = races.witness(class) {
                        cmp.diagnostics.push(witness_to_diagnostic(w));
                    }
                }
                cmp.note = format!("shared array `{name}` has loop-carried conflicts");
                cmp.outcome = Outcome::SoundnessViolation;
            }
        }
        return cmp;
    }

    // Serial verdict: gather dynamic evidence for each array blocker.
    let mut array_blockers = 0usize;
    let mut confirmed_blockers = 0usize;
    for b in &verdict.blockers {
        let Some(arr) = b.array() else { continue };
        array_blockers += 1;
        let Some(races) = trace.array(arr) else {
            continue;
        };
        let confirmed = match b {
            Blocker::ArrayFlowDep(_) => races.flow_elems > 0 || races.ue_write_conflict,
            Blocker::ArrayStorageDep(_) => races.has_conflict(),
            _ => false,
        };
        if confirmed {
            confirmed_blockers += 1;
            for class in races.classes() {
                if let Some(w) = races.witness(class) {
                    cmp.diagnostics.push(witness_to_diagnostic(w));
                }
            }
        }
    }

    let non_array_blockers = verdict.blockers.len() - array_blockers;
    if array_blockers > 0 && confirmed_blockers == 0 && non_array_blockers == 0 {
        cmp.outcome = Outcome::PrecisionGap;
        cmp.note = "no blamed array showed a dynamic conflict on this input".into();
    }
    cmp
}

/// Runs the oracle over a set of loop verdicts for one program.
///
/// The tracer targets loops by `(routine, var, source line)`. Verdicts
/// that still collide on that triple (only possible for synthetic,
/// line-less loops) are skipped ([`Outcome::NotExercised`]): a merged
/// trace could not be attributed to one verdict.
pub fn validate(program: &Program, sema: &ProgramSema, verdicts: &[LoopVerdict]) -> OracleReport {
    validate_with_budget(program, sema, verdicts, interp::DEFAULT_OP_BUDGET)
}

/// [`validate`] with an explicit interpreter operation budget. A traced
/// run that exhausts it yields [`Outcome::NotExercised`] flagged
/// `budget_exceeded` — a resource verdict, never a soundness one.
pub fn validate_with_budget(
    program: &Program,
    sema: &ProgramSema,
    verdicts: &[LoopVerdict],
    budget: u64,
) -> OracleReport {
    let mut key_count: BTreeMap<(&str, &str, u32), usize> = BTreeMap::new();
    for v in verdicts {
        *key_count
            .entry((v.routine.as_str(), v.var.as_str(), v.line))
            .or_default() += 1;
    }

    let mut report = OracleReport::default();
    for v in verdicts {
        let cmp = if key_count[&(v.routine.as_str(), v.var.as_str(), v.line)] > 1 {
            LoopComparison {
                id: v.id.clone(),
                routine: v.routine.clone(),
                var: v.var.clone(),
                iterations: 0,
                static_parallel_as_is: v.parallel_as_is,
                static_parallel_after_privatization: v.parallel_after_privatization,
                dynamic_conflicts: BTreeMap::new(),
                outcome: Outcome::NotExercised,
                diagnostics: Vec::new(),
                note: "several loops share this (routine, index-variable, line) triple".into(),
                budget_exceeded: false,
            }
        } else {
            match trace_loop_budgeted(program, sema, v, budget) {
                Ok(trace) => compare_loop(v, &trace),
                Err(e) => LoopComparison {
                    id: v.id.clone(),
                    routine: v.routine.clone(),
                    var: v.var.clone(),
                    iterations: 0,
                    static_parallel_as_is: v.parallel_as_is,
                    static_parallel_after_privatization: v.parallel_after_privatization,
                    dynamic_conflicts: BTreeMap::new(),
                    outcome: Outcome::NotExercised,
                    diagnostics: Vec::new(),
                    note: if e.is_budget_exceeded() {
                        "oracle: budget_exceeded".to_string()
                    } else {
                        format!("traced run failed: {e}")
                    },
                    budget_exceeded: e.is_budget_exceeded(),
                },
            }
        };
        match cmp.outcome {
            Outcome::Confirmed => report.confirmed += 1,
            Outcome::SoundnessViolation => report.soundness_violations += 1,
            Outcome::PrecisionGap => report.precision_gaps += 1,
            Outcome::NotExercised => report.not_exercised += 1,
        }
        if cmp.budget_exceeded {
            report.budget_exceeded += 1;
        }
        report.loops.push(cmp);
    }
    report
}

/// Copies the oracle's witnesses onto the matching verdicts (by loop
/// id), so negative verdicts carry concrete evidence.
pub fn attach_diagnostics(verdicts: &mut [LoopVerdict], report: &OracleReport) {
    for cmp in &report.loops {
        if cmp.diagnostics.is_empty() {
            continue;
        }
        if let Some(v) = verdicts.iter_mut().find(|v| v.id == cmp.id) {
            v.diagnostics = cmp.diagnostics.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::{Analyzer, Options};
    use privatize::judge_all;

    fn analyze(src: &str) -> (Program, ProgramSema, Vec<LoopVerdict>) {
        let program = fortran::parse_program(src).unwrap();
        let sema = fortran::analyze(&program).unwrap();
        let h = hsg::build_hsg(&program).unwrap();
        let mut az = Analyzer::new(&program, &sema, &h, Options::default());
        az.run();
        let verdicts = judge_all(&az.loops);
        (program, sema, verdicts)
    }

    fn report(src: &str) -> (OracleReport, Vec<LoopVerdict>) {
        let (program, sema, verdicts) = analyze(src);
        let r = validate(&program, &sema, &verdicts);
        (r, verdicts)
    }

    fn find<'a>(r: &'a OracleReport, routine: &str, var: &str) -> &'a LoopComparison {
        r.loops
            .iter()
            .find(|c| c.routine == routine && c.var == var)
            .unwrap_or_else(|| panic!("loop {routine}/{var} missing from report"))
    }

    #[test]
    fn parallel_verdict_confirmed_race_free() {
        let (r, _) = report(
            "
      PROGRAM t
      REAL a(50), b(50)
      INTEGER i
      DO i = 1, 50
        b(i) = 1.5
        a(i) = b(i)
      ENDDO
      END
",
        );
        let c = find(&r, "t", "i");
        assert_eq!(c.outcome, Outcome::Confirmed);
        assert!(c.dynamic_conflicts.is_empty());
        assert!(r.sound());
    }

    #[test]
    fn recurrence_confirmed_with_flow_witness() {
        let (r, _) = report(
            "
      PROGRAM t
      REAL a(50)
      INTEGER i
      a(1) = 1.0
      DO i = 2, 50
        a(i) = a(i-1)
      ENDDO
      END
",
        );
        let c = find(&r, "t", "i");
        assert_eq!(c.outcome, Outcome::Confirmed);
        assert_eq!(c.dynamic_conflicts["a"], vec![DepClass::Flow]);
        let d = c
            .diagnostics
            .iter()
            .find(|d| d.class == DepClass::Flow)
            .expect("flow witness");
        assert_eq!(d.array, "a");
        assert_eq!(d.later_iter, d.earlier_iter + 1, "consecutive iterations");
    }

    #[test]
    fn same_var_loops_disambiguated_by_line() {
        // Both loops use `i`; the tracer must tell them apart by the DO
        // statement's source line, not merge (or refuse) them.
        let (r, _) = report(
            "
      PROGRAM t
      REAL a(50), b(50)
      INTEGER i
      DO i = 1, 50
        b(i) = -1.0
      ENDDO
      DO i = 2, 50
        IF (b(i) .GT. 0.0) a(i) = a(i-1)
      ENDDO
      END
",
        );
        assert_eq!(r.loops.len(), 2);
        let first = r.loops.iter().find(|c| c.static_parallel_as_is).unwrap();
        assert_eq!(first.outcome, Outcome::Confirmed, "{first:?}");
        assert_eq!(first.iterations, 50);
        // b(i) is always negative, so a(i) = a(i-1) never executes; the
        // static analysis cannot know that and keeps its flow blocker.
        let second = r.loops.iter().find(|c| !c.static_parallel_as_is).unwrap();
        assert_eq!(second.outcome, Outcome::PrecisionGap, "{second:?}");
        assert_eq!(second.iterations, 49);
    }

    #[test]
    fn precision_gap_detected() {
        let (r, _) = report(
            "
      PROGRAM t
      REAL a(50), b(50)
      INTEGER i, k
      DO k = 1, 50
        b(k) = -1.0
      ENDDO
      DO i = 2, 50
        IF (b(i) .GT. 0.0) a(i) = a(i-1)
      ENDDO
      END
",
        );
        let c = find(&r, "t", "i");
        assert_eq!(c.outcome, Outcome::PrecisionGap, "{c:?}");
        assert!(!c.static_parallel_after_privatization);
        assert!(c.dynamic_conflicts.is_empty());
    }

    #[test]
    fn privatization_rescue_validated() {
        let (r, v) = report(
            "
      PROGRAM t
      REAL w(10), a(60)
      INTEGER i, k
      DO i = 1, 60
        DO k = 1, 10
          w(k) = 1.0
        ENDDO
        DO k = 1, 10
          a(i) = a(i) + w(k)
        ENDDO
      ENDDO
      END
",
        );
        let c = find(&r, "t", "i");
        let lv = v.iter().find(|x| x.routine == "t" && x.var == "i").unwrap();
        assert!(lv.parallel_after_privatization);
        assert_eq!(lv.privatized, vec!["w".to_string()]);
        // w has dynamic anti/output conflicts, but privatization removes
        // them — the oracle must NOT call this a violation.
        assert_eq!(c.outcome, Outcome::Confirmed, "{c:?}");
        assert!(c.dynamic_conflicts.contains_key("w"));
        assert!(r.sound());
    }

    #[test]
    fn attach_diagnostics_to_verdicts() {
        let (program, sema, mut verdicts) = analyze(
            "
      PROGRAM t
      REAL a(50)
      INTEGER i
      a(1) = 1.0
      DO i = 2, 50
        a(i) = a(i-1)
      ENDDO
      END
",
        );
        let r = validate(&program, &sema, &verdicts);
        attach_diagnostics(&mut verdicts, &r);
        let v = verdicts
            .iter()
            .find(|v| v.routine == "t" && v.var == "i")
            .unwrap();
        assert!(!v.diagnostics.is_empty());
        let rendered = v.diagnostics[0].render();
        assert!(rendered.contains("a("), "{rendered}");
        assert!(rendered.contains("flow"), "{rendered}");
    }
}
