//! The oracle's own resource governance: a traced run that exhausts the
//! interpreter's operation budget must surface as a *resource* verdict
//! (`budget_exceeded`, `NotExercised`), never as a program error or a
//! soundness violation.

use dataflow::{Analyzer, Options};
use fortran::{Program, ProgramSema};
use privatize::{judge_all, LoopVerdict};
use raceoracle::{validate, validate_with_budget, Outcome};

const SRC: &str = "
      PROGRAM t
      REAL a(64)
      INTEGER i
      DO i = 1, 64
        a(i) = i * 2.0
      ENDDO
      END
";

fn analyze(src: &str) -> (Program, ProgramSema, Vec<LoopVerdict>) {
    let program = fortran::parse_program(src).unwrap();
    let sema = fortran::analyze(&program).unwrap();
    let h = hsg::build_hsg(&program).unwrap();
    let mut az = Analyzer::new(&program, &sema, &h, Options::default());
    az.run();
    let verdicts = judge_all(&az.loops);
    (program, sema, verdicts)
}

#[test]
fn starved_oracle_reports_budget_exceeded() {
    let (program, sema, verdicts) = analyze(SRC);
    assert!(!verdicts.is_empty());
    let report = validate_with_budget(&program, &sema, &verdicts, 3);
    let c = &report.loops[0];
    assert_eq!(c.outcome, Outcome::NotExercised, "{c:?}");
    assert!(c.budget_exceeded, "{c:?}");
    assert_eq!(c.note, "oracle: budget_exceeded");
    assert_eq!(report.budget_exceeded, report.loops.len());
    assert_eq!(report.not_exercised, report.loops.len());
    // Starvation is not a soundness problem.
    assert!(report.sound());
}

#[test]
fn default_budget_is_ample() {
    let (program, sema, verdicts) = analyze(SRC);
    let report = validate(&program, &sema, &verdicts);
    assert_eq!(report.budget_exceeded, 0);
    assert!(report.loops.iter().all(|c| !c.budget_exceeded));
    assert_eq!(report.confirmed, report.loops.len(), "{report:?}");
}

#[test]
fn budget_flag_serializes_into_the_report() {
    use serde::Serialize;
    let (program, sema, verdicts) = analyze(SRC);
    let report = validate_with_budget(&program, &sema, &verdicts, 3);
    let json = serde_json::to_string(&report.to_json_value()).unwrap();
    assert!(json.contains("\"budget_exceeded\""), "{json}");
    assert!(json.contains("oracle: budget_exceeded"), "{json}");
}
