//! Differential content corpus.
//!
//! Two layers of cross-validation for the array-content pass:
//!
//! 1. **Paired kernels, one per lint code** (P010/P011/P012): the dirty
//!    kernel carries the lint, its clean twin does not, and any loop
//!    the pass declares parallel on either is checked against the
//!    dynamic race oracle — a soundness violation is a hard failure.
//!
//! 2. **A generated fuzz corpus** of 100 guard/region programs: with
//!    `--content` on vs. off, verdicts may only flip serial → parallel,
//!    never parallel → serial, and every parallel claim (either
//!    setting) must survive the oracle.

use alias::{lint_program, LintCode};
use dataflow::{Analyzer, Options};
use fortran::{Program, ProgramSema};
use privatize::{judge_all, LoopVerdict};
use raceoracle::validate;

fn analyze(src: &str, opts: Options) -> (Program, ProgramSema, Vec<LoopVerdict>) {
    let program = fortran::parse_program(src).unwrap();
    let sema = fortran::analyze(&program).unwrap();
    let h = hsg::build_hsg(&program).unwrap();
    let mut az = Analyzer::new(&program, &sema, &h, opts);
    az.run();
    let verdicts = judge_all(&az.loops);
    (program, sema, verdicts)
}

fn content_opts() -> Options {
    Options {
        content: true,
        ..Options::default()
    }
}

/// Lint codes of a source under full content linting.
fn codes_of(src: &str) -> Vec<&'static str> {
    let program = fortran::parse_program(src).unwrap();
    let sema = fortran::analyze(&program).unwrap();
    lint_program(&program, &sema, true, true, true)
        .iter()
        .map(|l| l.code.code())
        .collect()
}

/// Oracle-checks the parallel claims of one source under `opts`;
/// returns the count of loops claimed parallel.
fn oracle_sound(tag: &str, src: &str, opts: Options) -> usize {
    let (program, sema, verdicts) = analyze(src, opts);
    let report = validate(&program, &sema, &verdicts);
    assert_eq!(
        report.soundness_violations, 0,
        "{tag}: race oracle violations: {:?}",
        report.loops
    );
    verdicts
        .iter()
        .filter(|v| v.parallel_as_is || v.parallel_after_privatization)
        .count()
}

struct Pair {
    code: LintCode,
    dirty: &'static str,
    clean: &'static str,
}

fn pairs() -> Vec<Pair> {
    vec![
        // P010: u is read without ever being written; the twin
        // initializes it first.
        Pair {
            code: LintCode::ReadBeforeWrite,
            dirty: "
      PROGRAM t
      INTEGER u(10), b(10), i
      DO i = 1, 10
        b(i) = u(i)
      ENDDO
      END
",
            clean: "
      PROGRAM t
      INTEGER u(10), b(10), i
      DO i = 1, 10
        u(i) = i
      ENDDO
      DO i = 1, 10
        b(i) = u(i)
      ENDDO
      END
",
        },
        // P011: the first store to t(1) dies unread; the twin reads it
        // between the stores.
        Pair {
            code: LintCode::RedundantStore,
            dirty: "
      PROGRAM t
      INTEGER t(10), s
      t(1) = 1
      t(1) = 2
      s = t(1)
      END
",
            clean: "
      PROGRAM t
      INTEGER t(10), s
      t(1) = 1
      s = t(1)
      t(1) = 2
      s = s + t(1)
      END
",
        },
        // P012: the zeroing loop is fully overwritten unread; the twin
        // reads v between the loops.
        Pair {
            code: LintCode::DeadInitializationLoop,
            dirty: "
      PROGRAM t
      INTEGER v(10), s, i
      DO i = 1, 10
        v(i) = 0
      ENDDO
      DO i = 1, 10
        v(i) = i + 1
      ENDDO
      s = v(5)
      END
",
            clean: "
      PROGRAM t
      INTEGER v(10), s, i
      DO i = 1, 10
        v(i) = 0
      ENDDO
      s = v(5)
      DO i = 1, 10
        v(i) = i + 1
      ENDDO
      s = s + v(5)
      END
",
        },
    ]
}

#[test]
fn lint_pairs_fire_on_dirty_only_and_stay_sound() {
    for p in pairs() {
        let code = p.code.code();
        let dirty = codes_of(p.dirty);
        assert!(
            dirty.contains(&code),
            "{code}: dirty kernel missing its lint, got {dirty:?}"
        );
        let clean = codes_of(p.clean);
        assert!(
            !clean.contains(&code),
            "{code}: clean twin fires the lint: {clean:?}"
        );
        // Both twins must execute soundly under the content verdicts.
        oracle_sound(code, p.dirty, content_opts());
        oracle_sound(code, p.clean, content_opts());
    }
}

/// Deterministic LCG so the corpus is identical on every run.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self, n: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % n
    }
}

/// Generates one fuzz program: an outer i loop over a work array `w`
/// with a randomly chosen write shape (full / guarded / partial /
/// none), read shape (same guard / different guard / unguarded /
/// none), and optional init loop and trailing read, exercising the
/// region/guard space the content pass reasons about.
fn gen_program(rng: &mut Lcg) -> String {
    let wsize = [8, 10, 16][rng.next(3) as usize];
    let n = [20, 50][rng.next(2) as usize];
    let write = rng.next(4); // 0 full, 1 guarded, 2 partial, 3 none
    let read = rng.next(4); // 0 same guard, 1 other guard, 2 unguarded, 3 none
    let init = rng.next(3) == 0;
    let live_after = rng.next(2) == 0;
    let mut s = String::new();
    s.push_str("      PROGRAM fz\n");
    s.push_str(&format!(
        "      REAL w({wsize}), c({wsize}), b({wsize}), r({n})\n"
    ));
    s.push_str("      REAL acc\n      INTEGER i, k\n");
    s.push_str(&format!("      DO k = 1, {wsize}\n"));
    s.push_str("        c(k) = float(k - 3)\n        b(k) = float(k)\n");
    s.push_str("      ENDDO\n");
    if init {
        s.push_str(&format!("      DO k = 1, {wsize}\n"));
        s.push_str("        w(k) = 0.0\n      ENDDO\n");
    }
    s.push_str(&format!("      DO i = 1, {n}\n"));
    match write {
        0 => {
            s.push_str(&format!("        DO k = 1, {wsize}\n"));
            s.push_str("          w(k) = b(k) + float(i)\n        ENDDO\n");
        }
        1 => {
            s.push_str(&format!("        DO k = 1, {wsize}\n"));
            s.push_str("          IF (c(k) .GT. 0.0) THEN\n");
            s.push_str("            w(k) = b(k) + float(i)\n");
            s.push_str("          ENDIF\n        ENDDO\n");
        }
        2 => {
            s.push_str(&format!("        DO k = 2, {wsize}\n"));
            s.push_str("          w(k) = b(k) + float(i)\n        ENDDO\n");
        }
        _ => {}
    }
    s.push_str("        acc = 0.0\n");
    match read {
        0 => {
            s.push_str(&format!("        DO k = 1, {wsize}\n"));
            s.push_str("          IF (c(k) .GT. 0.0) THEN\n");
            s.push_str("            acc = acc + w(k)\n");
            s.push_str("          ENDIF\n        ENDDO\n");
        }
        1 => {
            s.push_str(&format!("        DO k = 1, {wsize}\n"));
            s.push_str("          IF (c(k) .LT. 0.0) THEN\n");
            s.push_str("            acc = acc + w(k)\n");
            s.push_str("          ENDIF\n        ENDDO\n");
        }
        2 => {
            s.push_str(&format!("        DO k = 1, {wsize}\n"));
            s.push_str("          acc = acc + w(k)\n        ENDDO\n");
        }
        _ => {}
    }
    s.push_str("        r(i) = acc + float(i)\n");
    s.push_str("      ENDDO\n");
    if live_after {
        s.push_str("      r(1) = r(1) + w(2)\n");
    }
    s.push_str("      END\n");
    s
}

#[test]
fn fuzz_corpus_flips_only_serial_to_parallel() {
    let mut rng = Lcg(0x5eed_c0de);
    let mut flips = 0;
    for case in 0..100 {
        let src = gen_program(&mut rng);
        let (_, _, off) = analyze(&src, Options::default());
        let (_, _, on) = analyze(&src, content_opts());
        assert_eq!(off.len(), on.len(), "case {case}: verdict count changed");
        for (voff, von) in off.iter().zip(&on) {
            assert_eq!(voff.id, von.id, "case {case}: verdict order changed");
            let poff = voff.parallel_as_is || voff.parallel_after_privatization;
            let pon = von.parallel_as_is || von.parallel_after_privatization;
            assert!(
                !poff || pon,
                "case {case}: {} flipped parallel -> serial under --content\n{src}",
                voff.id
            );
            if !poff && pon {
                flips += 1;
            }
        }
        // Every parallel claim, both settings, survives the oracle.
        oracle_sound(&format!("case {case} (off)"), &src, Options::default());
        oracle_sound(&format!("case {case} (on)"), &src, content_opts());
    }
    // The corpus is built so the guarded write/read shape appears many
    // times; the pass must actually fire on some of them.
    assert!(flips > 0, "content pass never flipped a fuzz case");
}
