//! Differential alias corpus: paired kernels, one per aliasing route
//! (same actual twice, COMMON-visible actual, EQUIVALENCE overlay),
//! each cross-validated against the dynamic race oracle. A soundness
//! violation is a hard failure; a precision gap is only a metric.
//!
//! Every degraded kernel must also carry a P00x lint witness naming the
//! conservative assumption, and its clean twin must not.

use alias::{lint_program, LintCode};
use dataflow::{Analyzer, Options};
use fortran::{Program, ProgramSema};
use privatize::{judge_all, DepClass, LoopVerdict};
use raceoracle::{validate, LoopComparison, OracleReport, Outcome};

fn analyze(src: &str, opts: Options) -> (Program, ProgramSema, Vec<LoopVerdict>) {
    let program = fortran::parse_program(src).unwrap();
    let sema = fortran::analyze(&program).unwrap();
    let h = hsg::build_hsg(&program).unwrap();
    let mut az = Analyzer::new(&program, &sema, &h, opts);
    az.run();
    let verdicts = judge_all(&az.loops);
    (program, sema, verdicts)
}

struct Run {
    report: OracleReport,
    verdicts: Vec<LoopVerdict>,
    lints: Vec<alias::Lint>,
}

fn oracle(src: &str, opts: Options) -> Run {
    let interprocedural = opts.interprocedural;
    let value_range = opts.value_range;
    let content = opts.content;
    let (program, sema, verdicts) = analyze(src, opts);
    let report = validate(&program, &sema, &verdicts);
    let lints = lint_program(&program, &sema, interprocedural, value_range, content);
    Run {
        report,
        verdicts,
        lints,
    }
}

fn the_loop<'a>(r: &'a OracleReport, routine: &str, var: &str) -> &'a LoopComparison {
    r.loops
        .iter()
        .find(|c| c.routine == routine && c.var == var)
        .unwrap_or_else(|| panic!("loop {routine}/{var} missing"))
}

fn target<'a>(v: &'a [LoopVerdict], routine: &str, var: &str) -> &'a LoopVerdict {
    v.iter()
        .find(|v| v.routine == routine && v.var == var)
        .unwrap()
}

fn has_code(run: &Run, code: LintCode) -> bool {
    run.lints.iter().any(|l| l.code == code)
}

// ------------------------------------------------- same actual twice

#[test]
fn same_actual_racy() {
    // CALL step(a, a, i): the callee's write of x(i) feeds the next
    // iteration's read of y(i-1) through the shared actual.
    let run = oracle(
        "
      PROGRAM t
      REAL a(200), r(200)
      INTEGER i
      a(1) = 0.0
      DO i = 2, 100
        CALL step(a, a, i)
        r(i) = a(i)
      ENDDO
      END

      SUBROUTINE step(x, y, i)
      REAL x(200), y(200)
      INTEGER i
      x(i) = y(i-1) + 1.0
      END
",
        Options::default(),
    );
    let v = target(&run.verdicts, "t", "i");
    assert!(!v.parallel_after_privatization, "static must say serial");
    let c = the_loop(&run.report, "t", "i");
    assert!(c.dynamic_conflicts["a"].contains(&DepClass::Flow), "{c:?}");
    assert_eq!(c.outcome, Outcome::Confirmed, "{c:?}");
    assert!(run.report.sound());
    assert!(has_code(&run, LintCode::AliasedActuals), "{:?}", run.lints);
}

#[test]
fn same_actual_clean() {
    // Distinct actuals: the recurrence disappears and the loop is
    // parallel. No alias lint may fire.
    let run = oracle(
        "
      PROGRAM t
      REAL a(200), b(200), r(200)
      INTEGER i
      b(1) = 0.0
      DO i = 2, 100
        CALL step(a, b, i)
        r(i) = a(i)
      ENDDO
      END

      SUBROUTINE step(x, y, i)
      REAL x(200), y(200)
      INTEGER i
      x(i) = y(i-1) + 1.0
      END
",
        Options::default(),
    );
    let v = target(&run.verdicts, "t", "i");
    assert!(v.parallel_after_privatization, "{v:?}");
    let c = the_loop(&run.report, "t", "i");
    assert!(c.dynamic_conflicts.is_empty(), "{c:?}");
    assert_eq!(c.outcome, Outcome::Confirmed, "{c:?}");
    assert!(run.report.sound());
    assert!(!has_code(&run, LintCode::AliasedActuals), "{:?}", run.lints);
}

// ------------------------------------------- COMMON-visible actual

#[test]
fn common_visible_actual_racy() {
    // The actual `c` is COMMON storage the callee also sees by name:
    // the write through the formal x races with the read through the
    // COMMON view one iteration later.
    let run = oracle(
        "
      PROGRAM t
      REAL c(200), r(200)
      COMMON /shared/ c
      INTEGER i
      c(1) = 0.0
      DO i = 2, 100
        CALL bump(c, i)
        r(i) = c(i)
      ENDDO
      END

      SUBROUTINE bump(x, i)
      REAL c(200), x(200)
      COMMON /shared/ c
      INTEGER i
      x(i) = c(i-1) + 1.0
      END
",
        Options::default(),
    );
    let v = target(&run.verdicts, "t", "i");
    assert!(!v.parallel_after_privatization, "static must say serial");
    let c = the_loop(&run.report, "t", "i");
    assert!(c.dynamic_conflicts["c"].contains(&DepClass::Flow), "{c:?}");
    assert_eq!(c.outcome, Outcome::Confirmed, "{c:?}");
    assert!(run.report.sound());
    assert!(has_code(&run, LintCode::AliasedActuals), "{:?}", run.lints);
}

#[test]
fn common_visible_actual_clean() {
    // The caller still owns COMMON /shared/, but the callee neither
    // declares nor reaches it — passing a local array is alias-free.
    let run = oracle(
        "
      PROGRAM t
      REAL c(200), b(200), r(200)
      COMMON /shared/ c
      INTEGER i
      DO i = 2, 100
        CALL bump(b, i)
        r(i) = b(i)
      ENDDO
      END

      SUBROUTINE bump(x, i)
      REAL x(200)
      INTEGER i
      x(i) = float(i)
      END
",
        Options::default(),
    );
    let v = target(&run.verdicts, "t", "i");
    assert!(v.parallel_after_privatization, "{v:?}");
    let c = the_loop(&run.report, "t", "i");
    assert!(c.dynamic_conflicts.is_empty(), "{c:?}");
    assert_eq!(c.outcome, Outcome::Confirmed, "{c:?}");
    assert!(run.report.sound());
    assert!(!has_code(&run, LintCode::AliasedActuals), "{:?}", run.lints);
}

// --------------------------------------------- EQUIVALENCE overlay

#[test]
fn equivalence_overlay_racy() {
    // v(1) overlays w(1): privatizing w would starve the read of v(1).
    // The interpreter does not model storage association, so the
    // dynamic side cannot witness this race — the static verdict must
    // be conservative on its own, and the comparison may only come out
    // as a precision gap (metric), never a soundness violation (hard).
    let run = oracle(
        "
      PROGRAM t
      REAL w(10), v(10), r(100)
      EQUIVALENCE (w(1), v(1))
      INTEGER i, k
      DO i = 1, 100
        DO k = 1, 10
          w(k) = float(i + k)
        ENDDO
        r(i) = v(1)
      ENDDO
      END
",
        Options::default(),
    );
    let v = target(&run.verdicts, "t", "i");
    assert!(
        !v.parallel_after_privatization,
        "overlaid storage must stay serial: {v:?}"
    );
    assert!(!v.privatized.contains(&"w".to_string()), "{v:?}");
    let c = the_loop(&run.report, "t", "i");
    assert_ne!(c.outcome, Outcome::SoundnessViolation, "{c:?}");
    assert!(run.report.sound());
    assert!(
        has_code(&run, LintCode::EquivalenceOverlay),
        "{:?}",
        run.lints
    );
}

#[test]
fn equivalence_overlay_clean() {
    // Identical code without the EQUIVALENCE: w privatizes and the
    // loop parallelizes, confirmed by the oracle.
    let run = oracle(
        "
      PROGRAM t
      REAL w(10), v(10), r(100)
      INTEGER i, k
      DO i = 1, 100
        DO k = 1, 10
          w(k) = float(i + k)
        ENDDO
        r(i) = v(1)
      ENDDO
      END
",
        Options::default(),
    );
    let v = target(&run.verdicts, "t", "i");
    assert!(v.parallel_after_privatization, "{v:?}");
    assert!(v.privatized.contains(&"w".to_string()), "{v:?}");
    let c = the_loop(&run.report, "t", "i");
    assert_eq!(c.outcome, Outcome::Confirmed, "{c:?}");
    assert!(run.report.sound());
    assert!(
        !has_code(&run, LintCode::EquivalenceOverlay),
        "{:?}",
        run.lints
    );
}

// ------------------------------------------------ generated corpus

use proptest::prelude::*;

/// Builds one program with an alias-carrying call site.
///
/// * `mode` 0: `CALL s(a, a, i)` — must-aliased actuals;
/// * `mode` 1: COMMON-visible actual — the callee reads the block the
///   actual lives in;
/// * `mode` 2: distinct local actuals — alias-free control.
///
/// `d1`/`d2` skew the written and read subscripts, so generated sites
/// cover no-dependence, in-iteration and cross-iteration overlap.
fn gen_program(mode: u8, d1: i64, d2: i64) -> String {
    let body = format!("x(i+{d1}) = y(i-{d2}) + 1.0");
    let (call, decls, ybind) = match mode {
        0 => ("CALL s(a, a, i)", "", "y"),
        1 => ("CALL s(b, i)", "      COMMON /g/ b\n", "b"),
        _ => ("CALL s(a, b, i)", "", "y"),
    };
    let (params, ydecl) = if mode == 1 {
        ("x, i", "      REAL b(300)\n      COMMON /g/ b\n")
    } else {
        ("x, y, i", "      REAL y(300)\n")
    };
    format!(
        "
      PROGRAM t
      REAL a(300), b(300), r(200)
{decls}      INTEGER i
      DO i = 5, 100
        {call}
        r(i) = a(1) + b(1)
      ENDDO
      END

      SUBROUTINE s({params})
      REAL x(300)
{ydecl}      INTEGER i
      {}
      END
",
        body.replace('y', ybind)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the aliasing route, subscript skew and technique
    /// setting, the static verdict is never contradicted by the
    /// dynamic trace.
    #[test]
    fn generated_alias_callsites_never_unsound(
        mode in 0u8..3,
        d1 in 0i64..3,
        d2 in 0i64..4,
        t3 in 0u8..2,
    ) {
        let src = gen_program(mode, d1, d2);
        let opts = Options {
            interprocedural: t3 == 1,
            ..Options::default()
        };
        let (program, sema, verdicts) = analyze(&src, opts);
        let report = validate(&program, &sema, &verdicts);
        prop_assert!(
            report.sound(),
            "mode={mode} d1={d1} d2={d2} t3={t3}:\n{src}\n{:?}",
            report.violations().collect::<Vec<_>>()
        );
    }
}
