//! Paired known-racy / known-clean kernels, one pair per dependence
//! class, each asserting (a) the race class the oracle detects and
//! (b) agreement between the static verdict and the dynamic trace.

use dataflow::{Analyzer, Options};
use fortran::{Program, ProgramSema};
use privatize::{judge_all, DepClass, LoopVerdict};
use raceoracle::{validate, LoopComparison, OracleReport, Outcome};

fn analyze(src: &str) -> (Program, ProgramSema, Vec<LoopVerdict>) {
    let program = fortran::parse_program(src).unwrap();
    let sema = fortran::analyze(&program).unwrap();
    let h = hsg::build_hsg(&program).unwrap();
    let mut az = Analyzer::new(&program, &sema, &h, Options::default());
    az.run();
    let verdicts = judge_all(&az.loops);
    (program, sema, verdicts)
}

fn oracle(src: &str) -> (OracleReport, Vec<LoopVerdict>) {
    let (program, sema, verdicts) = analyze(src);
    let r = validate(&program, &sema, &verdicts);
    (r, verdicts)
}

fn the_loop<'a>(r: &'a OracleReport, routine: &str, var: &str) -> &'a LoopComparison {
    r.loops
        .iter()
        .find(|c| c.routine == routine && c.var == var)
        .unwrap_or_else(|| panic!("loop {routine}/{var} missing"))
}

// ---------------------------------------------------------------- flow

#[test]
fn flow_racy() {
    // First-order recurrence: iteration i reads what i-1 wrote.
    let (r, v) = oracle(
        "
      PROGRAM t
      REAL a(64)
      INTEGER i
      a(1) = 1.0
      DO i = 2, 64
        a(i) = a(i-1) + 1.0
      ENDDO
      END
",
    );
    let c = the_loop(&r, "t", "i");
    let lv = &v[0];
    assert!(!lv.parallel_after_privatization, "static must say serial");
    assert_eq!(c.dynamic_conflicts["a"], vec![DepClass::Flow]);
    assert_eq!(c.outcome, Outcome::Confirmed, "{c:?}");
    assert!(r.sound());
}

#[test]
fn flow_clean() {
    // Same shape, but reading a different array: no loop-carried flow.
    let (r, v) = oracle(
        "
      PROGRAM t
      REAL a(64), b(64)
      INTEGER i
      b(1) = 1.0
      DO i = 2, 64
        a(i) = b(i-1) + 1.0
      ENDDO
      END
",
    );
    let c = the_loop(&r, "t", "i");
    assert!(
        v[0].parallel_after_privatization,
        "static must say parallel"
    );
    assert!(c.dynamic_conflicts.is_empty(), "{c:?}");
    assert_eq!(c.outcome, Outcome::Confirmed);
    assert!(r.sound());
}

// ---------------------------------------------------------------- anti

#[test]
fn anti_racy() {
    // Iteration i reads a(i+1) before iteration i+1 overwrites it.
    let (r, v) = oracle(
        "
      PROGRAM t
      REAL a(70)
      INTEGER i
      DO i = 1, 64
        a(i) = a(i+1) + 1.0
      ENDDO
      END
",
    );
    let c = the_loop(&r, "t", "i");
    assert!(!v[0].parallel_after_privatization, "static must say serial");
    assert!(c.dynamic_conflicts["a"].contains(&DepClass::Anti), "{c:?}");
    assert_eq!(c.outcome, Outcome::Confirmed, "{c:?}");
    assert!(r.sound());
}

#[test]
fn anti_clean() {
    // Reads come from an array no iteration writes.
    let (r, v) = oracle(
        "
      PROGRAM t
      REAL a(70), b(70)
      INTEGER i
      DO i = 1, 64
        a(i) = b(i+1) + 1.0
      ENDDO
      END
",
    );
    let c = the_loop(&r, "t", "i");
    assert!(v[0].parallel_after_privatization);
    assert!(c.dynamic_conflicts.is_empty());
    assert_eq!(c.outcome, Outcome::Confirmed);
    assert!(r.sound());
}

// -------------------------------------------------------------- output

#[test]
fn output_racy() {
    // Iterations i and i+1 both write a(i+1): a pure output dependence
    // (the array is never read inside the loop).
    let (r, v) = oracle(
        "
      PROGRAM t
      REAL a(70)
      INTEGER i
      DO i = 1, 64
        a(i) = 1.0
        a(i+1) = 2.0
      ENDDO
      END
",
    );
    let c = the_loop(&r, "t", "i");
    assert!(!v[0].parallel_after_privatization, "static must say serial");
    assert_eq!(c.dynamic_conflicts["a"], vec![DepClass::Output], "{c:?}");
    assert_eq!(c.outcome, Outcome::Confirmed, "{c:?}");
    assert!(r.sound());
}

#[test]
fn output_clean() {
    // The twin writes land in distinct arrays: per-array writes are
    // iteration-disjoint.
    let (r, v) = oracle(
        "
      PROGRAM t
      REAL a(70), b(70)
      INTEGER i
      DO i = 1, 64
        a(i) = 1.0
        b(i+1) = 2.0
      ENDDO
      END
",
    );
    let c = the_loop(&r, "t", "i");
    assert!(v[0].parallel_after_privatization);
    assert!(c.dynamic_conflicts.is_empty());
    assert_eq!(c.outcome, Outcome::Confirmed);
    assert!(r.sound());
}

// ------------------------------------------------- privatization rescue

#[test]
fn privatization_rescued() {
    // Work array written then read every iteration: dynamically full of
    // anti/output conflicts, statically privatizable — the verdict is
    // parallel *after privatization* and the oracle must agree.
    let (r, v) = oracle(
        "
      PROGRAM t
      REAL w(8), a(64)
      INTEGER i, k
      DO i = 1, 64
        DO k = 1, 8
          w(k) = float(i) + float(k)
        ENDDO
        DO k = 1, 8
          a(i) = a(i) + w(k)
        ENDDO
      ENDDO
      END
",
    );
    let c = the_loop(&r, "t", "i");
    let lv = v.iter().find(|x| x.routine == "t" && x.var == "i").unwrap();
    assert!(lv.parallel_after_privatization);
    assert_eq!(lv.privatized, vec!["w".to_string()]);
    assert!(c.dynamic_conflicts.contains_key("w"), "{c:?}");
    assert_eq!(c.outcome, Outcome::Confirmed, "{c:?}");
    assert!(r.sound());
}

#[test]
fn privatization_rescue_fails_when_read_first() {
    // The racy twin: w is read *before* being written each iteration, so
    // its value flows across iterations — privatization would change the
    // program. Static must keep it serial; the oracle must find the flow
    // race and agree.
    let (r, v) = oracle(
        "
      PROGRAM t
      REAL w(8), a(64)
      INTEGER i, k
      w(1) = 0.5
      DO i = 1, 64
        DO k = 1, 8
          a(i) = a(i) + w(k)
        ENDDO
        DO k = 1, 8
          w(k) = float(i) + float(k)
        ENDDO
      ENDDO
      END
",
    );
    let c = the_loop(&r, "t", "i");
    let lv = v.iter().find(|x| x.routine == "t" && x.var == "i").unwrap();
    assert!(
        !lv.parallel_after_privatization,
        "read-before-write work array must block: {lv:?}"
    );
    assert!(c.dynamic_conflicts["w"].contains(&DepClass::Flow), "{c:?}");
    assert_eq!(c.outcome, Outcome::Confirmed, "{c:?}");
    assert!(r.sound());
}

// ------------------------------------------------- witness diagnostics

#[test]
fn witness_carries_array_iters_class_and_lines() {
    // Acceptance: a confirmed negative verdict carries a concrete
    // witness naming the array, the conflicting iteration pair, the
    // dependence class, and the 1-based source lines of both accesses.
    let src = "\
      PROGRAM t
      REAL a(64)
      INTEGER i
      a(1) = 1.0
      DO i = 2, 64
        a(i) = a(i-1) + 1.0
      ENDDO
      END
";
    // The only statement touching `a` inside the loop is on line 6.
    let (program, sema, mut verdicts) = analyze(src);
    let report = validate(&program, &sema, &verdicts);
    raceoracle::attach_diagnostics(&mut verdicts, &report);

    let v = verdicts
        .iter()
        .find(|v| v.routine == "t" && v.var == "i")
        .unwrap();
    assert_eq!(v.line, 5, "DO statement is on line 5");
    let d = &v.diagnostics[0];
    assert_eq!(d.array, "a");
    assert_eq!(d.class, DepClass::Flow);
    assert_eq!(d.later_iter, d.earlier_iter + 1);
    assert_eq!(d.earlier_line, 6, "write on line 6");
    assert_eq!(d.later_line, 6, "read on line 6");
    assert_eq!(d.element, vec![d.earlier_iter], "a(i) written at iter i");

    let rendered = d.render();
    assert!(rendered.contains("a("), "{rendered}");
    assert!(rendered.contains("flow"), "{rendered}");
    assert!(rendered.contains("line 6"), "{rendered}");
}
