//! The *expansion* function of §4.1: turning a per-iteration GAR into the
//! union over a range of iterations.
//!
//! For a loop index `i` with `lo <= i <= hi` and a GAR `T`:
//!
//! 1. bounds on `i` in `T`'s guard are solved out and tightened against the
//!    loop bounds (`max(l', lo) <= i <= min(u', hi)`, eliminated by case
//!    splitting);
//! 2. `i` occurring in exactly one region dimension is substituted by its
//!    range when the result is still a range;
//! 3. otherwise the affected dimensions are marked Ω;
//! 4. (∀-extension) a guard consisting of per-iteration *condition
//!    template* atoms expands into an `Over` piece (some iterations may
//!    access) plus an `Under` piece guarded by the universally quantified
//!    fact (all iterations access) — the inference needed by Fig. 1(a).

use crate::gars::{Approx, Gar};
use crate::list::GarList;
use pred::{bounds_on, Atom, Pred};
use region::{max_cases, min_cases, prove_le, Dim, Range, Region};
use sym::{diff_const, Expr};

/// Loop context for expansion.
#[derive(Clone, Debug)]
pub struct LoopCtx {
    /// The loop index variable.
    pub var: String,
    /// First iterate.
    pub lo: Expr,
    /// Last iterate bound (inclusive).
    pub hi: Expr,
    /// Constant positive loop step.
    pub step: i64,
    /// Enables the ∀-extension for condition-template guards.
    pub forall_ext: bool,
}

impl LoopCtx {
    /// A unit-step loop context.
    pub fn new(var: impl Into<String>, lo: Expr, hi: Expr) -> LoopCtx {
        LoopCtx {
            var: var.into(),
            lo,
            hi,
            step: 1,
            forall_ext: false,
        }
    }
}

/// Expands every piece of a list. See [`expand_gar`].
pub fn expand_list(list: &GarList, ctx: &LoopCtx) -> GarList {
    let mut out = Vec::new();
    for g in list.gars() {
        out.extend(expand_gar(g, ctx));
    }
    GarList::from_gars(out)
}

/// Expands one GAR over the loop, producing the union over all iterations.
pub fn expand_gar(gar: &Gar, ctx: &LoopCtx) -> Vec<Gar> {
    if !gar.contains_var(&ctx.var) {
        return vec![gar.clone()];
    }

    // Step 1: solve the index out of the guard.
    let (bounds, forall_atoms) = match bounds_on(&gar.guard, &ctx.var) {
        Some(b) => (b, Vec::new()),
        None => {
            // The guard mentions the index in a form `bounds_on` cannot
            // solve. The ∀-extension handles the case where the offending
            // clauses are all unit condition-template atoms.
            match split_cond_guard(&gar.guard, &ctx.var) {
                Some((residual, conds)) if ctx.forall_ext => {
                    let Some(b) = bounds_on(&residual, &ctx.var) else {
                        return vec![conservative(gar, ctx)];
                    };
                    (b, conds)
                }
                _ => return vec![conservative(gar, ctx)],
            }
        }
    };

    // Effective iteration bounds: max(loop lo, solved los) … min(loop hi,
    // solved his), eliminated into guarded cases.
    let residual = bounds.residual.clone();
    let mut lo_cases: Vec<(Pred, Expr)> = vec![(Pred::tru(), ctx.lo.clone())];
    for b in &bounds.los {
        let mut next = Vec::new();
        for (p, cur) in &lo_cases {
            for (q, m) in max_cases(&residual, cur, b) {
                let g = p.and(&q);
                if !g.is_false() {
                    next.push((g, m));
                }
            }
        }
        lo_cases = next;
    }
    let mut hi_cases: Vec<(Pred, Expr)> = vec![(Pred::tru(), ctx.hi.clone())];
    for b in &bounds.his {
        let mut next = Vec::new();
        for (p, cur) in &hi_cases {
            for (q, m) in min_cases(&residual, cur, b) {
                let g = p.and(&q);
                if !g.is_false() {
                    next.push((g, m));
                }
            }
        }
        hi_cases = next;
    }

    let mut out = Vec::new();
    for (pl, lo_e) in &lo_cases {
        for (ph, hi_e) in &hi_cases {
            let case = residual
                .and(pl)
                .and(ph)
                .and(&Pred::le(lo_e.clone(), hi_e.clone()));
            if case.is_false() {
                continue;
            }
            let (expanded, exact) = expand_region(&gar.region, ctx, lo_e, hi_e, &case);
            let base_approx = if exact { gar.approx } else { Approx::Over };

            if forall_atoms.is_empty() {
                out.push(Gar::with_approx(case, expanded, base_approx));
            } else {
                // ∀-extension: Over piece (∃ semantics lost → Δ) plus an
                // Under piece guarded by the universally quantified facts.
                out.push(Gar::with_approx(
                    case.and(&Pred::unknown()),
                    expanded.clone(),
                    Approx::Over,
                ));
                let mut fa_guard = case.clone();
                let mut ok = true;
                for (template, index, deps, positive) in &forall_atoms {
                    // index is affine in var with coefficient 1: index =
                    // var + c. Quantify over [lo_e + c, hi_e + c].
                    let Some((1, off)) = index.affine_decompose(&ctx.var) else {
                        ok = false;
                        break;
                    };
                    fa_guard = fa_guard.and_atom(Atom::ForallCond {
                        template: template.clone(),
                        lo: lo_e.clone() + off.clone(),
                        hi: hi_e.clone() + off,
                        deps: deps.clone(),
                        positive: *positive,
                    });
                }
                if ok && exact && ctx.step == 1 {
                    out.push(Gar::with_approx(fa_guard, expanded, Approx::Under));
                }
            }
        }
    }
    if out.is_empty() {
        // All cases contradictory: no iteration accesses anything.
        return Vec::new();
    }
    out
}

/// Fallback: mark everything touching the index unknown.
fn conservative(gar: &Gar, ctx: &LoopCtx) -> Gar {
    Gar::with_approx(
        gar.guard.forget_var(&ctx.var),
        gar.region.forget_var(&ctx.var),
        Approx::Over,
    )
}

/// Splits a guard into (clauses without the var, condition-template atoms
/// mentioning the var). Fails (`None`) if any var-clause is not a unit
/// `Cond` atom.
#[allow(clippy::type_complexity)]
fn split_cond_guard(
    guard: &Pred,
    var: &str,
) -> Option<(Pred, Vec<(pred::CondTemplate, Expr, Vec<sym::Name>, bool)>)> {
    let Pred::Cnf { disjs, unknown } = guard else {
        return None;
    };
    let mut residual = Vec::new();
    let mut conds = Vec::new();
    for d in disjs {
        if !d.contains_var(var) {
            residual.push(d.clone());
            continue;
        }
        match d.as_unit()? {
            Atom::Cond {
                template,
                index,
                deps,
                positive,
            } if index.contains_var(var) && !deps.iter().any(|x| x.as_str() == var) => {
                conds.push((template.clone(), index.clone(), deps.clone(), *positive));
            }
            Atom::Rel(..) | Atom::Bool(..) => {
                // A solvable relational clause — but bounds_on already
                // failed on the full guard, so some clause is unsolvable;
                // keep it in the residual and let bounds_on re-judge.
                residual.push(d.clone());
            }
            _ => return None,
        }
    }
    if conds.is_empty() {
        return None;
    }
    Some((Pred::from_disjs(residual, *unknown), conds))
}

/// Expands a region over `var ∈ [lo_e, hi_e]`. Returns the expanded region
/// and whether the expansion is exact.
fn expand_region(
    region: &Region,
    ctx: &LoopCtx,
    lo_e: &Expr,
    hi_e: &Expr,
    case: &Pred,
) -> (Region, bool) {
    let var = &ctx.var;
    let n_with_var = region
        .dims()
        .iter()
        .filter(|d| d.as_range().is_some_and(|r| r.contains_var(var)))
        .count();
    let mut exact = true;
    // Aligned stepping: for step > 1 the last iterate must land on the
    // grid for the produced strided range to be exact.
    let step_aligned =
        ctx.step == 1 || diff_const(hi_e, lo_e).is_some_and(|d| d >= 0 && d % ctx.step == 0);
    let dims = region
        .dims()
        .iter()
        .map(|d| {
            let Some(r) = d.as_range() else {
                return Dim::Unknown;
            };
            if !r.contains_var(var) {
                return d.clone();
            }
            if n_with_var > 1 {
                // §4.1: index in more than one dimension → Ω.
                exact = false;
                return Dim::Unknown;
            }
            match expand_range(r, ctx, lo_e, hi_e, case, step_aligned) {
                Some((nr, ex)) => {
                    exact &= ex;
                    Dim::Range(nr)
                }
                None => {
                    exact = false;
                    Dim::Unknown
                }
            }
        })
        .collect::<Vec<_>>();
    (Region::new(dims), exact)
}

/// Expands a single range over the index. Returns `(range, exact)` or
/// `None` for Ω.
fn expand_range(
    r: &Range,
    ctx: &LoopCtx,
    lo_e: &Expr,
    hi_e: &Expr,
    case: &Pred,
    step_aligned: bool,
) -> Option<(Range, bool)> {
    let var = &ctx.var;
    if r.step.contains_var(var) {
        return None;
    }
    let (cl, _) = r.lo.affine_decompose(var)?;
    let (cu, _) = r.hi.affine_decompose(var)?;

    let at = |e: &Expr, v: &Expr| e.subst_var(var, v);

    // Single-element-per-iteration dimension: lo == hi as polynomials.
    if r.lo == r.hi {
        let c = cl;
        debug_assert_ne!(c, 0);
        let stride = c.unsigned_abs() as i64 * ctx.step;
        let (nl, nh) = if c > 0 {
            (at(&r.lo, lo_e), at(&r.lo, hi_e))
        } else {
            (at(&r.lo, hi_e), at(&r.lo, lo_e))
        };
        return Some((Range::new(nl, nh, Expr::from(stride)), step_aligned));
    }

    // A true range per iteration: merging consecutive iterations requires
    // unit dimension step and unit loop step for exactness.
    if !r.unit_step() {
        return None;
    }
    if cl >= 0 && cu >= 0 {
        // Monotonically nondecreasing bounds. Contiguity of consecutive
        // iterations: l(i + step) <= u(i) + 1, i.e. l + cl*step <= u + 1.
        let shifted = r.lo.clone() + Expr::from(cl * ctx.step);
        let contiguous = prove_le(case, &shifted, &(r.hi.clone() + Expr::one()));
        if contiguous || cl == 0 {
            let nl = at(&r.lo, lo_e);
            let nh = at(&r.hi, hi_e);
            return Some((Range::contiguous(nl, nh), contiguous || cl == 0));
        }
        return None;
    }
    if cl <= 0 && cu <= 0 {
        // Monotonically nonincreasing bounds.
        let shifted = r.hi.clone() + Expr::from(cu * ctx.step);
        let contiguous = prove_le(case, &r.lo, &(shifted + Expr::one()));
        if contiguous || cu == 0 {
            let nl = at(&r.lo, hi_e);
            let nh = at(&r.hi, lo_e);
            return Some((Range::contiguous(nl, nh), contiguous || cu == 0));
        }
        return None;
    }
    if cl <= 0 && cu >= 0 {
        // Growing in both directions: nested intervals, the last covers all
        // (when each iteration's interval is valid, which the guard
        // carries).
        let nl = at(&r.lo, hi_e);
        let nh = at(&r.hi, hi_e);
        return Some((Range::contiguous(nl, nh), true));
    }
    // cl > 0 && cu < 0: shrinking from both sides — union is the first
    // iteration's interval.
    let nl = at(&r.lo, lo_e);
    let nh = at(&r.hi, lo_e);
    Some((Range::contiguous(nl, nh), true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sym::parse_expr;

    fn e(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    fn r1d(lo: &str, hi: &str) -> Region {
        Region::from_ranges([Range::contiguous(e(lo), e(hi))])
    }

    #[test]
    fn invariant_gar_unchanged() {
        let g = Gar::new(Pred::tru(), r1d("1", "n"));
        let ctx = LoopCtx::new("i", e("1"), e("m"));
        let out = expand_gar(&g, &ctx);
        assert_eq!(out, vec![g]);
    }

    #[test]
    fn paper_expansion_example() {
        // T = [c <= i+1 <= d, (1:i)], loop a <= i <= b
        // → new bounds max(a, c-1) <= i <= min(b, d-1)
        // → [.., (1 : min(b, d-1))]
        let guard = Pred::le(e("c"), e("i + 1")).and(&Pred::le(e("i + 1"), e("d")));
        let g = Gar::new(guard, r1d("1", "i"));
        let ctx = LoopCtx::new("i", e("a"), e("b"));
        let out = expand_gar(&g, &ctx);
        assert!(!out.is_empty());
        // Every produced piece must be exact, mention no i, and have an
        // upper bound of b or d-1.
        for p in &out {
            assert!(!p.contains_var("i"), "piece still has i: {p}");
            assert!(p.is_exact(), "piece not exact: {p}");
            let dim = p.region.dims()[0].as_range().unwrap();
            let hi = dim.hi.to_string();
            assert!(hi == "b" || hi == "d - 1", "unexpected hi {hi}");
        }
        // Cases for (lo: max(a, c-1, 1)) × (hi: min(b, d-1)): the extra
        // lower bound 1 comes from the region validity 1 <= i that
        // Gar::new folded into the guard.
        assert!(out.len() >= 4 && out.len() <= 8, "got {} cases", out.len());
    }

    #[test]
    fn single_element_positive_coef() {
        // [True, A(i+4)] over i in 2..5 → A(6:9)
        let g = Gar::element(Pred::tru(), [e("i + 4")]);
        let ctx = LoopCtx::new("i", e("2"), e("5"));
        let out = expand_gar(&g, &ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].region, r1d("6", "9"));
        assert!(out[0].is_exact());
    }

    #[test]
    fn single_element_negative_coef() {
        // A(10 - i) over i in 1..4 → A(6:9)
        let g = Gar::element(Pred::tru(), [e("10 - i")]);
        let ctx = LoopCtx::new("i", e("1"), e("4"));
        let out = expand_gar(&g, &ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].region, r1d("6", "9"));
    }

    #[test]
    fn single_element_coef_two_strided() {
        // A(2*i) over i in 1..n → A(2 : 2n : 2)
        let g = Gar::element(Pred::tru(), [e("2*i")]);
        let ctx = LoopCtx::new("i", e("1"), e("n"));
        let out = expand_gar(&g, &ctx);
        assert_eq!(out.len(), 1);
        let r = out[0].region.dims()[0].as_range().unwrap();
        assert_eq!(r.lo, e("2"));
        assert_eq!(r.hi, e("2*n"));
        assert_eq!(r.step, e("2"));
    }

    #[test]
    fn growing_range_merges() {
        // A(1:i) over i in 1..n → A(1:n) (cl = 0)
        let g = Gar::new(Pred::tru(), r1d("1", "i"));
        let ctx = LoopCtx::new("i", e("1"), e("n"));
        let out = expand_gar(&g, &ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].region, r1d("1", "n"));
        assert!(out[0].is_exact());
    }

    #[test]
    fn mod_lt_i_pattern() {
        // MOD_{<i}: expansion of [True, B(k)] over k in 1..i-1 → B(1:i-1),
        // as in the paper's subroutine `in` walkthrough.
        let g = Gar::element(Pred::tru(), [e("k")]);
        let ctx = LoopCtx::new("k", e("1"), e("i - 1"));
        let out = expand_gar(&g, &ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].region, r1d("1", "i - 1"));
        // validity 1 <= i-1 lives in the guard
        assert!(out[0].guard.implies(&Pred::le(e("1"), e("i - 1"))));
    }

    #[test]
    fn index_in_two_dims_goes_unknown() {
        let g = Gar::new(Pred::tru(), Region::element([e("i"), e("i + 1")]));
        let ctx = LoopCtx::new("i", e("1"), e("n"));
        let out = expand_gar(&g, &ctx);
        assert_eq!(out.len(), 1);
        assert!(!out[0].region.is_exact());
        assert_eq!(out[0].approx, Approx::Over);
    }

    #[test]
    fn sliding_window_not_contiguous_goes_unknown() {
        // A(3i : 3i+1) over i: gap between iterations → Ω.
        let g = Gar::new(Pred::tru(), r1d("3*i", "3*i + 1"));
        let ctx = LoopCtx::new("i", e("1"), e("n"));
        let out = expand_gar(&g, &ctx);
        assert_eq!(out.len(), 1);
        assert!(!out[0].region.is_exact());
    }

    #[test]
    fn sliding_window_contiguous_merges() {
        // A(i : i+2) over i in 1..n → A(1 : n+2): l(i+1)=i+1 <= u(i)+1=i+3.
        let g = Gar::new(Pred::tru(), r1d("i", "i + 2"));
        let ctx = LoopCtx::new("i", e("1"), e("n"));
        let out = expand_gar(&g, &ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].region, r1d("1", "n + 2"));
        assert!(out[0].is_exact());
    }

    #[test]
    fn guard_bounds_prune_iterations() {
        // [i >= 5, A(i)] over i in 1..3: no iteration qualifies → empty.
        let g = Gar::element(Pred::atom(Atom::ge(e("i"), e("5"))), [e("i")]);
        let ctx = LoopCtx::new("i", e("1"), e("3"));
        let out = expand_gar(&g, &ctx);
        assert!(GarList::from_gars(out).definitely_empty());
    }

    #[test]
    fn cond_guard_without_ext_conservative() {
        let g = Gar::element(
            Pred::atom(Atom::Cond {
                deps: vec![],
                template: pred::CondTemplate::new("c"),
                index: e("k"),
                positive: false,
            }),
            [e("k + 4")],
        );
        let ctx = LoopCtx::new("k", e("2"), e("5"));
        let out = expand_gar(&g, &ctx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].approx, Approx::Over);
        assert!(!out[0].region.is_exact());
    }

    #[test]
    fn cond_guard_with_forall_ext() {
        // The Fig 1(a) kernel: MOD piece [¬C(k+4), A(k+4)] over k in 2..5
        // must produce an Under piece [∀j∈[6,9]: ¬C(j), A(6:9)].
        let g = Gar::element(
            Pred::atom(Atom::Cond {
                deps: vec![],
                template: pred::CondTemplate::new("c"),
                index: e("k + 4"),
                positive: false,
            }),
            [e("k + 4")],
        );
        let mut ctx = LoopCtx::new("k", e("2"), e("5"));
        ctx.forall_ext = true;
        let out = expand_gar(&g, &ctx);
        let under: Vec<_> = out.iter().filter(|p| p.approx == Approx::Under).collect();
        assert_eq!(under.len(), 1, "pieces: {out:?}");
        assert_eq!(under[0].region, r1d("6", "9"));
        // Its guard instantiates at any index in [6,9]:
        let inst = Pred::atom(Atom::Cond {
            deps: vec![],
            template: pred::CondTemplate::new("c"),
            index: e("7"),
            positive: false,
        });
        assert!(under[0].guard.implies(&inst));
        // And there is an Over piece covering may-semantics.
        assert!(out.iter().any(|p| p.approx == Approx::Over));
    }
}
