//! Lists of GARs (unions) and the GAR simplifier.

use crate::gars::{Approx, Gar};
use pred::Pred;
use region::{region_covers, region_intersect, region_subtract, region_union_merge};
use serde::{Deserialize, Serialize};
use std::fmt;
use sym::Expr;

/// Cap on list length; beyond it the tail collapses into a single unknown
/// (Over) GAR — the paper's "mark as unknown" escape hatch at list level.
const LIST_CAP: usize = 48;

/// A union of GARs for one array. The paper's `UE`, `MOD`, `MOD_<i`, … sets
/// are values of this type.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct GarList {
    gars: Vec<Gar>,
}

impl GarList {
    /// The empty set ∅.
    pub fn empty() -> GarList {
        GarList::default()
    }

    /// A single-GAR list.
    pub fn single(gar: Gar) -> GarList {
        GarList { gars: vec![gar] }.simplified()
    }

    /// Builds from pieces, simplifying.
    pub fn from_gars(gars: impl IntoIterator<Item = Gar>) -> GarList {
        GarList {
            gars: gars.into_iter().collect(),
        }
        .simplified()
    }

    /// Rebuilds a list from GARs that already went through
    /// [`GarList::simplified`] (as returned by [`GarList::gars`]),
    /// skipping re-simplification. Used by persistence layers that must
    /// reproduce a previously observed value byte-for-byte — running
    /// the simplifier again is not guaranteed to be a fixed point for
    /// every input, and the cache contract is exact replay.
    pub fn from_simplified(gars: Vec<Gar>) -> GarList {
        GarList { gars }
    }

    /// The pieces.
    pub fn gars(&self) -> &[Gar] {
        &self.gars
    }

    /// Iterates over pieces sound for *may* queries (dependence tests).
    pub fn may_view(&self) -> impl Iterator<Item = &Gar> {
        self.gars.iter().filter(|g| g.usable_as_may())
    }

    /// Iterates over pieces sound for *must* queries (kills).
    pub fn must_view(&self) -> impl Iterator<Item = &Gar> {
        self.gars.iter().filter(|g| g.usable_as_must())
    }

    /// `true` iff the set is provably empty.
    pub fn definitely_empty(&self) -> bool {
        self.gars.is_empty()
    }

    /// `true` iff every piece is exact — the set is known precisely.
    pub fn is_exact(&self) -> bool {
        self.gars.iter().all(Gar::is_exact)
    }

    /// Number of pieces.
    pub fn len(&self) -> usize {
        self.gars.len()
    }

    /// `true` iff no pieces.
    pub fn is_empty(&self) -> bool {
        self.gars.is_empty()
    }

    /// Union with another list.
    pub fn union(&self, other: &GarList) -> GarList {
        GarList {
            gars: self.gars.iter().chain(other.gars.iter()).cloned().collect(),
        }
        .simplified()
    }

    /// Union with a single GAR.
    pub fn union_gar(&self, gar: Gar) -> GarList {
        let mut gars = self.gars.clone();
        gars.push(gar);
        GarList { gars }.simplified()
    }

    /// Intersection (may semantics): `T1 ∩ T2 = [[P1 ∧ P2, R1 ∩ R2]]`
    /// pairwise over may-usable pieces. The primary client is dependence
    /// detection, where an empty result proves independence.
    pub fn intersect(&self, other: &GarList) -> GarList {
        let mut out = Vec::new();
        for g1 in self.may_view() {
            for g2 in other.may_view() {
                let both = g1.guard.and(&g2.guard);
                if both.is_false() {
                    continue;
                }
                if g1.rank() != g2.rank() {
                    // Mismatched views of the same array (e.g. reshaped via
                    // parameter passing): conservatively unknown overlap.
                    out.push(Gar::with_approx(
                        both,
                        region::Region::unknown(g1.rank()),
                        Approx::Over,
                    ));
                    continue;
                }
                let approx = if g1.is_exact() && g2.is_exact() {
                    Approx::Exact
                } else {
                    Approx::Over
                };
                for (p, r) in region_intersect(&both, &g1.region, &g2.region) {
                    out.push(Gar::with_approx(both.and(&p), r, approx));
                }
            }
        }
        GarList { gars: out }.simplified()
    }

    /// Difference: `T1 − T2 = [[P1 ∧ P2, R1 − R2]] ∪ [P1 ∧ ¬P2, R1]` (§3.1),
    /// applied for every piece of `T2` in turn. Only must-usable pieces of
    /// `T2` kill; skipped pieces demote the surviving results to `Over`
    /// (the sound direction for upward-exposed sets).
    pub fn subtract(&self, other: &GarList) -> GarList {
        let mut pieces: Vec<Gar> = self.gars.clone();
        let any_skipped = other.gars.iter().any(|g| !g.usable_as_must());
        for g2 in other.must_view() {
            let mut next = Vec::with_capacity(pieces.len());
            for g1 in &pieces {
                next.extend(subtract_gar(g1, g2));
                if next.len() > 4 * LIST_CAP {
                    // Blow-up: stop killing, keep the rest over-approximate.
                    next.extend(pieces.iter().map(|g| demote(g.clone())));
                    return GarList { gars: next }.simplified();
                }
            }
            pieces = next;
        }
        if any_skipped {
            pieces = pieces.into_iter().map(demote).collect();
        }
        GarList { gars: pieces }.simplified()
    }

    /// Attaches an IF condition to every piece.
    pub fn guarded_by(&self, p: &Pred) -> GarList {
        if p.is_true() {
            return self.clone();
        }
        GarList {
            gars: self.gars.iter().map(|g| g.guarded_by(p)).collect(),
        }
        .simplified()
    }

    /// Substitutes a scalar in every piece (the on-the-fly substitution of
    /// §4.1).
    pub fn subst_var(&self, name: &str, value: &Expr) -> GarList {
        GarList {
            gars: self.gars.iter().map(|g| g.subst_var(name, value)).collect(),
        }
        .simplified()
    }

    /// Forgets a scalar whose defining value is unanalyzable.
    pub fn forget_var(&self, name: &str) -> GarList {
        GarList {
            gars: self.gars.iter().map(|g| g.forget_var(name)).collect(),
        }
        .simplified()
    }

    /// Does any piece mention the scalar?
    pub fn contains_var(&self, name: &str) -> bool {
        self.gars.iter().any(|g| g.contains_var(name))
    }

    /// Collects every scalar name mentioned by any piece.
    pub fn collect_vars(&self, out: &mut std::collections::BTreeSet<sym::Name>) {
        for g in &self.gars {
            g.collect_vars(out);
        }
    }

    /// Demotes every piece to `Over` (used when control flow forces a
    /// conservative merge, e.g. condensed goto-cycles).
    pub fn mark_over(&self) -> GarList {
        GarList {
            gars: self.gars.iter().cloned().map(demote).collect(),
        }
    }

    /// Total size of all pieces (stats / memory proxy).
    pub fn size(&self) -> usize {
        self.gars.iter().map(Gar::size).sum()
    }

    /// The GAR simplifier (§5.2): removes empty and redundant pieces,
    /// merges pieces, caps blow-up.
    pub fn simplified(mut self) -> GarList {
        self.gars.retain(|g| !g.definitely_empty());
        // Bounded pairwise merge rounds.
        for _ in 0..3 {
            let mut changed = false;
            let mut i = 0;
            while i < self.gars.len() {
                let mut j = i + 1;
                while j < self.gars.len() {
                    if let Some(repl) = try_merge(&self.gars[i], &self.gars[j]) {
                        self.gars.remove(j);
                        self.gars.remove(i);
                        let at = i;
                        for (k, g) in repl.into_iter().enumerate() {
                            self.gars.insert(at + k, g);
                        }
                        changed = true;
                        // restart inner scan for the new piece(s) at i
                        j = i + 1;
                    } else {
                        j += 1;
                    }
                }
                i += 1;
            }
            if !changed {
                break;
            }
        }
        if self.gars.len() > LIST_CAP {
            let rank = self.gars[0].rank();
            self.gars.truncate(LIST_CAP - 1);
            self.gars.push(Gar::unknown(rank));
        }
        self
    }
}

fn demote(g: Gar) -> Gar {
    match g.approx {
        Approx::Exact => Gar::with_approx(g.guard, g.region, Approx::Over),
        // An Under piece that may miss kills is still a sound Under piece.
        _ => g,
    }
}

/// `g1 − g2` as pieces. `g2` must be must-usable (checked by the caller).
fn subtract_gar(g1: &Gar, g2: &Gar) -> Vec<Gar> {
    if g2.definitely_empty() {
        return vec![g1.clone()];
    }
    let both = g1.guard.and(&g2.guard);
    if both.is_false() {
        return vec![g1.clone()];
    }
    if g1.rank() != g2.rank() {
        return vec![demote(g1.clone())];
    }
    let mut out = Vec::new();
    match region_subtract(&both, &g1.region, &g2.region) {
        Some(cases) => {
            for (p, r) in cases {
                out.push(Gar::with_approx(both.and(&p), r, g1.approx));
            }
        }
        None => {
            // Unrepresentable difference: keep the overlap piece whole but
            // over-approximate.
            out.push(Gar::with_approx(
                both.clone(),
                g1.region.clone(),
                Approx::Over,
            ));
        }
    }
    // The part of g1 outside g2's guard survives untouched. When
    // P1 ⇒ P2 there is no outside part — important when ¬P2 is not
    // expressible (e.g. a ∀ guard from the counter inference).
    if !g1.guard.implies(&g2.guard) {
        let outside = g1.guard.and(&g2.guard.not());
        if !outside.is_false() {
            out.push(Gar::with_approx(outside, g1.region.clone(), g1.approx));
        }
    }
    out
}

/// Attempts to merge two pieces into fewer/cleaner pieces. Returns the
/// replacement or `None` if no merge applies.
fn try_merge(a: &Gar, b: &Gar) -> Option<Vec<Gar>> {
    if a.approx != b.approx {
        // Subsumption across markers: an Exact piece may absorb an Over
        // piece only for may-semantics; that would lose nothing because
        // Over pieces never kill. Require region/guard subsumption.
        if a.is_exact()
            && b.approx == Approx::Over
            && b.guard.implies(&a.guard)
            && region_covers(&b.guard, &a.region, &b.region)
        {
            return Some(vec![a.clone()]);
        }
        if b.is_exact()
            && a.approx == Approx::Over
            && a.guard.implies(&b.guard)
            && region_covers(&a.guard, &b.region, &a.region)
        {
            return Some(vec![b.clone()]);
        }
        return None;
    }
    // Same approx from here on.
    // Identical regions: or-merge guards when the result stays exact
    // (paper's third union case: [P1 ∨ P2, R]).
    if a.region == b.region {
        let or = a.guard.or(&b.guard);
        if or.is_exact() || a.approx == Approx::Over {
            return Some(vec![Gar::with_approx(or, a.region.clone(), a.approx)]);
        }
        return None;
    }
    // Subsumption: drop the piece implied by the other.
    if a.guard.implies(&b.guard) && region_covers(&a.guard, &b.region, &a.region) {
        return Some(vec![b.clone()]);
    }
    if b.guard.implies(&a.guard) && region_covers(&b.guard, &a.region, &b.region) {
        return Some(vec![a.clone()]);
    }
    // Equal guards: try a geometric merge of the regions.
    if a.guard == b.guard {
        let merged = region_union_merge(&a.guard, &a.region, &b.region)?;
        if merged.len() <= 2 {
            return Some(
                merged
                    .into_iter()
                    .map(|(p, r)| Gar::with_approx(a.guard.and(&p), r, a.approx))
                    .collect(),
            );
        }
    }
    None
}

impl fmt::Display for GarList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.gars.is_empty() {
            return f.write_str("{}");
        }
        for (k, g) in self.gars.iter().enumerate() {
            if k > 0 {
                f.write_str(" U ")?;
            }
            write!(f, "{g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use region::{Range, Region};
    use sym::parse_expr;

    fn e(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    fn r1d(lo: &str, hi: &str) -> Region {
        Region::from_ranges([Range::contiguous(e(lo), e(hi))])
    }

    #[test]
    fn union_merges_adjacent() {
        let a = GarList::single(Gar::new(Pred::tru(), r1d("1", "5")));
        let b = GarList::single(Gar::new(Pred::tru(), r1d("6", "10")));
        let u = a.union(&b);
        assert_eq!(u.len(), 1);
        assert_eq!(u.gars()[0].region, r1d("1", "10"));
    }

    #[test]
    fn union_same_region_or_guards() {
        let p = Pred::le(e("x"), e("0"));
        let a = GarList::single(Gar::new(p.clone(), r1d("1", "10")));
        let b = GarList::single(Gar::new(p.not(), r1d("1", "10")));
        let u = a.union(&b);
        assert_eq!(u.len(), 1);
        assert!(u.gars()[0].guard.is_true());
    }

    #[test]
    fn union_subsumption() {
        let a = GarList::single(Gar::new(Pred::tru(), r1d("1", "100")));
        let b = GarList::single(Gar::new(Pred::le(e("q"), e("5")), r1d("20", "30")));
        let u = a.union(&b);
        assert_eq!(u.len(), 1);
        assert_eq!(u.gars()[0].region, r1d("1", "100"));
    }

    #[test]
    fn paper_union_example() {
        // T1 = [a<=b, A(a:b)], T2 = [b<=c, A(b:c)]: the union must cover
        // (a:c) when both hold — and pieces stay separate or merge, but
        // never lose elements. We check via intersection emptiness against
        // a probe outside.
        let t1 = GarList::single(Gar::new(Pred::tru(), r1d("a", "b")));
        let t2 = GarList::single(Gar::new(Pred::tru(), r1d("b", "c")));
        let u = t1.union(&t2);
        // The guards differ, so the list legitimately keeps both pieces
        // (§3: "Otherwise, the result is a list of two regular array
        // regions"); the guards carry the validity conditions.
        assert_eq!(u.len(), 2, "got {u}");
        assert!(u.gars()[0].guard.implies(&Pred::le(e("a"), e("b"))));
        assert!(u.gars()[1].guard.implies(&Pred::le(e("b"), e("c"))));
        // Under a shared guard, the regions do merge to (a:c):
        let shared = Pred::le(e("a"), e("b")).and(&Pred::le(e("b"), e("c")));
        let m = GarList::single(Gar::new(shared.clone(), r1d("a", "b")))
            .union(&GarList::single(Gar::new(shared, r1d("b", "c"))));
        assert_eq!(m.len(), 1, "got {m}");
        assert_eq!(m.gars()[0].region, r1d("a", "c"));
    }

    #[test]
    fn intersect_disjoint_empty() {
        let a = GarList::single(Gar::new(Pred::tru(), r1d("1", "3")));
        let b = GarList::single(Gar::new(Pred::tru(), r1d("7", "9")));
        assert!(a.intersect(&b).definitely_empty());
    }

    #[test]
    fn intersect_contradictory_guards_empty() {
        let p = Pred::eq(e("kc"), e("0"));
        let a = GarList::single(Gar::new(p.clone(), r1d("1", "10")));
        let b = GarList::single(Gar::new(p.not(), r1d("1", "10")));
        assert!(a.intersect(&b).definitely_empty());
    }

    #[test]
    fn intersect_under_pieces_ignored() {
        let a = GarList::from_gars([Gar::with_approx(Pred::tru(), r1d("1", "10"), Approx::Under)]);
        let b = GarList::single(Gar::new(Pred::tru(), r1d("5", "7")));
        // Under pieces are must-only; may-intersection sees nothing.
        assert!(a.intersect(&b).definitely_empty());
    }

    #[test]
    fn subtract_kills_covered() {
        let use_set = GarList::single(Gar::new(Pred::tru(), r1d("6", "9")));
        let mod_set = GarList::single(Gar::new(Pred::tru(), r1d("1", "10")));
        assert!(use_set.subtract(&mod_set).definitely_empty());
    }

    #[test]
    fn subtract_partial() {
        let use_set = GarList::single(Gar::new(Pred::tru(), r1d("1", "10")));
        let mod_set = GarList::single(Gar::new(Pred::tru(), r1d("4", "6")));
        let ue = use_set.subtract(&mod_set);
        assert_eq!(ue.len(), 2);
    }

    #[test]
    fn subtract_guarded_mod_keeps_complement() {
        // mod guarded by P kills only under P: UE keeps [¬P, R].
        let p = Pred::atom(pred::Atom::Bool(sym::Name::new("p"), true));
        let use_set = GarList::single(Gar::new(Pred::tru(), r1d("1", "10")));
        let mod_set = GarList::single(Gar::new(p.clone(), r1d("1", "10")));
        let ue = use_set.subtract(&mod_set);
        assert_eq!(ue.len(), 1);
        assert_eq!(ue.gars()[0].guard, p.not());
    }

    #[test]
    fn subtract_over_mod_kills_nothing() {
        let use_set = GarList::single(Gar::new(Pred::tru(), r1d("1", "10")));
        let mod_set =
            GarList::from_gars([Gar::with_approx(Pred::tru(), r1d("1", "10"), Approx::Over)]);
        let ue = use_set.subtract(&mod_set);
        assert_eq!(ue.len(), 1);
        assert_eq!(ue.gars()[0].region, r1d("1", "10"));
        // but the result is demoted (it over-approximates the true UE)
        assert_eq!(ue.gars()[0].approx, Approx::Over);
    }

    #[test]
    fn subtract_under_mod_kills() {
        // The ∀-extension case: an Under mod with an exact guard kills.
        let use_set = GarList::single(Gar::new(Pred::tru(), r1d("6", "9")));
        let fa = Pred::atom(pred::Atom::ForallCond {
            deps: vec![],
            template: pred::CondTemplate::new("c"),
            lo: e("2"),
            hi: e("5"),
            positive: false,
        });
        let mod_set =
            GarList::from_gars([Gar::with_approx(fa.clone(), r1d("6", "9"), Approx::Under)]);
        let ue = use_set.subtract(&mod_set);
        // survives only under ¬(∀…) — which is inexpressible, so the
        // surviving piece must NOT be exact-true; it must carry the
        // complement or Δ.
        assert!(!ue.definitely_empty());
        assert!(ue.gars().iter().all(|g| !g.guard.is_true()));
    }

    #[test]
    fn guarded_by_distributes() {
        let l = GarList::from_gars([
            Gar::new(Pred::tru(), r1d("1", "5")),
            Gar::new(Pred::tru(), r1d("8", "9")),
        ]);
        let p = Pred::le(e("x"), e("0"));
        let g = l.guarded_by(&p);
        assert!(g.gars().iter().all(|x| x.guard == p));
    }

    #[test]
    fn cap_collapses() {
        // Build many disjoint, unmergeable pieces.
        let mut gars = Vec::new();
        for k in 0..200 {
            let lo = 10 * k;
            gars.push(Gar::new(
                Pred::tru(),
                r1d(&format!("{}", lo), &format!("{}", lo + 3)),
            ));
        }
        let l = GarList::from_gars(gars);
        assert!(l.len() <= LIST_CAP);
        assert!(!l.is_exact());
    }

    #[test]
    fn empty_behaviour() {
        let l = GarList::empty();
        assert!(l.definitely_empty());
        assert!(l.is_exact());
        let m = GarList::single(Gar::new(Pred::fals(), r1d("1", "5")));
        assert!(m.definitely_empty());
    }
}
