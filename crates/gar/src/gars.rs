//! The GAR type.

use pred::Pred;
use region::Region;
use serde::{Deserialize, Serialize};
use std::fmt;
use sym::Expr;

/// How a GAR's element set relates to the real access set. See the crate
/// docs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Approx {
    /// Exactly the accessed elements (when the guard holds).
    Exact,
    /// A superset (may information only).
    Over,
    /// A subset that is certainly accessed when the guard holds (must
    /// information only).
    Under,
}

/// A guarded array region `[P, R]`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Gar {
    /// The guard predicate.
    pub guard: Pred,
    /// The regular array region.
    pub region: Region,
    /// Approximation marker.
    pub approx: Approx,
}

impl Gar {
    /// Creates a GAR, normalizing the approximation marker: inexact guards
    /// or Ω dimensions demote `Exact` to `Over`. The region's validity
    /// conditions (`lo <= hi`) are conjoined into the guard, per the
    /// paper's explicit-validity rule.
    pub fn new(guard: Pred, region: Region) -> Gar {
        Gar::with_approx(guard, region, Approx::Exact)
    }

    /// Creates a GAR with an explicit marker (normalized as in
    /// [`Gar::new`]).
    pub fn with_approx(guard: Pred, region: Region, approx: Approx) -> Gar {
        let guard = guard.and(&region.validity());
        let approx = match approx {
            Approx::Exact if !guard.is_exact() || !region.is_exact() => Approx::Over,
            // A must-GAR with lost components cannot promise anything:
            // degrade to Over (it will then simply never be used to kill).
            Approx::Under if !guard.is_exact() || !region.is_exact() => Approx::Over,
            a => a,
        };
        Gar {
            guard,
            region,
            approx,
        }
    }

    /// A GAR covering one element `A(subs…)` under a guard.
    pub fn element(guard: Pred, subs: impl IntoIterator<Item = Expr>) -> Gar {
        Gar::new(guard, Region::element(subs))
    }

    /// The fully unknown GAR of a given rank (guard Δ, all dims Ω).
    pub fn unknown(rank: usize) -> Gar {
        Gar::with_approx(Pred::unknown(), Region::unknown(rank), Approx::Over)
    }

    /// `true` iff the GAR is provably empty (guard false or region empty).
    pub fn definitely_empty(&self) -> bool {
        self.guard.is_false() || self.region.definitely_empty()
    }

    /// `true` iff exact (usable as may and must information).
    pub fn is_exact(&self) -> bool {
        self.approx == Approx::Exact
    }

    /// `true` iff usable for may queries (dependence detection).
    pub fn usable_as_may(&self) -> bool {
        matches!(self.approx, Approx::Exact | Approx::Over)
    }

    /// `true` iff usable as a kill (subtrahend of upward-exposure).
    pub fn usable_as_must(&self) -> bool {
        matches!(self.approx, Approx::Exact | Approx::Under)
    }

    /// Number of array dimensions.
    pub fn rank(&self) -> usize {
        self.region.rank()
    }

    /// Conjoins a condition onto the guard (IF-condition attachment).
    pub fn guarded_by(&self, p: &Pred) -> Gar {
        Gar::with_approx(self.guard.and(p), self.region.clone(), self.approx)
    }

    /// Substitutes a scalar in guard and region. Demotes to `Over` when
    /// components are lost.
    pub fn subst_var(&self, name: &str, value: &Expr) -> Gar {
        Gar::with_approx(
            self.guard.subst_var(name, value),
            self.region.subst_var(name, value),
            self.approx,
        )
    }

    /// Forgets a scalar whose value is unanalyzable: occurrences in the
    /// guard weaken to Δ, occurrences in the region become Ω.
    pub fn forget_var(&self, name: &str) -> Gar {
        Gar::with_approx(
            self.guard.forget_var(name),
            self.region.forget_var(name),
            self.approx,
        )
    }

    /// Does the GAR mention the scalar anywhere?
    pub fn contains_var(&self, name: &str) -> bool {
        self.guard.contains_var(name) || self.region.contains_var(name)
    }

    /// Collects every scalar name mentioned by guard or region.
    pub fn collect_vars(&self, out: &mut std::collections::BTreeSet<sym::Name>) {
        self.guard.collect_vars(out);
        self.region.collect_vars(out);
    }

    /// A size measure (atoms + dims) for stats and caps.
    pub fn size(&self) -> usize {
        self.guard.size() + self.region.rank()
    }
}

impl fmt::Display for Gar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let marker = match self.approx {
            Approx::Exact => "",
            Approx::Over => "⊇",
            Approx::Under => "⊆",
        };
        write!(f, "[{}, {}{}]", self.guard, marker, self.region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sym::parse_expr;

    fn e(s: &str) -> sym::Expr {
        parse_expr(s).unwrap()
    }

    #[test]
    fn validity_enters_guard() {
        let g = Gar::new(
            Pred::tru(),
            Region::from_ranges([region::Range::contiguous(e("a"), e("b"))]),
        );
        // guard now carries a <= b
        assert!(!g.guard.is_true());
        assert!(g.guard.implies(&Pred::le(e("a"), e("b"))));
        assert!(g.is_exact());
    }

    #[test]
    fn exactness_demotion() {
        let g = Gar::new(Pred::unknown(), Region::element([e("i")]));
        assert_eq!(g.approx, Approx::Over);
        let h = Gar::new(Pred::tru(), Region::unknown(2));
        assert_eq!(h.approx, Approx::Over);
    }

    #[test]
    fn under_demotion_when_lossy() {
        let g = Gar::with_approx(Pred::unknown(), Region::element([e("i")]), Approx::Under);
        assert_eq!(g.approx, Approx::Over);
        let ok = Gar::with_approx(Pred::tru(), Region::element([e("i")]), Approx::Under);
        assert_eq!(ok.approx, Approx::Under);
        assert!(ok.usable_as_must());
        assert!(!ok.usable_as_may());
    }

    #[test]
    fn empty_detection() {
        let g = Gar::new(Pred::fals(), Region::element([e("i")]));
        assert!(g.definitely_empty());
        let h = Gar::new(
            Pred::tru(),
            Region::from_ranges([region::Range::contiguous(e("5"), e("2"))]),
        );
        assert!(h.definitely_empty());
        // symbolic invalid range: not *definitely* empty, but guard carries
        // the validity so intersected contradictions surface.
        let s = Gar::new(
            Pred::tru(),
            Region::from_ranges([region::Range::contiguous(e("a"), e("b"))]),
        );
        assert!(!s.definitely_empty());
        let contradicted = s.guarded_by(&Pred::lt(e("b"), e("a")));
        assert!(contradicted.definitely_empty());
    }

    #[test]
    fn guarded_by_conjoins() {
        let g = Gar::element(Pred::tru(), [e("jmax")]);
        let p = Pred::atom(pred::Atom::Bool(sym::Name::new("p"), false));
        let h = g.guarded_by(&p);
        assert_eq!(h.guard, p);
    }

    #[test]
    fn subst_and_forget() {
        let g = Gar::new(
            Pred::le(e("i"), e("n")),
            Region::from_ranges([region::Range::contiguous(e("1"), e("n"))]),
        );
        let s = g.subst_var("n", &e("10"));
        assert!(s.is_exact());
        assert!(!s.contains_var("n"));
        let f = g.forget_var("n");
        assert_eq!(f.approx, Approx::Over);
    }
}
