//! Property tests for GAR-list algebra: list operations are checked against
//! brute-force element sets under random environments. `may` views must
//! over-approximate, `must` views under-approximate, and exact lists must be
//! exact.

use crate::{expand_gar, Gar, GarList, LoopCtx};
use pred::{Atom, EvalCtx, Pred};
use proptest::prelude::*;
use region::{Range, Region};
use std::collections::BTreeSet;
use sym::{Env, Expr};

fn arb_bound() -> impl Strategy<Value = Expr> {
    (any::<bool>(), -6i64..10).prop_map(|(use_a, c)| {
        if use_a {
            Expr::var("a") + Expr::from(c)
        } else {
            Expr::from(c)
        }
    })
}

fn arb_guard() -> impl Strategy<Value = Pred> {
    prop_oneof![
        Just(Pred::tru()),
        (arb_bound(), arb_bound()).prop_map(|(x, y)| Pred::le(x, y)),
        (arb_bound(), arb_bound()).prop_map(|(x, y)| Pred::le(x, y).not()),
    ]
}

fn arb_gar() -> impl Strategy<Value = Gar> {
    (arb_guard(), arb_bound(), arb_bound())
        .prop_map(|(g, lo, hi)| Gar::new(g, Region::from_ranges([Range::contiguous(lo, hi)])))
}

fn arb_list() -> impl Strategy<Value = GarList> {
    proptest::collection::vec(arb_gar(), 1..4).prop_map(GarList::from_gars)
}

fn arb_env() -> impl Strategy<Value = Env> {
    (-4i64..8).prop_map(|a| Env::from_pairs([("a", a)]))
}

/// Concrete element set of a list; `None` if any guard is undecidable.
fn concrete(list: &GarList, env: &Env) -> Option<BTreeSet<i64>> {
    let ctx = EvalCtx::scalars(env);
    let mut out = BTreeSet::new();
    for g in list.gars() {
        match ctx.eval_pred(&g.guard) {
            Some(true) => {
                let r = g.region.dims()[0].as_range()?;
                let lo = r.lo.eval(env)?;
                let hi = r.hi.eval(env)?;
                let s = r.step.eval(env)?;
                if s >= 1 {
                    let mut x = lo;
                    while x <= hi {
                        out.insert(x);
                        x += s;
                    }
                }
            }
            Some(false) => {}
            None => return None,
        }
    }
    Some(out)
}

proptest! {
    /// Union is the exact set union for exact lists.
    #[test]
    fn union_exact(a in arb_list(), b in arb_list(), env in arb_env()) {
        let u = a.union(&b);
        if let (Some(sa), Some(sb), Some(su)) =
            (concrete(&a, &env), concrete(&b, &env), concrete(&u, &env))
        {
            let want: BTreeSet<i64> = sa.union(&sb).copied().collect();
            prop_assert_eq!(su, want, "a={} b={} u={} env={:?}", a, b, u, env.get("a"));
        }
    }

    /// Intersection result covers the true intersection (may semantics) and
    /// equals it when the result list is exact.
    #[test]
    fn intersect_sound(a in arb_list(), b in arb_list(), env in arb_env()) {
        let i = a.intersect(&b);
        if let (Some(sa), Some(sb), Some(si)) =
            (concrete(&a, &env), concrete(&b, &env), concrete(&i, &env))
        {
            let want: BTreeSet<i64> = sa.intersection(&sb).copied().collect();
            prop_assert!(si.is_superset(&want),
                "lost elements: a={} b={} i={} env={:?}", a, b, i, env.get("a"));
            if i.is_exact() && a.is_exact() && b.is_exact() {
                prop_assert_eq!(si, want);
            }
        }
    }

    /// Emptiness verdicts are sound: a definitely-empty intersection means
    /// the true sets are disjoint.
    #[test]
    fn empty_intersection_sound(a in arb_list(), b in arb_list(), env in arb_env()) {
        if a.intersect(&b).definitely_empty() {
            if let (Some(sa), Some(sb)) = (concrete(&a, &env), concrete(&b, &env)) {
                prop_assert!(sa.is_disjoint(&sb),
                    "claimed empty but {:?} ∩ {:?} nonempty (a={} b={})", sa, sb, a, b);
            }
        }
    }

    /// Subtraction over-approximates the true difference (sound for UE) and
    /// is exact when exactness is claimed.
    #[test]
    fn subtract_sound(a in arb_list(), b in arb_list(), env in arb_env()) {
        let d = a.subtract(&b);
        if let (Some(sa), Some(sb), Some(sd)) =
            (concrete(&a, &env), concrete(&b, &env), concrete(&d, &env))
        {
            let want: BTreeSet<i64> = sa.difference(&sb).copied().collect();
            prop_assert!(sd.is_superset(&want),
                "UE lost elements: a={} b={} d={} env={:?}", a, b, d, env.get("a"));
            if d.is_exact() && a.is_exact() && b.is_exact() {
                prop_assert_eq!(sd, want, "a={} b={} d={}", a, b, d);
            }
        }
    }

    /// Expansion covers the union over all iterations, exactly when exact.
    #[test]
    fn expansion_sound(
        guard_c in -3i64..5,
        off in -3i64..4,
        lo in -2i64..3,
        span in 0i64..6,
        env in arb_env(),
    ) {
        // per-iteration GAR: [i <= guard_c + a?, A(i + off)]
        let guard = Pred::le(Expr::var("i"), Expr::var("a") + Expr::from(guard_c));
        let g = Gar::element(guard, [Expr::var("i") + Expr::from(off)]);
        let ctx = LoopCtx::new("i", Expr::from(lo), Expr::from(lo + span));
        let out = GarList::from_gars(expand_gar(&g, &ctx));

        // brute force
        let ectx = EvalCtx::scalars(&env);
        let mut want = BTreeSet::new();
        for i in lo..=(lo + span) {
            let inst = g.subst_var("i", &Expr::from(i));
            match ectx.eval_pred(&inst.guard) {
                Some(true) => { want.insert(i + off); }
                Some(false) => {}
                None => return Ok(()),
            }
        }
        if let Some(got) = concrete(&out, &env) {
            prop_assert!(got.is_superset(&want),
                "expansion lost elements: got {:?} want {:?} out={}", got, want, out);
            if out.is_exact() {
                prop_assert_eq!(got, want, "out={}", out);
            }
        }
    }

    /// `guarded_by` conjoins semantically.
    #[test]
    fn guarded_by_sound(a in arb_list(), x in arb_bound(), y in arb_bound(), env in arb_env()) {
        let p = Pred::le(x, y);
        let g = a.guarded_by(&p);
        let ectx = EvalCtx::scalars(&env);
        if let (Some(sa), Some(sg), Some(vp)) =
            (concrete(&a, &env), concrete(&g, &env), ectx.eval_pred(&p))
        {
            if vp {
                prop_assert_eq!(sg, sa);
            } else {
                prop_assert!(sg.is_empty());
            }
        }
    }
}

#[cfg(test)]
mod extra {
    use super::*;

    /// The Under/Over machinery composes: an Under piece never appears in
    /// may views after arbitrary unions.
    #[test]
    fn views_partition() {
        let under = Gar::with_approx(
            Pred::atom(Atom::ForallCond {
                deps: vec![],
                template: pred::CondTemplate::new("t"),
                lo: Expr::from(1),
                hi: Expr::from(9),
                positive: false,
            }),
            Region::from_ranges([Range::contiguous(Expr::from(1), Expr::from(9))]),
            crate::Approx::Under,
        );
        let exact = Gar::new(
            Pred::tru(),
            Region::from_ranges([Range::contiguous(Expr::from(20), Expr::from(30))]),
        );
        let list = GarList::from_gars([under, exact]);
        assert_eq!(list.may_view().count(), 1);
        assert_eq!(list.must_view().count(), 2);
    }
}
