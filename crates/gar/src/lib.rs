//! Guarded array regions (GARs) — the paper's central representation.
//!
//! A GAR `[P, R]` pairs a regular array region `R` with a guard predicate
//! `P`: the elements of `R` are accessed exactly when `P` holds (§3 of
//! Gu, Li & Lee, SC'95). Summaries (`MOD`, `UE`, …) are [`GarList`]s —
//! unions of GARs for one array.
//!
//! # Approximation tracking
//!
//! The paper's sets are exact "unless the GAR's contain unknown
//! components". This crate makes the unknown-component bookkeeping explicit
//! with an [`Approx`] marker on every GAR:
//!
//! * `Exact` — the GAR describes its element set exactly (guard exact,
//!   region exact). Usable both for dependence detection ("may" queries)
//!   and as a subtrahend that kills upward exposure ("must" kills).
//! * `Over` — over-approximation (may-only): something was lost — a Δ in
//!   the guard, an Ω dimension, an unrepresentable operation. Sound for
//!   dependence detection, never used to kill.
//! * `Under` — under-approximation (must-only): every element is certainly
//!   written when the guard holds, but other elements may be written too.
//!   Produced by the ∀-extension when expanding conditionally-guarded
//!   writes over a loop (the Fig. 1(a) inference). Sound as a kill, never
//!   used for dependence detection.
//!
//! A `GarList` may mix markers; `may_view`/`must_view` select the sound
//! subset for each query.

#![warn(missing_docs)]

mod expand;
mod gars;
mod list;

pub use expand::{expand_gar, expand_list, LoopCtx};
pub use gars::{Approx, Gar};
pub use list::GarList;

#[cfg(test)]
mod proptests;
