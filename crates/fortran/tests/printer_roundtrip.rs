//! Parse→print→parse round-trip property: the pretty-printer is an
//! identity on the AST (modulo source line numbers), and printing is
//! idempotent byte for byte. This is the contract the panogen emission
//! backend rides — directives are comment lines layered over a printer
//! that must never change the program underneath.

use fortran::{parse_program, print_program, strip_lines};
use proptest::prelude::*;

/// One generated statement block (already indented, newline-terminated).
fn block() -> impl Strategy<Value = String> {
    prop_oneof![
        (1u32..9, 1u32..9).prop_map(|(m, n)| format!("      x = {m}.5 + float({n})\n")),
        (1u32..40).prop_map(|n| format!("      a({n}) = b({n}) * 2.0\n")),
        (1u32..9).prop_map(|n| format!("      y = (x + {n}.0) / (y - {n}.25)\n")),
        (1u32..9).prop_map(|n| format!("      k = i * {n} - j\n")),
        (2u32..20).prop_map(|n| format!(
            "      DO i = 1, {n}\n        a(i) = x + float(i)\n      ENDDO\n"
        )),
        (2u32..20).prop_map(|n| format!(
            "      DO j = {n}, 2, -1\n        b(j) = a(j) + y\n      ENDDO\n"
        )),
        (2u32..10, 2u32..10).prop_map(|(m, n)| format!(
            "      DO i = 1, {m}\n        DO k = 1, {n}\n          b(k) = b(k) + a(i)\n\
             \x20       ENDDO\n      ENDDO\n"
        )),
        (1u32..9).prop_map(|n| format!(
            "      IF (x .GT. {n}.0) THEN\n        y = float({n})\n      ELSE\n\
             \x20       y = -1.0\n      ENDIF\n"
        )),
        (1u32..9).prop_map(|n| format!(
            "      IF (p .AND. (i .LE. {n})) THEN\n        q = q + 1.0\n      ENDIF\n"
        )),
        Just("      IF (p) y = y + 1.0\n".to_string()),
        Just("      IF (.NOT. p) goto 10\n".to_string()),
        Just("      CALL s(x)\n".to_string()),
        Just("      CALL s(a(1))\n".to_string()),
        (1u32..9).prop_map(|n| format!("      p = (x .LT. {n}.0) .OR. (j .EQ. {n})\n")),
    ]
}

/// A full parser-constructible program around the generated blocks.
fn program(blocks: &[String]) -> String {
    let mut src = String::from(
        "      PROGRAM rt\n\
         \x20     REAL a(50), b(50), x, y\n\
         \x20     LOGICAL p\n\
         \x20     INTEGER i, j, k, n\n\
         \x20     COMMON /blk/ q\n\
         \x20     REAL q\n\
         \x20     PARAMETER (nmax = 50)\n\
         \x20     p = .FALSE.\n\
         \x20     x = 1.5\n\
         \x20     y = 2.5\n\
         \x20     i = 1\n\
         \x20     j = 2\n\
         \x20     k = 3\n\
         \x20     n = nmax\n",
    );
    for b in blocks {
        src.push_str(b);
    }
    src.push_str(
        "10    CONTINUE\n\
         \x20     END\n\
         \x20     SUBROUTINE s(v)\n\
         \x20     REAL v\n\
         \x20     v = v + 1.0\n\
         \x20     RETURN\n\
         \x20     END\n",
    );
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print is an AST identity (modulo line numbers) and a byte-level
    /// fixed point.
    #[test]
    fn parse_print_parse_is_identity(blocks in proptest::collection::vec(block(), 0..12)) {
        let src = program(&blocks);
        let ast = parse_program(&src)
            .unwrap_or_else(|e| panic!("generated program does not parse: {e}\n{src}"));
        let printed = print_program(&ast);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program does not reparse: {e}\n{printed}"));
        prop_assert_eq!(
            strip_lines(&reparsed),
            strip_lines(&ast),
            "printer changed the program:\n{}",
            printed
        );
        // Idempotence: printing the reparsed AST reproduces the bytes.
        prop_assert_eq!(print_program(&reparsed), printed);
    }
}
