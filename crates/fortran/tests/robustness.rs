//! Robustness: the front end must never panic — every input produces
//! either a parse tree or a structured error.

use fortran::{analyze, parse_program};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup: no panics.
    #[test]
    fn arbitrary_text_never_panics(s in "\\PC*") {
        let _ = parse_program(&s);
    }

    /// Fortran-flavored token soup: no panics, and sema never panics on
    /// whatever happens to parse.
    #[test]
    fn token_soup_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("PROGRAM t".to_string()),
            Just("SUBROUTINE s(a)".to_string()),
            Just("END".to_string()),
            Just("ENDDO".to_string()),
            Just("ENDIF".to_string()),
            Just("DO i = 1, 10".to_string()),
            Just("DO 10 j = 1, 5".to_string()),
            Just("10    CONTINUE".to_string()),
            Just("IF (x .GT. 1.0) THEN".to_string()),
            Just("ELSE".to_string()),
            Just("IF (p) goto 10".to_string()),
            Just("goto 10".to_string()),
            Just("x = y + z(i)".to_string()),
            Just("a(i) = a(i-1) * 2".to_string()),
            Just("call s(x)".to_string()),
            Just("RETURN".to_string()),
            Just("REAL a(100), x".to_string()),
            Just("INTEGER i, j".to_string()),
            Just("PARAMETER (n = 4)".to_string()),
            Just("COMMON /blk/ q".to_string()),
            Just("** ( ) , = .AND.".to_string()),
        ],
        0..30,
    )) {
        let src = tokens.join("\n");
        if let Ok(p) = parse_program(&src) {
            let _ = analyze(&p);
        }
    }

    /// Structured mutations of a valid program: truncations at arbitrary
    /// byte positions never panic.
    #[test]
    fn truncations_never_panic(cut in 0usize..400) {
        let src = "
      PROGRAM t
      REAL a(100), w(10)
      INTEGER i, k
      DO i = 1, 100
        DO k = 1, 10
          w(k) = float(i + k)
        ENDDO
        IF (w(1) .GT. 5.0) THEN
          a(i) = w(1)
        ELSE
          a(i) = w(10)
        ENDIF
      ENDDO
      END
";
        let cut = cut.min(src.len());
        // only cut at char boundaries
        if src.is_char_boundary(cut) {
            let _ = parse_program(&src[..cut]);
        }
    }
}

#[test]
fn deep_nesting_does_not_overflow() {
    // 60 nested DO loops and 60 nested IFs: recursion depths stay sane.
    let mut src = String::from("      PROGRAM t\n      REAL a(10)\n      INTEGER ");
    let vars: Vec<String> = (0..60).map(|k| format!("i{k}")).collect();
    src.push_str(&vars.join(", "));
    src.push('\n');
    for v in &vars {
        src.push_str(&format!("      DO {v} = 1, 2\n"));
    }
    src.push_str("      a(1) = 1.0\n");
    for _ in &vars {
        src.push_str("      ENDDO\n");
    }
    src.push_str("      END\n");
    let p = parse_program(&src).unwrap();
    assert!(analyze(&p).is_ok());

    let mut src2 = String::from("      PROGRAM t\n      REAL a(10)\n");
    for _ in 0..60 {
        src2.push_str("      IF (a(1) .GT. 0.0) THEN\n");
    }
    src2.push_str("      a(1) = 1.0\n");
    for _ in 0..60 {
        src2.push_str("      ENDIF\n");
    }
    src2.push_str("      END\n");
    assert!(parse_program(&src2).is_ok());
}

#[test]
fn pathological_expressions() {
    // long operator chains and deep parens
    let chain = (1..200)
        .map(|k| k.to_string())
        .collect::<Vec<_>>()
        .join(" + ");
    let src = format!("      PROGRAM t\n      x = {chain}\n      END\n");
    assert!(parse_program(&src).is_ok());

    let deep = format!("{}x{}", "(".repeat(100), ")".repeat(100));
    let src2 = format!("      PROGRAM t\n      y = {deep}\n      END\n");
    assert!(parse_program(&src2).is_ok());
}

#[test]
fn runaway_paren_nesting_is_an_error_not_an_overflow() {
    // Far past any plausible program, well past the recursion cap: the
    // parser must return a structured error instead of blowing the
    // stack.
    let deep = format!("{}x{}", "(".repeat(10_000), ")".repeat(10_000));
    let src = format!("      PROGRAM t\n      y = {deep}\n      END\n");
    let err = parse_program(&src).unwrap_err();
    assert!(err.message.contains("limit"), "{err}");
}

#[test]
fn runaway_statement_nesting_is_an_error_not_an_overflow() {
    let mut src = String::from("      PROGRAM t\n      REAL a(10)\n");
    for _ in 0..10_000 {
        src.push_str("      IF (a(1) .GT. 0.0) THEN\n");
    }
    // No closers: the depth cap must fire long before EOF handling.
    let err = parse_program(&src).unwrap_err();
    assert!(err.message.contains("limit"), "{err}");
}

#[test]
fn runaway_right_recursive_operators_are_an_error_not_an_overflow() {
    let nots = ".NOT. ".repeat(10_000);
    let src = format!("      PROGRAM t\n      p = {nots}q\n      END\n");
    let err = parse_program(&src).unwrap_err();
    assert!(err.message.contains("limit"), "{err}");

    let pows = vec!["2"; 10_000].join(" ** ");
    let src2 = format!("      PROGRAM t\n      y = {pows}\n      END\n");
    let err2 = parse_program(&src2).unwrap_err();
    assert!(err2.message.contains("limit"), "{err2}");
}

#[test]
fn nesting_cap_is_generous_for_real_programs() {
    // 150 nested parens: beyond anything the benchsuite contains, still
    // inside the cap.
    let deep = format!("{}x{}", "(".repeat(150), ")".repeat(150));
    let src = format!("      PROGRAM t\n      y = {deep}\n      END\n");
    assert!(parse_program(&src).is_ok());
}
