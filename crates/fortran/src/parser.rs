//! Recursive-descent parser for the Fortran subset.

use crate::ast::*;
use crate::lexer::{lex, LexError, Token, TokenKind};
use std::fmt;

/// A parse failure.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Hard bound on parser recursion, in weighted units: nested statements
/// charge 3 (their frames are an order of magnitude fatter than
/// expression frames on a debug build), parenthesized expressions and
/// chained right-recursive operators charge 2. Inputs beyond the budget
/// get a structured [`ParseError`] instead of a stack overflow — the
/// weights keep the worst mixed-nesting case comfortably inside a 2 MiB
/// thread stack while allowing ~130 statement levels or ~200 paren
/// levels, far past any real program.
const MAX_NEST: usize = 400;

/// Parses a whole source file into a [`Program`].
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    failpoints::fail_point("parse", src);
    let toks = {
        let _span = trace::span("lex");
        let toks = lex(src)?;
        trace::add("tokens", toks.len() as u64);
        toks
    };
    let _span = trace::span("parse_units");
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let mut routines = Vec::new();
    p.skip_newlines();
    while !p.at_eof() {
        routines.push(p.unit()?);
        p.skip_newlines();
    }
    trace::add("routines", routines.len() as u64);
    Ok(Program { routines })
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    /// Enters one recursion level of weight `cost`; callers must pair
    /// it with [`Parser::ascend`] of the same cost on every non-error
    /// path.
    fn descend(&mut self, cost: usize) -> Result<(), ParseError> {
        self.depth += cost;
        if self.depth > MAX_NEST {
            return Err(self.err("nesting deeper than the parser's recursion limit"));
        }
        Ok(())
    }

    fn ascend(&mut self, cost: usize) {
        self.depth -= cost;
    }

    fn err(&self, m: impl Into<String>) -> ParseError {
        ParseError {
            message: m.into(),
            line: self.toks[self.pos.min(self.toks.len() - 1)].line,
        }
    }

    fn cur_line(&self) -> u32 {
        self.toks[self.pos.min(self.toks.len() - 1)].line
    }

    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos + 1).map(|t| &t.kind)
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), TokenKind::Newline) {
            self.bump();
        }
    }

    fn expect_newline(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            TokenKind::Newline => {
                self.bump();
                Ok(())
            }
            TokenKind::Eof => Ok(()),
            other => Err(self.err(format!("expected end of statement, found {other:?}"))),
        }
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(w) if w == word)
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if self.at_ident(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident_word(&mut self, word: &str) -> Result<(), ParseError> {
        if self.eat_ident(word) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{word}`, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect(&mut self, k: &TokenKind) -> Result<(), ParseError> {
        if self.peek() == k {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {k:?}, found {:?}", self.peek())))
        }
    }

    // ---- program units -------------------------------------------------

    fn unit(&mut self) -> Result<Routine, ParseError> {
        let kind = if self.eat_ident("program") {
            RoutineKind::Program
        } else if self.eat_ident("subroutine") {
            RoutineKind::Subroutine
        } else {
            return Err(self.err(format!(
                "expected PROGRAM or SUBROUTINE, found {:?}",
                self.peek()
            )));
        };
        let name = self.ident()?;
        let mut params = Vec::new();
        if matches!(self.peek(), TokenKind::LParen) {
            self.bump();
            if !matches!(self.peek(), TokenKind::RParen) {
                loop {
                    params.push(self.ident()?);
                    if matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect_newline()?;

        let mut r = Routine {
            name,
            kind,
            params,
            types: Vec::new(),
            arrays: Vec::new(),
            parameters: Vec::new(),
            commons: Vec::new(),
            equivalences: Vec::new(),
            body: Vec::new(),
        };
        // Declarations and executable statements, until END.
        loop {
            self.skip_newlines();
            if self.at_ident("end")
                && !matches!(self.peek2(), Some(TokenKind::Ident(w)) if w == "do" || w == "if")
            {
                self.bump();
                self.expect_newline()?;
                break;
            }
            if self.decl(&mut r)? {
                continue;
            }
            let stmt = self.statement()?;
            r.body.push(stmt);
        }
        Ok(r)
    }

    /// Parses one declaration if the upcoming statement is one; returns
    /// whether it consumed anything.
    fn decl(&mut self, r: &mut Routine) -> Result<bool, ParseError> {
        let ty = if self.at_ident("integer") {
            Some(Ty::Integer)
        } else if self.at_ident("real") {
            Some(Ty::Real)
        } else if self.at_ident("logical") {
            Some(Ty::Logical)
        } else if self.at_ident("double") {
            Some(Ty::Real)
        } else {
            None
        };
        if let Some(ty) = ty {
            self.bump();
            if ty == Ty::Real {
                // swallow `precision` of DOUBLE PRECISION
                self.eat_ident("precision");
            }
            loop {
                let name = self.ident()?;
                r.types.push((name.clone(), ty));
                if matches!(self.peek(), TokenKind::LParen) {
                    let dims = self.dim_list()?;
                    r.arrays.push((name, dims));
                }
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect_newline()?;
            return Ok(true);
        }
        if self.eat_ident("dimension") {
            loop {
                let name = self.ident()?;
                let dims = self.dim_list()?;
                r.arrays.push((name, dims));
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect_newline()?;
            return Ok(true);
        }
        if self.eat_ident("parameter") {
            self.expect(&TokenKind::LParen)?;
            loop {
                let name = self.ident()?;
                self.expect(&TokenKind::Assign)?;
                let value = self.expr()?;
                r.parameters.push((name, value));
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            self.expect_newline()?;
            return Ok(true);
        }
        if self.eat_ident("common") {
            while matches!(self.peek(), TokenKind::Slash) {
                self.bump();
                let block = self.ident()?;
                self.expect(&TokenKind::Slash)?;
                let mut names = Vec::new();
                loop {
                    let name = self.ident()?;
                    if matches!(self.peek(), TokenKind::LParen) {
                        let dims = self.dim_list()?;
                        r.arrays.push((name.clone(), dims));
                    }
                    names.push(name);
                    if matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                r.commons.push((block, names));
            }
            self.expect_newline()?;
            return Ok(true);
        }
        if self.eat_ident("equivalence") {
            loop {
                self.expect(&TokenKind::LParen)?;
                let mut group = Vec::new();
                loop {
                    let name = self.ident()?;
                    let subs = if matches!(self.peek(), TokenKind::LParen) {
                        self.bump();
                        let mut subs = vec![self.expr()?];
                        while matches!(self.peek(), TokenKind::Comma) {
                            self.bump();
                            subs.push(self.expr()?);
                        }
                        self.expect(&TokenKind::RParen)?;
                        subs
                    } else {
                        Vec::new()
                    };
                    group.push((name, subs));
                    if matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
                if group.len() < 2 {
                    return Err(self.err("EQUIVALENCE group needs at least two items"));
                }
                group.sort_by(|a, b| a.0.cmp(&b.0));
                r.equivalences.push(group);
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect_newline()?;
            return Ok(true);
        }
        Ok(false)
    }

    fn dim_list(&mut self) -> Result<Vec<DimBound>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut dims = Vec::new();
        loop {
            if matches!(self.peek(), TokenKind::Star) {
                self.bump();
                dims.push(DimBound::Assumed);
            } else {
                let a = self.expr()?;
                if matches!(self.peek(), TokenKind::Colon) {
                    self.bump();
                    let b = self.expr()?;
                    dims.push(DimBound::Both(a, b));
                } else {
                    dims.push(DimBound::Upper(a));
                }
            }
            if matches!(self.peek(), TokenKind::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(dims)
    }

    // ---- statements ----------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        self.descend(3)?;
        let r = self.statement_inner();
        self.ascend(3);
        r
    }

    fn statement_inner(&mut self) -> Result<Stmt, ParseError> {
        self.skip_newlines();
        let line = self.cur_line();
        let label = if let TokenKind::Int(v) = self.peek() {
            let v = *v;
            self.bump();
            Some(u32::try_from(v).map_err(|_| self.err("label out of range"))?)
        } else {
            None
        };
        let kind = self.stmt_kind()?;
        Ok(Stmt { label, line, kind })
    }

    /// A simple statement usable as the body of a logical IF.
    fn simple_stmt_kind(&mut self) -> Result<StmtKind, ParseError> {
        if self.eat_ident("goto") {
            return self.goto_tail();
        }
        if self.at_ident("go") && matches!(self.peek2(), Some(TokenKind::Ident(w)) if w == "to") {
            self.bump();
            self.bump();
            return self.goto_tail();
        }
        if self.eat_ident("call") {
            return self.call_tail();
        }
        if self.eat_ident("return") {
            return Ok(StmtKind::Return);
        }
        if self.eat_ident("continue") {
            return Ok(StmtKind::Continue);
        }
        if self.eat_ident("stop") {
            return Ok(StmtKind::Stop);
        }
        self.assignment_tail()
    }

    fn goto_tail(&mut self) -> Result<StmtKind, ParseError> {
        match self.bump() {
            TokenKind::Int(v) => Ok(StmtKind::Goto(
                u32::try_from(v).map_err(|_| self.err("label out of range"))?,
            )),
            other => Err(self.err(format!("expected label after GOTO, found {other:?}"))),
        }
    }

    fn call_tail(&mut self) -> Result<StmtKind, ParseError> {
        let name = self.ident()?;
        let mut args = Vec::new();
        if matches!(self.peek(), TokenKind::LParen) {
            self.bump();
            if !matches!(self.peek(), TokenKind::RParen) {
                loop {
                    args.push(self.expr()?);
                    if matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(StmtKind::Call(name, args))
    }

    fn assignment_tail(&mut self) -> Result<StmtKind, ParseError> {
        let name = self.ident()?;
        let lhs = if matches!(self.peek(), TokenKind::LParen) {
            self.bump();
            let mut subs = Vec::new();
            loop {
                subs.push(self.expr()?);
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            LValue::Element(name, subs)
        } else {
            LValue::Var(name)
        };
        self.expect(&TokenKind::Assign)?;
        let rhs = self.expr()?;
        Ok(StmtKind::Assign(lhs, rhs))
    }

    fn stmt_kind(&mut self) -> Result<StmtKind, ParseError> {
        if self.at_ident("if") {
            return self.if_stmt();
        }
        if self.at_ident("do") {
            return self.do_stmt();
        }
        let k = self.simple_stmt_kind()?;
        self.expect_newline()?;
        Ok(k)
    }

    fn if_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect_ident_word("if")?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        if self.eat_ident("then") {
            self.expect_newline()?;
            let (then_body, else_body) = self.if_block_tail()?;
            return Ok(StmtKind::If {
                cond,
                then_body,
                else_body,
            });
        }
        // Logical IF.
        let line = self.cur_line();
        let inner = self.simple_stmt_kind()?;
        self.expect_newline()?;
        Ok(StmtKind::LogicalIf(
            cond,
            Box::new(Stmt {
                label: None,
                line,
                kind: inner,
            }),
        ))
    }

    /// Parses the statements of a block IF after `THEN`, handling `ELSE`,
    /// `ELSE IF (…) THEN`, `ENDIF`/`END IF`.
    fn if_block_tail(&mut self) -> Result<(Vec<Stmt>, Vec<Stmt>), ParseError> {
        let mut then_body = Vec::new();
        loop {
            self.skip_newlines();
            let line = self.cur_line();
            if self.eat_ident("endif") {
                self.expect_newline()?;
                return Ok((then_body, Vec::new()));
            }
            if self.at_ident("end")
                && matches!(self.peek2(), Some(TokenKind::Ident(w)) if w == "if")
            {
                self.bump();
                self.bump();
                self.expect_newline()?;
                return Ok((then_body, Vec::new()));
            }
            if self.eat_ident("elseif") {
                // ELSEIF (cond) THEN … : desugar into else { if … }
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect_ident_word("then")?;
                self.expect_newline()?;
                let (tb, eb) = self.if_block_tail()?;
                let nested = Stmt {
                    label: None,
                    line,
                    kind: StmtKind::If {
                        cond,
                        then_body: tb,
                        else_body: eb,
                    },
                };
                return Ok((then_body, vec![nested]));
            }
            if self.eat_ident("else") {
                if self.at_ident("if") {
                    // ELSE IF (cond) THEN …
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let cond = self.expr()?;
                    self.expect(&TokenKind::RParen)?;
                    self.expect_ident_word("then")?;
                    self.expect_newline()?;
                    let (tb, eb) = self.if_block_tail()?;
                    let nested = Stmt {
                        label: None,
                        line,
                        kind: StmtKind::If {
                            cond,
                            then_body: tb,
                            else_body: eb,
                        },
                    };
                    return Ok((then_body, vec![nested]));
                }
                self.expect_newline()?;
                let mut else_body = Vec::new();
                loop {
                    self.skip_newlines();
                    if self.eat_ident("endif") {
                        self.expect_newline()?;
                        return Ok((then_body, else_body));
                    }
                    if self.at_ident("end")
                        && matches!(self.peek2(), Some(TokenKind::Ident(w)) if w == "if")
                    {
                        self.bump();
                        self.bump();
                        self.expect_newline()?;
                        return Ok((then_body, else_body));
                    }
                    else_body.push(self.statement()?);
                }
            }
            then_body.push(self.statement()?);
        }
    }

    fn do_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.expect_ident_word("do")?;
        // Optional terminator label: `DO 10 J = …`.
        let term_label = if let TokenKind::Int(v) = self.peek() {
            let v = *v;
            self.bump();
            Some(u32::try_from(v).map_err(|_| self.err("label out of range"))?)
        } else {
            None
        };
        let var = self.ident()?;
        self.expect(&TokenKind::Assign)?;
        let lo = self.expr()?;
        self.expect(&TokenKind::Comma)?;
        let hi = self.expr()?;
        let step = if matches!(self.peek(), TokenKind::Comma) {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_newline()?;

        let mut body = Vec::new();
        match term_label {
            Some(term) => loop {
                self.skip_newlines();
                if self.at_eof() {
                    return Err(self.err(format!("unterminated DO {term}")));
                }
                let stmt = self.statement()?;
                let is_term = stmt.label == Some(term);
                body.push(stmt);
                if is_term {
                    break;
                }
            },
            None => loop {
                self.skip_newlines();
                let line = self.cur_line();
                // ENDDO / END DO, possibly labeled (a GOTO target meaning
                // "end of iteration"): keep the label as a CONTINUE.
                let enddo_label = if let TokenKind::Int(v) = self.peek() {
                    if matches!(self.peek2(), Some(TokenKind::Ident(w)) if w == "enddo" || w == "end")
                    {
                        let v = *v;
                        self.bump();
                        Some(u32::try_from(v).map_err(|_| self.err("label out of range"))?)
                    } else {
                        None
                    }
                } else {
                    None
                };
                if self.eat_ident("enddo") {
                    self.expect_newline()?;
                    if let Some(l) = enddo_label {
                        body.push(Stmt {
                            label: Some(l),
                            line,
                            kind: StmtKind::Continue,
                        });
                    }
                    break;
                }
                if self.at_ident("end")
                    && matches!(self.peek2(), Some(TokenKind::Ident(w)) if w == "do")
                {
                    self.bump();
                    self.bump();
                    self.expect_newline()?;
                    if let Some(l) = enddo_label {
                        body.push(Stmt {
                            label: Some(l),
                            line,
                            kind: StmtKind::Continue,
                        });
                    }
                    break;
                }
                if enddo_label.is_some() {
                    return Err(self.err("label not followed by ENDDO"));
                }
                if self.at_eof() {
                    return Err(self.err("unterminated DO"));
                }
                body.push(self.statement()?);
            },
        }
        Ok(StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
        })
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.descend(2)?;
        let e = self.expr_or();
        self.ascend(2);
        e
    }

    fn expr_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_and()?;
        while matches!(self.peek(), TokenKind::DotOp(w) if w == "or") {
            self.bump();
            let r = self.expr_and()?;
            e = Expr::bin(BinOp::Or, e, r);
        }
        Ok(e)
    }

    fn expr_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_not()?;
        while matches!(self.peek(), TokenKind::DotOp(w) if w == "and") {
            self.bump();
            let r = self.expr_not()?;
            e = Expr::bin(BinOp::And, e, r);
        }
        Ok(e)
    }

    fn expr_not(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), TokenKind::DotOp(w) if w == "not") {
            self.bump();
            self.descend(2)?;
            let e = self.expr_not();
            self.ascend(2);
            return Ok(Expr::Un(UnOp::Not, Box::new(e?)));
        }
        self.expr_rel()
    }

    fn expr_rel(&mut self) -> Result<Expr, ParseError> {
        let e = self.expr_add()?;
        let op = match self.peek() {
            TokenKind::DotOp(w) => match w.as_str() {
                "lt" => Some(BinOp::Lt),
                "le" => Some(BinOp::Le),
                "gt" => Some(BinOp::Gt),
                "ge" => Some(BinOp::Ge),
                "eq" => Some(BinOp::Eq),
                "ne" => Some(BinOp::Ne),
                _ => None,
            },
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let r = self.expr_add()?;
            return Ok(Expr::bin(op, e, r));
        }
        Ok(e)
    }

    fn expr_add(&mut self) -> Result<Expr, ParseError> {
        let mut e = match self.peek() {
            TokenKind::Minus => {
                self.bump();
                Expr::Un(UnOp::Neg, Box::new(self.expr_mul()?))
            }
            TokenKind::Plus => {
                self.bump();
                self.expr_mul()?
            }
            _ => self.expr_mul()?,
        };
        loop {
            match self.peek() {
                TokenKind::Plus => {
                    self.bump();
                    let r = self.expr_mul()?;
                    e = Expr::bin(BinOp::Add, e, r);
                }
                TokenKind::Minus => {
                    self.bump();
                    let r = self.expr_mul()?;
                    e = Expr::bin(BinOp::Sub, e, r);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn expr_mul(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_pow()?;
        loop {
            match self.peek() {
                TokenKind::Star => {
                    self.bump();
                    let r = self.expr_pow()?;
                    e = Expr::bin(BinOp::Mul, e, r);
                }
                TokenKind::Slash => {
                    self.bump();
                    let r = self.expr_pow()?;
                    e = Expr::bin(BinOp::Div, e, r);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn expr_pow(&mut self) -> Result<Expr, ParseError> {
        let base = self.primary()?;
        if matches!(self.peek(), TokenKind::StarStar) {
            self.bump();
            // ** is right-associative.
            self.descend(2)?;
            let exp = self.expr_pow();
            self.ascend(2);
            return Ok(Expr::bin(BinOp::Pow, base, exp?));
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::Int(v)),
            TokenKind::Real(v) => Ok(Expr::Real(v)),
            TokenKind::Logical(v) => Ok(Expr::Logical(v)),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if matches!(self.peek(), TokenKind::LParen) {
                    self.bump();
                    let mut subs = Vec::new();
                    if !matches!(self.peek(), TokenKind::RParen) {
                        loop {
                            subs.push(self.expr()?);
                            if matches!(self.peek(), TokenKind::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Index(name, subs))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> Routine {
        let p = parse_program(src).unwrap();
        assert_eq!(p.routines.len(), 1);
        p.routines.into_iter().next().unwrap()
    }

    const IN_SUB: &str = "
      SUBROUTINE in(B, x, mm)
      REAL B(*)
      IF (x .GT. SIZE) RETURN
      DO J = 1, mm
        B(J) = 0.0
      ENDDO
      END
";

    #[test]
    fn parse_paper_subroutine_in() {
        let r = parse_one(IN_SUB);
        assert_eq!(r.name, "in");
        assert_eq!(r.kind, RoutineKind::Subroutine);
        assert_eq!(r.params, vec!["b", "x", "mm"]);
        assert_eq!(r.arrays.len(), 1);
        assert_eq!(r.body.len(), 2);
        match &r.body[0].kind {
            StmtKind::LogicalIf(cond, inner) => {
                assert!(matches!(cond, Expr::Bin(BinOp::Gt, _, _)));
                assert!(matches!(inner.kind, StmtKind::Return));
            }
            other => panic!("expected logical IF, got {other:?}"),
        }
        match &r.body[1].kind {
            StmtKind::Do { var, body, .. } => {
                assert_eq!(var, "j");
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected DO, got {other:?}"),
        }
    }

    #[test]
    fn parse_equivalence_groups() {
        let r = parse_one(
            "
      PROGRAM t
      REAL x(10), y(4), s
      EQUIVALENCE (x(3), y(1)), (s, x(10))
      END
",
        );
        assert_eq!(r.equivalences.len(), 2);
        // Groups are canonicalized by name.
        assert_eq!(r.equivalences[0][0].0, "x");
        assert_eq!(r.equivalences[0][1].0, "y");
        assert_eq!(r.equivalences[0][0].1, vec![Expr::Int(3)]);
        assert_eq!(r.equivalences[1][0].0, "s");
        assert!(r.equivalences[1][0].1.is_empty());
        assert_eq!(r.equivalences[1][1].1, vec![Expr::Int(10)]);
    }

    #[test]
    fn equivalence_single_item_rejected() {
        assert!(parse_program(
            "
      PROGRAM t
      EQUIVALENCE (x(1))
      END
"
        )
        .is_err());
    }

    #[test]
    fn labeled_do_with_continue() {
        let r = parse_one(
            "
      PROGRAM t
      DO 10 K = 1, 9
        B(K) = 0
10    CONTINUE
      END
",
        );
        match &r.body[0].kind {
            StmtKind::Do { body, .. } => {
                assert_eq!(body.len(), 2);
                assert_eq!(body[1].label, Some(10));
                assert!(matches!(body[1].kind, StmtKind::Continue));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn goto_to_labeled_enddo() {
        // Fig 1(a) style: conditional skip to end of iteration.
        let r = parse_one(
            "
      PROGRAM t
      DO K = 2, 5
        IF (B(K+4).GT.cut2) goto 1
        A(K+4) = 0
1     ENDDO
      END
",
        );
        match &r.body[0].kind {
            StmtKind::Do { body, .. } => {
                assert_eq!(body.len(), 3);
                assert!(matches!(body[0].kind, StmtKind::LogicalIf(..)));
                assert_eq!(body[2].label, Some(1));
                assert!(matches!(body[2].kind, StmtKind::Continue));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn block_if_else() {
        let r = parse_one(
            "
      PROGRAM t
      IF (.NOT. p) THEN
        a(jmax) = 1
      ELSE
        a(1) = 2
      ENDIF
      END
",
        );
        match &r.body[0].kind {
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                assert!(matches!(cond, Expr::Un(UnOp::Not, _)));
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn elseif_desugars() {
        let r = parse_one(
            "
      PROGRAM t
      IF (x .GT. 1) THEN
        y = 1
      ELSE IF (x .GT. 0) THEN
        y = 2
      ELSE
        y = 3
      END IF
      END
",
        );
        match &r.body[0].kind {
            StmtKind::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0].kind, StmtKind::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn declarations() {
        let r = parse_one(
            "
      SUBROUTINE s(n)
      INTEGER n, kc, jm(5)
      REAL a(100), b(10, 0:n)
      LOGICAL p
      DIMENSION w(1000)
      PARAMETER (size = 64)
      COMMON /blk/ q, r
      RETURN
      END
",
        );
        assert_eq!(r.types.len(), 6);
        assert_eq!(r.arrays.len(), 4);
        let b = r.arrays.iter().find(|(n, _)| n == "b").unwrap();
        assert_eq!(b.1.len(), 2);
        assert!(matches!(b.1[1], DimBound::Both(..)));
        assert_eq!(r.parameters.len(), 1);
        assert_eq!(r.commons.len(), 1);
    }

    #[test]
    fn do_with_step() {
        let r = parse_one(
            "      PROGRAM t\n      DO i = 1, n, 2\n      x = i\n      ENDDO\n      END\n",
        );
        match &r.body[0].kind {
            StmtKind::Do { step, .. } => assert_eq!(step, &Some(Expr::Int(2))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn call_and_goto_forms() {
        let r = parse_one(
            "
      PROGRAM t
      call in(A, x, m)
      go to 20
20    continue
      stop
      END
",
        );
        assert!(matches!(r.body[0].kind, StmtKind::Call(..)));
        assert!(matches!(r.body[1].kind, StmtKind::Goto(20)));
        assert_eq!(r.body[2].label, Some(20));
        assert!(matches!(r.body[3].kind, StmtKind::Stop));
    }

    #[test]
    fn expression_precedence() {
        let r = parse_one("      PROGRAM t\n      x = a + b * c ** 2\n      END\n");
        match &r.body[0].kind {
            StmtKind::Assign(_, e) => {
                assert_eq!(e.to_string(), "(a+(b*(c**2)))");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn logical_precedence() {
        let r = parse_one(
            "      PROGRAM t\n      p = .NOT. a .LT. b .AND. c .GT. d .OR. q\n      END\n",
        );
        match &r.body[0].kind {
            StmtKind::Assign(_, e) => {
                // ((NOT (a<b)) AND (c>d)) OR q
                assert_eq!(e.to_string(), "(((.NOT.(a.LT.b)).AND.(c.GT.d)).OR.q)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiple_units() {
        let p = parse_program(
            "
      PROGRAM main
      call s()
      END
      SUBROUTINE s()
      RETURN
      END
",
        )
        .unwrap();
        assert_eq!(p.routines.len(), 2);
        assert!(p.main().is_some());
        assert!(p.routine("s").is_some());
    }

    #[test]
    fn unterminated_do_errors() {
        assert!(
            parse_program("      PROGRAM t\n      DO i = 1, 5\n      x = 1\n      END\n").is_err()
        );
    }

    #[test]
    fn errors_report_lines() {
        let e = parse_program("      PROGRAM t\n      x = = 1\n      END\n").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
