//! A Fortran-77-subset front end.
//!
//! The paper's analyzer (Panorama) consumes Fortran programs; this crate is
//! the reconstruction of that substrate: a lexer, a recursive-descent
//! parser and a semantic checker for the language subset the evaluation
//! kernels need:
//!
//! * `PROGRAM` / `SUBROUTINE` units with parameters,
//! * `INTEGER` / `REAL` / `LOGICAL` declarations, `DIMENSION`,
//!   `PARAMETER`, `COMMON`, `EQUIVALENCE`,
//! * assignments, arithmetic/relational/logical expressions with the
//!   classic `.GT.`-style operators, intrinsic calls,
//! * `DO` loops (both `DO label …`/`label CONTINUE` and `DO …`/`ENDDO`),
//! * block `IF`/`ELSE IF`/`ELSE`/`ENDIF` and logical `IF`,
//! * `GOTO`, statement labels, `CALL`, `RETURN`, `CONTINUE`, `STOP`.
//!
//! Input is accepted in a liberal free-form style: column rules are not
//! enforced, `c`/`C`/`*` in column 1 and `!` anywhere start comments,
//! keywords are case-insensitive, and statements end at end of line.

#![warn(missing_docs)]

mod ast;
mod lexer;
mod parser;
pub mod printer;
mod sema;

pub use ast::{
    BinOp, DimBound, Expr, LValue, Program, Routine, RoutineKind, Stmt, StmtKind, Ty, UnOp,
};
pub use lexer::{lex, LexError, Token, TokenKind};
pub use parser::{parse_program, ParseError};
pub use printer::{print_program, print_program_annotated, strip_lines, Annotator};
pub use sema::{
    analyze, implicit_ty, ArrayInfo, ProgramSema, SemaError, StorageClass, StorageLoc, SymbolKind,
    SymbolTable, ELEM_BYTES, INTRINSICS,
};
