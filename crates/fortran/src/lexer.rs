//! Tokenizer for the Fortran subset.

use std::fmt;

/// Token kinds. Identifiers and keywords are lower-cased.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (lower-cased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `.TRUE.` / `.FALSE.`
    Logical(bool),
    /// Dot-operators and `.NOT.`: one of `lt le gt ge eq ne and or not`.
    DotOp(String),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `**`
    StarStar,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `:`
    Colon,
    /// End of statement (newline).
    Newline,
    /// End of input.
    Eof,
}

/// A token with its source line (1-based).
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// Kind.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
}

/// A lexing failure.
#[derive(Clone, PartialEq, Debug)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a source string. Comment lines start with `c`, `C` or `*` in
/// column 1 or `!` anywhere; a trailing `&` continues the statement onto
/// the next line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut continuation = false;
    for (lineno0, raw_line) in src.lines().enumerate() {
        let line = lineno0 as u32 + 1;
        // Full-line comments: '*' in column 1, or 'c'/'C' in column 1
        // followed by whitespace / end of line (so `call`, `continue`,
        // `cut2 = …` written flush left still lex as code).
        let mut chars = raw_line.chars();
        let c0 = chars.next();
        let c1 = chars.next();
        if c0 == Some('*')
            || (matches!(c0, Some('c') | Some('C'))
                && (c1.is_none() || c1.is_some_and(|c| c.is_whitespace())))
        {
            continue;
        }
        // Inline comment.
        let text = match raw_line.find('!') {
            Some(p) => &raw_line[..p],
            None => raw_line,
        };
        if text.trim().is_empty() {
            continue;
        }
        let mut text = text.trim_end();
        let continued_next = text.ends_with('&');
        if continued_next {
            text = text[..text.len() - 1].trim_end();
        }
        if continuation {
            // drop a leading '&' on continuation lines
            let t = text.trim_start();
            let t = t.strip_prefix('&').unwrap_or(t);
            lex_line(t, line, &mut out)?;
        } else {
            lex_line(text, line, &mut out)?;
        }
        if continued_next {
            continuation = true;
        } else {
            continuation = false;
            out.push(Token {
                kind: TokenKind::Newline,
                line,
            });
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line: src.lines().count() as u32 + 1,
    });
    Ok(out)
}

fn lex_line(text: &str, line: u32, out: &mut Vec<Token>) -> Result<(), LexError> {
    let b = text.as_bytes();
    let mut i = 0usize;
    let err = |m: &str| LexError {
        message: m.to_string(),
        line,
    };
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' => i += 1,
            b'(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
                i += 1;
            }
            b')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
                i += 1;
            }
            b',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
                i += 1;
            }
            b'=' => {
                out.push(Token {
                    kind: TokenKind::Assign,
                    line,
                });
                i += 1;
            }
            b':' => {
                out.push(Token {
                    kind: TokenKind::Colon,
                    line,
                });
                i += 1;
            }
            b'+' => {
                out.push(Token {
                    kind: TokenKind::Plus,
                    line,
                });
                i += 1;
            }
            b'-' => {
                out.push(Token {
                    kind: TokenKind::Minus,
                    line,
                });
                i += 1;
            }
            b'/' => {
                out.push(Token {
                    kind: TokenKind::Slash,
                    line,
                });
                i += 1;
            }
            b'*' => {
                if i + 1 < b.len() && b[i + 1] == b'*' {
                    out.push(Token {
                        kind: TokenKind::StarStar,
                        line,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Star,
                        line,
                    });
                    i += 1;
                }
            }
            b'.' => {
                // Either a dot operator (.gt.) or a real literal (.5).
                if i + 1 < b.len() && b[i + 1].is_ascii_alphabetic() {
                    let start = i + 1;
                    let mut j = start;
                    while j < b.len() && b[j].is_ascii_alphabetic() {
                        j += 1;
                    }
                    if j >= b.len() || b[j] != b'.' {
                        return Err(err("unterminated dot-operator"));
                    }
                    let word = text[start..j].to_ascii_lowercase();
                    i = j + 1;
                    match word.as_str() {
                        "true" => out.push(Token {
                            kind: TokenKind::Logical(true),
                            line,
                        }),
                        "false" => out.push(Token {
                            kind: TokenKind::Logical(false),
                            line,
                        }),
                        "lt" | "le" | "gt" | "ge" | "eq" | "ne" | "and" | "or" | "not" => {
                            out.push(Token {
                                kind: TokenKind::DotOp(word),
                                line,
                            })
                        }
                        other => return Err(err(&format!("unknown operator .{other}."))),
                    }
                } else if i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    let (tok, ni) = lex_number(text, i, line)?;
                    out.push(tok);
                    i = ni;
                } else {
                    return Err(err("stray '.'"));
                }
            }
            b'0'..=b'9' => {
                let (tok, ni) = lex_number(text, i, line)?;
                out.push(tok);
                i = ni;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(text[start..i].to_ascii_lowercase()),
                    line,
                });
            }
            other => return Err(err(&format!("unexpected character {:?}", other as char))),
        }
    }
    Ok(())
}

/// Lexes an integer or real literal starting at `i`.
fn lex_number(text: &str, i: usize, line: u32) -> Result<(Token, usize), LexError> {
    let b = text.as_bytes();
    let start = i;
    let mut j = i;
    let mut is_real = false;
    while j < b.len() && b[j].is_ascii_digit() {
        j += 1;
    }
    // A '.' is part of the number only if NOT followed by a letter (which
    // would be a dot-operator like 1.and.…).
    if j < b.len() && b[j] == b'.' && !(j + 1 < b.len() && b[j + 1].is_ascii_alphabetic()) {
        is_real = true;
        j += 1;
        while j < b.len() && b[j].is_ascii_digit() {
            j += 1;
        }
    }
    if j < b.len() && (b[j] == b'e' || b[j] == b'E' || b[j] == b'd' || b[j] == b'D') {
        let mut k = j + 1;
        if k < b.len() && (b[k] == b'+' || b[k] == b'-') {
            k += 1;
        }
        if k < b.len() && b[k].is_ascii_digit() {
            is_real = true;
            j = k;
            while j < b.len() && b[j].is_ascii_digit() {
                j += 1;
            }
        }
    }
    let lit = &text[start..j];
    let kind = if is_real {
        let norm = lit.replace(['d', 'D'], "e");
        TokenKind::Real(norm.parse::<f64>().map_err(|e| LexError {
            message: format!("bad real literal {lit}: {e}"),
            line,
        })?)
    } else {
        TokenKind::Int(lit.parse::<i64>().map_err(|e| LexError {
            message: format!("bad integer literal {lit}: {e}"),
            line,
        })?)
    };
    Ok((Token { kind, line }, j))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_assignment() {
        let k = kinds("A(J) = B + 1");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::LParen,
                TokenKind::Ident("j".into()),
                TokenKind::RParen,
                TokenKind::Assign,
                TokenKind::Ident("b".into()),
                TokenKind::Plus,
                TokenKind::Int(1),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dot_operators() {
        let k = kinds("IF (B(K).GT.cut2) kc = kc + 1");
        assert!(k.contains(&TokenKind::DotOp("gt".into())));
        let k2 = kinds(".NOT. p .AND. .TRUE.");
        assert_eq!(k2[0], TokenKind::DotOp("not".into()));
        assert_eq!(k2[2], TokenKind::DotOp("and".into()));
        assert_eq!(k2[3], TokenKind::Logical(true));
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("C a comment line\n      x = 1 ! trailing\n* another\n");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Newline,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn call_in_column_one_not_comment() {
        let k = kinds("call foo(x)\ncontinue\ncommon /blk/ a");
        assert!(k.contains(&TokenKind::Ident("call".into())));
        assert!(k.contains(&TokenKind::Ident("continue".into())));
        assert!(k.contains(&TokenKind::Ident("common".into())));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("4.25")[0], TokenKind::Real(4.25));
        assert_eq!(kinds("1e3")[0], TokenKind::Real(1000.0));
        assert_eq!(kinds("1.5d2")[0], TokenKind::Real(150.0));
        assert_eq!(kinds(".5")[0], TokenKind::Real(0.5));
    }

    #[test]
    fn integer_dot_operator_ambiguity() {
        // `1.and.` must lex as Int(1), .and.
        let k = kinds("IF (x .eq. 1.and.p) y = 2");
        assert!(k.contains(&TokenKind::Int(1)));
        assert!(k.contains(&TokenKind::DotOp("and".into())));
    }

    #[test]
    fn power_operator() {
        let k = kinds("x**2");
        assert_eq!(k[1], TokenKind::StarStar);
    }

    #[test]
    fn continuation_lines() {
        let k = kinds("x = 1 + &\n    2");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Plus,
                TokenKind::Int(2),
                TokenKind::Newline,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn labels_lex_as_ints() {
        let k = kinds("10    CONTINUE");
        assert_eq!(k[0], TokenKind::Int(10));
        assert_eq!(k[1], TokenKind::Ident("continue".into()));
    }

    #[test]
    fn errors() {
        assert!(lex("x = .bogus. y").is_err());
        assert!(lex("x = #").is_err());
    }
}
