//! Abstract syntax for the Fortran subset.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Base types.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Ty {
    /// `INTEGER`
    Integer,
    /// `REAL` (also used for `DOUBLE PRECISION`)
    Real,
    /// `LOGICAL`
    Logical,
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `**`
    Pow,
    /// `.LT.`
    Lt,
    /// `.LE.`
    Le,
    /// `.GT.`
    Gt,
    /// `.GE.`
    Ge,
    /// `.EQ.`
    Eq,
    /// `.NE.`
    Ne,
    /// `.AND.`
    And,
    /// `.OR.`
    Or,
}

impl BinOp {
    /// `true` for the six relational operators.
    pub fn is_relational(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// `true` for `.AND.`/`.OR.`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum UnOp {
    /// Unary minus.
    Neg,
    /// `.NOT.`
    Not,
}

/// Expressions.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `.TRUE.` / `.FALSE.`
    Logical(bool),
    /// Scalar variable reference.
    Var(String),
    /// `name(sub, …)` — an array element or a function/intrinsic call;
    /// disambiguated by semantic analysis via the symbol table.
    Index(String, Vec<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
}

impl Expr {
    /// Convenience constructor.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Box::new(l), Box::new(r))
    }

    /// Walks all sub-expressions (including self), pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Index(_, subs) => {
                for s in subs {
                    s.walk(f);
                }
            }
            Expr::Bin(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Un(_, a) => a.walk(f),
            _ => {}
        }
    }
}

/// Assignment targets.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum LValue {
    /// Scalar.
    Var(String),
    /// Array element.
    Element(String, Vec<Expr>),
}

impl LValue {
    /// The assigned variable/array name.
    pub fn name(&self) -> &str {
        match self {
            LValue::Var(n) | LValue::Element(n, _) => n,
        }
    }
}

/// One statement, with an optional numeric label.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Stmt {
    /// Statement label (GOTO target / DO terminator).
    pub label: Option<u32>,
    /// 1-based source line of the statement's first token; 0 for
    /// synthetic statements with no source location.
    pub line: u32,
    /// The statement proper.
    pub kind: StmtKind,
}

/// Statement kinds.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum StmtKind {
    /// `lhs = rhs`
    Assign(LValue, Expr),
    /// Block `IF (cond) THEN … [ELSE …] ENDIF`. `ELSE IF` chains are
    /// desugared into nested blocks by the parser.
    If {
        /// Condition.
        cond: Expr,
        /// THEN branch.
        then_body: Vec<Stmt>,
        /// ELSE branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// Logical `IF (cond) stmt`.
    LogicalIf(Expr, Box<Stmt>),
    /// `DO var = lo, hi[, step]` with its body.
    Do {
        /// Loop index variable.
        var: String,
        /// Lower bound.
        lo: Expr,
        /// Upper bound.
        hi: Expr,
        /// Step (default 1).
        step: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `GOTO label`
    Goto(u32),
    /// `CALL name(args…)`
    Call(String, Vec<Expr>),
    /// `RETURN`
    Return,
    /// `CONTINUE`
    Continue,
    /// `STOP`
    Stop,
}

/// Kinds of program units.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RoutineKind {
    /// `PROGRAM`
    Program,
    /// `SUBROUTINE`
    Subroutine,
}

/// Array dimension declarator.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum DimBound {
    /// `(expr)` — upper bound with implicit lower bound 1.
    Upper(Expr),
    /// `(lo:hi)` — explicit bounds.
    Both(Expr, Expr),
    /// `(*)` — assumed size.
    Assumed,
}

/// One program unit.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Routine {
    /// Unit name (lower-cased).
    pub name: String,
    /// PROGRAM or SUBROUTINE.
    pub kind: RoutineKind,
    /// Dummy parameter names, in order.
    pub params: Vec<String>,
    /// Explicit type declarations `name -> type`.
    pub types: Vec<(String, Ty)>,
    /// Array declarations `name -> dims` (from type or DIMENSION stmts).
    pub arrays: Vec<(String, Vec<DimBound>)>,
    /// `PARAMETER` constants.
    pub parameters: Vec<(String, Expr)>,
    /// `COMMON /block/ names`.
    pub commons: Vec<(String, Vec<String>)>,
    /// `EQUIVALENCE (item, item, …), …` — each group lists storage-
    /// associated items as `(name, subscripts)`; a bare name has no
    /// subscripts and anchors at its first element.
    pub equivalences: Vec<Vec<(String, Vec<Expr>)>>,
    /// Executable statements.
    pub body: Vec<Stmt>,
}

/// A whole source file: one or more routines.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Program {
    /// Routines in source order.
    pub routines: Vec<Routine>,
}

impl Program {
    /// Finds a routine by (lower-cased) name.
    pub fn routine(&self, name: &str) -> Option<&Routine> {
        let lname = name.to_ascii_lowercase();
        self.routines.iter().find(|r| r.name == lname)
    }

    /// The main program unit, if present.
    pub fn main(&self) -> Option<&Routine> {
        self.routines
            .iter()
            .find(|r| r.kind == RoutineKind::Program)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Real(v) => write!(f, "{v}"),
            Expr::Logical(true) => f.write_str(".TRUE."),
            Expr::Logical(false) => f.write_str(".FALSE."),
            Expr::Var(n) => f.write_str(n),
            Expr::Index(n, subs) => {
                write!(f, "{n}(")?;
                for (k, s) in subs.iter().enumerate() {
                    if k > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{s}")?;
                }
                f.write_str(")")
            }
            Expr::Bin(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Pow => "**",
                    BinOp::Lt => ".LT.",
                    BinOp::Le => ".LE.",
                    BinOp::Gt => ".GT.",
                    BinOp::Ge => ".GE.",
                    BinOp::Eq => ".EQ.",
                    BinOp::Ne => ".NE.",
                    BinOp::And => ".AND.",
                    BinOp::Or => ".OR.",
                };
                write!(f, "({a}{sym}{b})")
            }
            Expr::Un(UnOp::Neg, a) => write!(f, "(-{a})"),
            Expr::Un(UnOp::Not, a) => write!(f, "(.NOT.{a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display_roundtrippable_shape() {
        let e = Expr::bin(
            BinOp::Gt,
            Expr::Index("b".into(), vec![Expr::Var("k".into())]),
            Expr::Var("cut2".into()),
        );
        assert_eq!(e.to_string(), "(b(k).GT.cut2)");
    }

    #[test]
    fn walk_visits_all() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Index("a".into(), vec![Expr::Var("i".into())]),
            Expr::Int(1),
        );
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        assert_eq!(n, 4); // bin, index, var, int
    }

    #[test]
    fn program_lookup() {
        let p = Program {
            routines: vec![Routine {
                name: "main".into(),
                kind: RoutineKind::Program,
                params: vec![],
                types: vec![],
                arrays: vec![],
                parameters: vec![],
                commons: vec![],
                equivalences: vec![],
                body: vec![],
            }],
        };
        assert!(p.routine("MAIN").is_some());
        assert!(p.main().is_some());
        assert!(p.routine("nope").is_none());
    }
}
