//! Semantic analysis: symbol tables, implicit typing, array shapes, call
//! graph construction and recursion detection.

use crate::ast::*;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Fortran intrinsics recognized in expressions.
pub const INTRINSICS: &[&str] = &[
    "max", "min", "max0", "min0", "amax1", "amin1", "mod", "abs", "iabs", "sqrt", "exp", "log",
    "sin", "cos", "tan", "atan", "float", "real", "int", "nint", "dble", "sign", "dim",
];

/// What a name means inside a routine.
#[derive(Clone, PartialEq, Debug)]
pub enum SymbolKind {
    /// A scalar of the given type.
    Scalar(Ty),
    /// An array.
    Array(ArrayInfo),
    /// A `PARAMETER` constant.
    Constant(Expr, Ty),
}

/// Shape information for an array.
#[derive(Clone, PartialEq, Debug)]
pub struct ArrayInfo {
    /// Element type.
    pub ty: Ty,
    /// Declared dimension bounds.
    pub dims: Vec<DimBound>,
    /// `true` iff the array is a dummy parameter of the routine.
    pub is_param: bool,
    /// The COMMON block the array lives in, if any.
    pub common: Option<String>,
}

impl ArrayInfo {
    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }
}

/// Per-routine symbol table.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    symbols: BTreeMap<String, SymbolKind>,
    /// Scalars in COMMON blocks: name → block.
    scalar_commons: BTreeMap<String, String>,
}

impl SymbolTable {
    /// Looks up a name.
    pub fn get(&self, name: &str) -> Option<&SymbolKind> {
        self.symbols.get(name)
    }

    /// `true` iff `name` is a declared array.
    pub fn is_array(&self, name: &str) -> bool {
        matches!(self.symbols.get(name), Some(SymbolKind::Array(_)))
    }

    /// Array info for a declared array.
    pub fn array(&self, name: &str) -> Option<&ArrayInfo> {
        match self.symbols.get(name) {
            Some(SymbolKind::Array(a)) => Some(a),
            _ => None,
        }
    }

    /// The `PARAMETER` value of a constant.
    pub fn constant(&self, name: &str) -> Option<&Expr> {
        match self.symbols.get(name) {
            Some(SymbolKind::Constant(e, _)) => Some(e),
            _ => None,
        }
    }

    /// The type of a scalar (declared or implicit).
    pub fn scalar_ty(&self, name: &str) -> Option<Ty> {
        match self.symbols.get(name) {
            Some(SymbolKind::Scalar(t)) => Some(*t),
            Some(SymbolKind::Constant(_, t)) => Some(*t),
            _ => None,
        }
    }

    /// The COMMON block a name belongs to (scalar or array).
    pub fn common_block(&self, name: &str) -> Option<&str> {
        if let Some(SymbolKind::Array(a)) = self.symbols.get(name) {
            return a.common.as_deref();
        }
        self.scalar_commons.get(name).map(String::as_str)
    }

    /// Iterates all `(name, kind)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SymbolKind)> {
        self.symbols.iter().map(|(k, v)| (k.as_str(), v))
    }

    fn insert(&mut self, name: String, kind: SymbolKind) {
        self.symbols.insert(name, kind);
    }
}

/// Fortran implicit typing: names starting i–n are INTEGER, others REAL.
pub fn implicit_ty(name: &str) -> Ty {
    match name.chars().next() {
        Some(c @ 'i'..='n') if c.is_ascii_lowercase() => Ty::Integer,
        _ => Ty::Real,
    }
}

/// A semantic error.
#[derive(Clone, PartialEq, Debug)]
pub struct SemaError {
    /// Description.
    pub message: String,
    /// Routine in which the error was detected.
    pub routine: String,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in {}: {}", self.routine, self.message)
    }
}

impl std::error::Error for SemaError {}

/// The result of semantic analysis.
#[derive(Clone, Debug, Default)]
pub struct ProgramSema {
    /// Symbol table per routine name.
    pub tables: BTreeMap<String, SymbolTable>,
    /// Call graph: routine → distinct callees.
    pub call_graph: BTreeMap<String, BTreeSet<String>>,
    /// Routines in reverse topological (callee-first) order.
    pub bottom_up: Vec<String>,
}

/// Builds symbol tables and the call graph; rejects recursion, unknown
/// callees, and arity mismatches (mirroring the paper's assumptions:
/// acyclic call graphs).
pub fn analyze(program: &Program) -> Result<ProgramSema, SemaError> {
    let mut sema = ProgramSema::default();
    for r in &program.routines {
        let table = build_table(r)?;
        sema.tables.insert(r.name.clone(), table);
    }
    // Call graph + checks.
    for r in &program.routines {
        let mut callees = BTreeSet::new();
        collect_calls(&r.body, &mut |name, args| {
            callees.insert(name.to_string());
            if let Some(callee) = program.routine(name) {
                if callee.params.len() != args.len() {
                    return Err(SemaError {
                        message: format!(
                            "call to {name} passes {} args, expected {}",
                            args.len(),
                            callee.params.len()
                        ),
                        routine: r.name.clone(),
                    });
                }
            } else {
                return Err(SemaError {
                    message: format!("call to unknown subroutine {name}"),
                    routine: r.name.clone(),
                });
            }
            Ok(())
        })?;
        sema.call_graph.insert(r.name.clone(), callees);
    }
    // Topological order, callee-first; detects recursion.
    let mut order = Vec::new();
    let mut state: BTreeMap<&str, u8> = BTreeMap::new(); // 0 unvisited 1 active 2 done
    fn visit<'a>(
        n: &'a str,
        g: &'a BTreeMap<String, BTreeSet<String>>,
        state: &mut BTreeMap<&'a str, u8>,
        order: &mut Vec<String>,
    ) -> Result<(), SemaError> {
        match state.get(n).copied().unwrap_or(0) {
            1 => {
                return Err(SemaError {
                    message: "recursive call graph (unsupported)".into(),
                    routine: n.to_string(),
                })
            }
            2 => return Ok(()),
            _ => {}
        }
        state.insert(n, 1);
        if let Some(cs) = g.get(n) {
            for c in cs {
                visit(c, g, state, order)?;
            }
        }
        state.insert(n, 2);
        order.push(n.to_string());
        Ok(())
    }
    for r in &program.routines {
        visit(&r.name, &sema.call_graph, &mut state, &mut order)?;
    }
    sema.bottom_up = order;
    Ok(sema)
}

fn build_table(r: &Routine) -> Result<SymbolTable, SemaError> {
    let mut t = SymbolTable::default();
    let declared_ty: BTreeMap<&str, Ty> = r.types.iter().map(|(n, ty)| (n.as_str(), *ty)).collect();
    // COMMON membership.
    let mut common_of: BTreeMap<&str, &str> = BTreeMap::new();
    for (block, names) in &r.commons {
        for n in names {
            common_of.insert(n.as_str(), block.as_str());
        }
    }
    // Arrays.
    for (name, dims) in &r.arrays {
        let ty = declared_ty
            .get(name.as_str())
            .copied()
            .unwrap_or_else(|| implicit_ty(name));
        if t.is_array(name) {
            return Err(SemaError {
                message: format!("array {name} declared twice"),
                routine: r.name.clone(),
            });
        }
        t.insert(
            name.clone(),
            SymbolKind::Array(ArrayInfo {
                ty,
                dims: dims.clone(),
                is_param: r.params.contains(name),
                common: common_of.get(name.as_str()).map(|s| s.to_string()),
            }),
        );
    }
    // Parameters (constants).
    for (name, value) in &r.parameters {
        let ty = declared_ty
            .get(name.as_str())
            .copied()
            .unwrap_or_else(|| implicit_ty(name));
        t.insert(name.clone(), SymbolKind::Constant(value.clone(), ty));
    }
    // Declared scalars.
    for (name, ty) in &r.types {
        if t.get(name).is_none() {
            t.insert(name.clone(), SymbolKind::Scalar(*ty));
        }
    }
    // Dummy params and everything referenced get implicit scalar entries.
    for p in &r.params {
        if t.get(p).is_none() {
            t.insert(p.clone(), SymbolKind::Scalar(implicit_ty(p)));
        }
    }
    let mut mentioned = BTreeSet::new();
    collect_names(&r.body, &mut mentioned);
    for name in mentioned {
        if t.get(&name).is_none() && !INTRINSICS.contains(&name.as_str()) {
            t.insert(name.clone(), SymbolKind::Scalar(implicit_ty(&name)));
        }
    }
    // COMMON scalars.
    for (block, names) in &r.commons {
        for n in names {
            if !t.is_array(n) {
                t.scalar_commons.insert(n.clone(), block.clone());
                if t.get(n).is_none() {
                    t.insert(n.clone(), SymbolKind::Scalar(implicit_ty(n)));
                }
            }
        }
    }
    Ok(t)
}

/// Walks statements calling `f(name, args)` for every CALL.
fn collect_calls<'a>(
    stmts: &'a [Stmt],
    f: &mut impl FnMut(&'a str, &'a [Expr]) -> Result<(), SemaError>,
) -> Result<(), SemaError> {
    for s in stmts {
        match &s.kind {
            StmtKind::Call(name, args) => f(name, args)?,
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                collect_calls(then_body, f)?;
                collect_calls(else_body, f)?;
            }
            StmtKind::LogicalIf(_, inner) => collect_calls(std::slice::from_ref(inner), f)?,
            StmtKind::Do { body, .. } => collect_calls(body, f)?,
            _ => {}
        }
    }
    Ok(())
}

/// Collects every identifier mentioned in executable statements.
fn collect_names(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    fn expr_names(e: &Expr, out: &mut BTreeSet<String>) {
        e.walk(&mut |x| match x {
            Expr::Var(n) => {
                out.insert(n.clone());
            }
            Expr::Index(n, _) => {
                out.insert(n.clone());
            }
            _ => {}
        });
    }
    for s in stmts {
        match &s.kind {
            StmtKind::Assign(lhs, rhs) => {
                out.insert(lhs.name().to_string());
                if let LValue::Element(_, subs) = lhs {
                    for sub in subs {
                        expr_names(sub, out);
                    }
                }
                expr_names(rhs, out);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                expr_names(cond, out);
                collect_names(then_body, out);
                collect_names(else_body, out);
            }
            StmtKind::LogicalIf(cond, inner) => {
                expr_names(cond, out);
                collect_names(std::slice::from_ref(inner), out);
            }
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                out.insert(var.clone());
                expr_names(lo, out);
                expr_names(hi, out);
                if let Some(s) = step {
                    expr_names(s, out);
                }
                collect_names(body, out);
            }
            StmtKind::Call(_, args) => {
                for a in args {
                    expr_names(a, out);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn sema_of(src: &str) -> ProgramSema {
        analyze(&parse_program(src).unwrap()).unwrap()
    }

    const OCEAN_LIKE: &str = "
      PROGRAM main
      REAL A(1000)
      DO i = 1, n
        x = i
        call in(A, x, m)
        call out(A, x, m)
      ENDDO
      END
      SUBROUTINE in(B, x, mm)
      REAL B(*)
      IF (x .GT. 64.0) RETURN
      DO J = 1, mm
        B(J) = 0.0
      ENDDO
      END
      SUBROUTINE out(B, x, mm)
      REAL B(*)
      IF (x .GT. 64.0) RETURN
      DO J = 1, mm
        y = B(J)
      ENDDO
      END
";

    #[test]
    fn symbol_kinds() {
        let s = sema_of(OCEAN_LIKE);
        let main = &s.tables["main"];
        assert!(main.is_array("a"));
        assert_eq!(main.array("a").unwrap().rank(), 1);
        assert_eq!(main.scalar_ty("i"), Some(Ty::Integer));
        assert_eq!(main.scalar_ty("x"), Some(Ty::Real));
        let sub = &s.tables["in"];
        assert!(sub.is_array("b"));
        assert!(sub.array("b").unwrap().is_param);
    }

    #[test]
    fn call_graph_and_order() {
        let s = sema_of(OCEAN_LIKE);
        assert_eq!(
            s.call_graph["main"],
            BTreeSet::from(["in".to_string(), "out".to_string()])
        );
        // bottom-up: callees before main
        let pos = |n: &str| s.bottom_up.iter().position(|x| x == n).unwrap();
        assert!(pos("in") < pos("main"));
        assert!(pos("out") < pos("main"));
    }

    #[test]
    fn recursion_rejected() {
        let p = parse_program(
            "
      SUBROUTINE a()
      call b()
      END
      SUBROUTINE b()
      call a()
      END
",
        )
        .unwrap();
        let e = analyze(&p).unwrap_err();
        assert!(e.message.contains("recursive"));
    }

    #[test]
    fn unknown_callee_rejected() {
        let p = parse_program("      PROGRAM t\n      call nope(x)\n      END\n").unwrap();
        assert!(analyze(&p).is_err());
    }

    #[test]
    fn arity_checked() {
        let p = parse_program(
            "
      PROGRAM t
      call s(x)
      END
      SUBROUTINE s(a, b)
      RETURN
      END
",
        )
        .unwrap();
        let e = analyze(&p).unwrap_err();
        assert!(e.message.contains("args"));
    }

    #[test]
    fn parameters_and_common() {
        let s = sema_of(
            "
      PROGRAM t
      PARAMETER (size = 64)
      COMMON /blk/ w, q
      REAL w(100)
      x = size
      END
",
        );
        let t = &s.tables["t"];
        assert!(t.constant("size").is_some());
        assert_eq!(t.common_block("w"), Some("blk"));
        assert_eq!(t.common_block("q"), Some("blk"));
        assert!(t.is_array("w"));
        assert!(!t.is_array("q"));
    }

    #[test]
    fn intrinsics_not_scalars() {
        let s = sema_of("      PROGRAM t\n      x = max(a, b)\n      END\n");
        let t = &s.tables["t"];
        assert!(t.get("max").is_none());
        assert!(t.get("a").is_some());
    }

    #[test]
    fn implicit_typing_rule() {
        assert_eq!(implicit_ty("i"), Ty::Integer);
        assert_eq!(implicit_ty("n"), Ty::Integer);
        assert_eq!(implicit_ty("kc"), Ty::Integer);
        assert_eq!(implicit_ty("x"), Ty::Real);
        assert_eq!(implicit_ty("a"), Ty::Real);
    }
}
