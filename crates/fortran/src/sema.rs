//! Semantic analysis: symbol tables, implicit typing, array shapes, call
//! graph construction and recursion detection.

use crate::ast::*;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Fortran intrinsics recognized in expressions.
pub const INTRINSICS: &[&str] = &[
    "max", "min", "max0", "min0", "amax1", "amin1", "mod", "abs", "iabs", "sqrt", "exp", "log",
    "sin", "cos", "tan", "atan", "float", "real", "int", "nint", "dble", "sign", "dim",
];

/// What a name means inside a routine.
#[derive(Clone, PartialEq, Debug)]
pub enum SymbolKind {
    /// A scalar of the given type.
    Scalar(Ty),
    /// An array.
    Array(ArrayInfo),
    /// A `PARAMETER` constant.
    Constant(Expr, Ty),
}

/// Shape information for an array.
#[derive(Clone, PartialEq, Debug)]
pub struct ArrayInfo {
    /// Element type.
    pub ty: Ty,
    /// Declared dimension bounds.
    pub dims: Vec<DimBound>,
    /// `true` iff the array is a dummy parameter of the routine.
    pub is_param: bool,
    /// The COMMON block the array lives in, if any.
    pub common: Option<String>,
}

impl ArrayInfo {
    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }
}

/// Assumed element size for storage layout: every supported type
/// (INTEGER/REAL/LOGICAL) occupies one 4-byte storage unit, the classic
/// F77 storage-association model.
pub const ELEM_BYTES: i64 = 4;

/// The storage class a name's bytes belong to. Two names can only share
/// memory when they share a class.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum StorageClass {
    /// Bytes of the named COMMON block (offsets relative to block start).
    Common(String),
    /// A local EQUIVALENCE class, keyed by its lexicographically smallest
    /// member (offsets relative to the class's lowest address).
    Equiv(String),
}

impl fmt::Display for StorageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageClass::Common(b) => write!(f, "COMMON /{b}/"),
            StorageClass::Equiv(n) => write!(f, "EQUIVALENCE({n})"),
        }
    }
}

/// Where a name's storage lives: `(class, byte offset, byte extent)`.
/// `None` components mean "not statically known" and must be treated as
/// possibly overlapping anything in the same class. Names that never
/// appear in a COMMON or EQUIVALENCE statement have no [`StorageLoc`] —
/// their storage is private by the Fortran rules.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StorageLoc {
    /// The storage class.
    pub class: StorageClass,
    /// Byte offset of the name's first storage unit within the class.
    pub offset: Option<i64>,
    /// Total bytes the name occupies (arrays: element count × 4).
    pub extent: Option<i64>,
}

impl StorageLoc {
    /// Can the byte intervals of `self` and `other` overlap? Distinct
    /// classes never overlap; unknown offsets or extents within one class
    /// cannot be disproved and count as overlapping.
    pub fn may_overlap(&self, other: &StorageLoc) -> bool {
        if self.class != other.class {
            return false;
        }
        match (self.offset, self.extent, other.offset, other.extent) {
            (Some(ao), Some(ae), Some(bo), Some(be)) => ao < bo + be && bo < ao + ae,
            _ => true,
        }
    }
}

/// Per-routine symbol table.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    symbols: BTreeMap<String, SymbolKind>,
    /// Scalars in COMMON blocks: name → block.
    scalar_commons: BTreeMap<String, String>,
    /// Storage association: name → location, for every name that appears
    /// in a COMMON block or EQUIVALENCE group.
    storage: BTreeMap<String, StorageLoc>,
}

impl SymbolTable {
    /// Looks up a name.
    pub fn get(&self, name: &str) -> Option<&SymbolKind> {
        self.symbols.get(name)
    }

    /// `true` iff `name` is a declared array.
    pub fn is_array(&self, name: &str) -> bool {
        matches!(self.symbols.get(name), Some(SymbolKind::Array(_)))
    }

    /// Array info for a declared array.
    pub fn array(&self, name: &str) -> Option<&ArrayInfo> {
        match self.symbols.get(name) {
            Some(SymbolKind::Array(a)) => Some(a),
            _ => None,
        }
    }

    /// Constant-evaluated `(lo, hi)` bounds per dimension of a declared
    /// array; `None` components are symbolic or assumed-size. This is
    /// the declared-shape surface the value-range lint rules (P008)
    /// check proved subscript ranges against.
    pub fn declared_bounds(&self, name: &str) -> Option<Vec<(Option<i64>, Option<i64>)>> {
        let info = self.array(name)?;
        // PARAMETER constants may reference one another in any order;
        // iterate to a fixed point (terminates: each pass only adds).
        let mut consts: BTreeMap<String, i64> = BTreeMap::new();
        loop {
            let mut changed = false;
            for (n, k) in &self.symbols {
                if let SymbolKind::Constant(e, _) = k {
                    if !consts.contains_key(n) {
                        if let Some(v) = const_eval(e, &consts) {
                            consts.insert(n.clone(), v);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Some(
            info.dims
                .iter()
                .map(|d| match d {
                    DimBound::Upper(e) => (Some(1), const_eval(e, &consts)),
                    DimBound::Both(l, h) => (const_eval(l, &consts), const_eval(h, &consts)),
                    DimBound::Assumed => (Some(1), None),
                })
                .collect(),
        )
    }

    /// The `PARAMETER` value of a constant.
    pub fn constant(&self, name: &str) -> Option<&Expr> {
        match self.symbols.get(name) {
            Some(SymbolKind::Constant(e, _)) => Some(e),
            _ => None,
        }
    }

    /// The type of a scalar (declared or implicit).
    pub fn scalar_ty(&self, name: &str) -> Option<Ty> {
        match self.symbols.get(name) {
            Some(SymbolKind::Scalar(t)) => Some(*t),
            Some(SymbolKind::Constant(_, t)) => Some(*t),
            _ => None,
        }
    }

    /// The COMMON block a name belongs to (scalar or array).
    pub fn common_block(&self, name: &str) -> Option<&str> {
        if let Some(SymbolKind::Array(a)) = self.symbols.get(name) {
            return a.common.as_deref();
        }
        self.scalar_commons.get(name).map(String::as_str)
    }

    /// Iterates all `(name, kind)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SymbolKind)> {
        self.symbols.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The storage location of a name, when it is storage-associated.
    pub fn storage(&self, name: &str) -> Option<&StorageLoc> {
        self.storage.get(name)
    }

    /// Iterates all storage-associated names.
    pub fn storage_iter(&self) -> impl Iterator<Item = (&str, &StorageLoc)> {
        self.storage.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Can two names share any storage bytes? `false` whenever either has
    /// no storage association (private storage) or the classes differ.
    pub fn storage_overlaps(&self, a: &str, b: &str) -> bool {
        match (self.storage.get(a), self.storage.get(b)) {
            (Some(la), Some(lb)) => la.may_overlap(lb),
            _ => false,
        }
    }

    /// Every *other* name whose storage may overlap `name`'s. Empty for
    /// names with private storage. Deterministically ordered.
    pub fn storage_partners(&self, name: &str) -> Vec<&str> {
        let Some(loc) = self.storage.get(name) else {
            return Vec::new();
        };
        self.storage
            .iter()
            .filter(|(n, l)| n.as_str() != name && loc.may_overlap(l))
            .map(|(n, _)| n.as_str())
            .collect()
    }

    fn insert(&mut self, name: String, kind: SymbolKind) {
        self.symbols.insert(name, kind);
    }
}

/// Fortran implicit typing: names starting i–n are INTEGER, others REAL.
pub fn implicit_ty(name: &str) -> Ty {
    match name.chars().next() {
        Some(c @ 'i'..='n') if c.is_ascii_lowercase() => Ty::Integer,
        _ => Ty::Real,
    }
}

/// A semantic error.
#[derive(Clone, PartialEq, Debug)]
pub struct SemaError {
    /// Description.
    pub message: String,
    /// Routine in which the error was detected.
    pub routine: String,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in {}: {}", self.routine, self.message)
    }
}

impl std::error::Error for SemaError {}

/// The result of semantic analysis.
#[derive(Clone, Debug, Default)]
pub struct ProgramSema {
    /// Symbol table per routine name.
    pub tables: BTreeMap<String, SymbolTable>,
    /// Call graph: routine → distinct callees.
    pub call_graph: BTreeMap<String, BTreeSet<String>>,
    /// Routines in reverse topological (callee-first) order.
    pub bottom_up: Vec<String>,
    /// COMMON blocks reachable from each routine: those it declares plus
    /// those of every transitive callee. This is what a CALL can touch
    /// through global storage, so conservative call translation only
    /// needs to clobber these — not every block the *caller* sees.
    pub common_reach: BTreeMap<String, BTreeSet<String>>,
}

/// Builds symbol tables and the call graph; rejects recursion, unknown
/// callees, and arity mismatches (mirroring the paper's assumptions:
/// acyclic call graphs).
pub fn analyze(program: &Program) -> Result<ProgramSema, SemaError> {
    let _span = trace::span("sema_tables");
    let mut sema = ProgramSema::default();
    for r in &program.routines {
        let table = build_table(r)?;
        sema.tables.insert(r.name.clone(), table);
    }
    // Call graph + checks.
    for r in &program.routines {
        let mut callees = BTreeSet::new();
        collect_calls(&r.body, &mut |name, args| {
            callees.insert(name.to_string());
            if let Some(callee) = program.routine(name) {
                if callee.params.len() != args.len() {
                    return Err(SemaError {
                        message: format!(
                            "call to {name} passes {} args, expected {}",
                            args.len(),
                            callee.params.len()
                        ),
                        routine: r.name.clone(),
                    });
                }
            } else {
                return Err(SemaError {
                    message: format!("call to unknown subroutine {name}"),
                    routine: r.name.clone(),
                });
            }
            Ok(())
        })?;
        sema.call_graph.insert(r.name.clone(), callees);
    }
    // Topological order, callee-first; detects recursion.
    let mut order = Vec::new();
    let mut state: BTreeMap<&str, u8> = BTreeMap::new(); // 0 unvisited 1 active 2 done
    fn visit<'a>(
        n: &'a str,
        g: &'a BTreeMap<String, BTreeSet<String>>,
        state: &mut BTreeMap<&'a str, u8>,
        order: &mut Vec<String>,
    ) -> Result<(), SemaError> {
        match state.get(n).copied().unwrap_or(0) {
            1 => {
                return Err(SemaError {
                    message: "recursive call graph (unsupported)".into(),
                    routine: n.to_string(),
                })
            }
            2 => return Ok(()),
            _ => {}
        }
        state.insert(n, 1);
        if let Some(cs) = g.get(n) {
            for c in cs {
                visit(c, g, state, order)?;
            }
        }
        state.insert(n, 2);
        order.push(n.to_string());
        Ok(())
    }
    for r in &program.routines {
        visit(&r.name, &sema.call_graph, &mut state, &mut order)?;
    }
    sema.bottom_up = order;
    // Reachable COMMON blocks, callee-first so callee sets are complete.
    for name in &sema.bottom_up {
        let mut blocks: BTreeSet<String> = program
            .routine(name)
            .map(|r| r.commons.iter().map(|(b, _)| b.clone()).collect())
            .unwrap_or_default();
        if let Some(callees) = sema.call_graph.get(name) {
            for c in callees {
                if let Some(sub) = sema.common_reach.get(c) {
                    blocks.extend(sub.iter().cloned());
                }
            }
        }
        sema.common_reach.insert(name.clone(), blocks);
    }
    Ok(sema)
}

fn build_table(r: &Routine) -> Result<SymbolTable, SemaError> {
    let mut t = SymbolTable::default();
    let declared_ty: BTreeMap<&str, Ty> = r.types.iter().map(|(n, ty)| (n.as_str(), *ty)).collect();
    // COMMON membership.
    let mut common_of: BTreeMap<&str, &str> = BTreeMap::new();
    for (block, names) in &r.commons {
        for n in names {
            common_of.insert(n.as_str(), block.as_str());
        }
    }
    // Arrays.
    for (name, dims) in &r.arrays {
        let ty = declared_ty
            .get(name.as_str())
            .copied()
            .unwrap_or_else(|| implicit_ty(name));
        if t.is_array(name) {
            return Err(SemaError {
                message: format!("array {name} declared twice"),
                routine: r.name.clone(),
            });
        }
        t.insert(
            name.clone(),
            SymbolKind::Array(ArrayInfo {
                ty,
                dims: dims.clone(),
                is_param: r.params.contains(name),
                common: common_of.get(name.as_str()).map(|s| s.to_string()),
            }),
        );
    }
    // Parameters (constants).
    for (name, value) in &r.parameters {
        let ty = declared_ty
            .get(name.as_str())
            .copied()
            .unwrap_or_else(|| implicit_ty(name));
        t.insert(name.clone(), SymbolKind::Constant(value.clone(), ty));
    }
    // Declared scalars.
    for (name, ty) in &r.types {
        if t.get(name).is_none() {
            t.insert(name.clone(), SymbolKind::Scalar(*ty));
        }
    }
    // Dummy params and everything referenced get implicit scalar entries.
    for p in &r.params {
        if t.get(p).is_none() {
            t.insert(p.clone(), SymbolKind::Scalar(implicit_ty(p)));
        }
    }
    let mut mentioned = BTreeSet::new();
    collect_names(&r.body, &mut mentioned);
    for name in mentioned {
        if t.get(&name).is_none() && !INTRINSICS.contains(&name.as_str()) {
            t.insert(name.clone(), SymbolKind::Scalar(implicit_ty(&name)));
        }
    }
    // COMMON scalars.
    for (block, names) in &r.commons {
        for n in names {
            if !t.is_array(n) {
                t.scalar_commons.insert(n.clone(), block.clone());
                if t.get(n).is_none() {
                    t.insert(n.clone(), SymbolKind::Scalar(implicit_ty(n)));
                }
            }
        }
    }
    // Names appearing only inside EQUIVALENCE groups still need entries.
    for group in &r.equivalences {
        for (name, _) in group {
            if t.get(name).is_none() {
                t.insert(name.clone(), SymbolKind::Scalar(implicit_ty(name)));
            }
        }
    }
    compute_storage(r, &mut t)?;
    Ok(t)
}

// ---- storage association ------------------------------------------------
//
// Union-find with relative byte offsets: COMMON blocks lay their members
// out at cumulative offsets from the block start, and each EQUIVALENCE
// group pins the indicated elements of its items to one address. A `None`
// offset is sticky — once any constraint in a chain is non-constant the
// placement is unknown and overlap can no longer be disproved.

struct OffsetUf {
    parent: Vec<usize>,
    /// Offset of node start relative to parent start.
    off: Vec<Option<i64>>,
}

impl OffsetUf {
    fn new(n: usize) -> OffsetUf {
        OffsetUf {
            parent: (0..n).collect(),
            off: vec![Some(0); n],
        }
    }

    /// Returns `(root, offset of i's start relative to root's start)`,
    /// with path compression.
    fn find(&mut self, i: usize) -> (usize, Option<i64>) {
        if self.parent[i] == i {
            return (i, Some(0));
        }
        let (root, parent_off) = self.find(self.parent[i]);
        let o = match (self.off[i], parent_off) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
        self.parent[i] = root;
        self.off[i] = o;
        (root, o)
    }

    /// Records `start(a) = start(b) + d` (`d = None`: same class, unknown
    /// relative placement).
    fn union(&mut self, a: usize, b: usize, d: Option<i64>) {
        let (ra, oa) = self.find(a);
        let (rb, ob) = self.find(b);
        if ra == rb {
            return; // contradictory EQUIVALENCE chains: first constraint wins
        }
        self.parent[ra] = rb;
        self.off[ra] = match (oa, ob, d) {
            (Some(x), Some(y), Some(z)) => Some(y + z - x),
            _ => None,
        };
    }
}

/// Constant-folds an expression over the routine's PARAMETER constants.
fn const_eval(e: &Expr, consts: &BTreeMap<String, i64>) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Var(n) => consts.get(n).copied(),
        Expr::Un(UnOp::Neg, a) => const_eval(a, consts).map(|v| -v),
        Expr::Bin(op, a, b) => {
            let x = const_eval(a, consts)?;
            let y = const_eval(b, consts)?;
            match op {
                BinOp::Add => x.checked_add(y),
                BinOp::Sub => x.checked_sub(y),
                BinOp::Mul => x.checked_mul(y),
                BinOp::Div if y != 0 => Some(x / y),
                BinOp::Pow if (0..=31).contains(&y) => x.checked_pow(y as u32),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Per-dimension `(lower bound, length)`; `None` components are unknown.
fn dim_shape(dims: &[DimBound], consts: &BTreeMap<String, i64>) -> Vec<(Option<i64>, Option<i64>)> {
    dims.iter()
        .map(|d| match d {
            DimBound::Upper(e) => (Some(1), const_eval(e, consts)),
            DimBound::Both(l, h) => {
                let lo = const_eval(l, consts);
                let hi = const_eval(h, consts);
                let len = match (lo, hi) {
                    (Some(a), Some(b)) => Some(b - a + 1),
                    _ => None,
                };
                (lo, len)
            }
            DimBound::Assumed => (Some(1), None),
        })
        .collect()
}

/// Bytes a name occupies: scalars one unit, arrays element-count × unit.
fn byte_extent(t: &SymbolTable, name: &str, consts: &BTreeMap<String, i64>) -> Option<i64> {
    match t.get(name) {
        Some(SymbolKind::Array(info)) => {
            let mut total = 1i64;
            for (_, len) in dim_shape(&info.dims, consts) {
                total = total.checked_mul(len?)?;
            }
            total.checked_mul(ELEM_BYTES)
        }
        Some(SymbolKind::Scalar(_)) => Some(ELEM_BYTES),
        _ => None,
    }
}

/// Byte offset of the element an EQUIVALENCE item designates, relative to
/// the name's own first storage unit. A bare name anchors at offset 0; a
/// subscripted item linearizes column-major. A single subscript on a
/// multi-dimensional array is the F77 linearized element index.
fn item_offset(
    t: &SymbolTable,
    name: &str,
    subs: &[Expr],
    consts: &BTreeMap<String, i64>,
) -> Option<i64> {
    if subs.is_empty() {
        return Some(0);
    }
    let Some(SymbolKind::Array(info)) = t.get(name) else {
        return None; // subscripted scalar: malformed, treat as unknown
    };
    let shape = dim_shape(&info.dims, consts);
    let elem = if subs.len() == shape.len() {
        let mut idx = 0i64;
        let mut stride = 1i64;
        for (s, (lo, len)) in subs.iter().zip(&shape) {
            let sv = const_eval(s, consts)?;
            idx = idx.checked_add(sv.checked_sub((*lo)?)?.checked_mul(stride)?)?;
            if let Some(l) = len {
                stride = stride.checked_mul(*l)?;
            } else if subs.len() > 1 {
                return None;
            }
        }
        idx
    } else if subs.len() == 1 {
        const_eval(&subs[0], consts)?.checked_sub(shape.first().and_then(|(lo, _)| *lo)?)?
    } else {
        return None;
    };
    elem.checked_mul(ELEM_BYTES)
}

/// Computes [`StorageLoc`]s: COMMON layouts first (members at cumulative
/// byte offsets), then EQUIVALENCE unions. Only classes with storage
/// association are recorded; everything else keeps private storage.
fn compute_storage(r: &Routine, t: &mut SymbolTable) -> Result<(), SemaError> {
    if r.commons.is_empty() && r.equivalences.is_empty() {
        return Ok(());
    }
    let consts: BTreeMap<String, i64> = {
        let mut m = BTreeMap::new();
        for (name, value) in &r.parameters {
            if let Some(v) = const_eval(value, &m) {
                m.insert(name.clone(), v);
            }
        }
        m
    };
    // Participating nodes: every COMMON member and EQUIVALENCE item, plus
    // one pseudo-node per COMMON block ("/blk" cannot collide with an
    // identifier). BTreeMap keeps node numbering deterministic.
    let mut index: BTreeMap<String, usize> = BTreeMap::new();
    let touch = |index: &mut BTreeMap<String, usize>, n: &str| -> usize {
        let next = index.len();
        *index.entry(n.to_string()).or_insert(next)
    };
    for (block, names) in &r.commons {
        touch(&mut index, &format!("/{block}"));
        for n in names {
            touch(&mut index, n);
        }
    }
    for group in &r.equivalences {
        for (name, _) in group {
            touch(&mut index, name);
        }
    }
    let mut uf = OffsetUf::new(index.len());

    // COMMON layouts.
    for (block, names) in &r.commons {
        let bnode = index[&format!("/{block}")];
        let mut running: Option<i64> = Some(0);
        for n in names {
            uf.union(index[n], bnode, running);
            running = match (running, byte_extent(t, n, &consts)) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
        }
    }
    // EQUIVALENCE groups: all items coincide at their designated element.
    for group in &r.equivalences {
        for (name, _) in group {
            if r.params.contains(name) {
                return Err(SemaError {
                    message: format!("EQUIVALENCE of dummy argument {name}"),
                    routine: r.name.clone(),
                });
            }
            if t.constant(name).is_some() {
                return Err(SemaError {
                    message: format!("EQUIVALENCE of PARAMETER constant {name}"),
                    routine: r.name.clone(),
                });
            }
        }
        let (first, first_subs) = &group[0];
        let anchor = item_offset(t, first, first_subs, &consts);
        for (name, subs) in &group[1..] {
            // start(name) + item = start(first) + anchor
            let d = match (anchor, item_offset(t, name, subs, &consts)) {
                (Some(a), Some(i)) => Some(a - i),
                _ => None,
            };
            uf.union(index[name], index[&group[0].0], d);
        }
    }

    // Collect classes.
    let names: Vec<String> = index.keys().cloned().collect();
    let mut classes: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for n in &names {
        let (root, _) = uf.find(index[n]);
        classes.entry(root).or_default().push(n.clone());
    }
    for members in classes.values() {
        let real: Vec<&String> = members.iter().filter(|n| !n.starts_with('/')).collect();
        if real.len() < 2 && members.iter().all(|n| !n.starts_with('/')) {
            continue; // singleton equivalence-free class: private storage
        }
        // Class identity: the (smallest) COMMON block if one participates,
        // else the smallest member name.
        let block = members
            .iter()
            .filter_map(|n| n.strip_prefix('/'))
            .min()
            .map(str::to_string);
        let class = match &block {
            Some(b) => StorageClass::Common(b.clone()),
            None => {
                StorageClass::Equiv(real.iter().min().map(|s| s.to_string()).unwrap_or_default())
            }
        };
        // Offsets relative to the class base: the block start when a block
        // participates, else the lowest known member offset.
        let base = match &block {
            Some(b) => uf.find(index[&format!("/{b}")]).1,
            None => real
                .iter()
                .filter_map(|n| uf.find(index[n.as_str()]).1)
                .min(),
        };
        for n in real {
            let off = match (uf.find(index[n.as_str()]).1, base) {
                (Some(o), Some(b)) => Some(o - b),
                _ => None,
            };
            t.storage.insert(
                n.clone(),
                StorageLoc {
                    class: class.clone(),
                    offset: off,
                    extent: byte_extent(t, n, &consts),
                },
            );
        }
    }
    Ok(())
}

/// Walks statements calling `f(name, args)` for every CALL.
fn collect_calls<'a>(
    stmts: &'a [Stmt],
    f: &mut impl FnMut(&'a str, &'a [Expr]) -> Result<(), SemaError>,
) -> Result<(), SemaError> {
    for s in stmts {
        match &s.kind {
            StmtKind::Call(name, args) => f(name, args)?,
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                collect_calls(then_body, f)?;
                collect_calls(else_body, f)?;
            }
            StmtKind::LogicalIf(_, inner) => collect_calls(std::slice::from_ref(inner), f)?,
            StmtKind::Do { body, .. } => collect_calls(body, f)?,
            _ => {}
        }
    }
    Ok(())
}

/// Collects every identifier mentioned in executable statements.
fn collect_names(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    fn expr_names(e: &Expr, out: &mut BTreeSet<String>) {
        e.walk(&mut |x| match x {
            Expr::Var(n) => {
                out.insert(n.clone());
            }
            Expr::Index(n, _) => {
                out.insert(n.clone());
            }
            _ => {}
        });
    }
    for s in stmts {
        match &s.kind {
            StmtKind::Assign(lhs, rhs) => {
                out.insert(lhs.name().to_string());
                if let LValue::Element(_, subs) = lhs {
                    for sub in subs {
                        expr_names(sub, out);
                    }
                }
                expr_names(rhs, out);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                expr_names(cond, out);
                collect_names(then_body, out);
                collect_names(else_body, out);
            }
            StmtKind::LogicalIf(cond, inner) => {
                expr_names(cond, out);
                collect_names(std::slice::from_ref(inner), out);
            }
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                out.insert(var.clone());
                expr_names(lo, out);
                expr_names(hi, out);
                if let Some(s) = step {
                    expr_names(s, out);
                }
                collect_names(body, out);
            }
            StmtKind::Call(_, args) => {
                for a in args {
                    expr_names(a, out);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn sema_of(src: &str) -> ProgramSema {
        analyze(&parse_program(src).unwrap()).unwrap()
    }

    const OCEAN_LIKE: &str = "
      PROGRAM main
      REAL A(1000)
      DO i = 1, n
        x = i
        call in(A, x, m)
        call out(A, x, m)
      ENDDO
      END
      SUBROUTINE in(B, x, mm)
      REAL B(*)
      IF (x .GT. 64.0) RETURN
      DO J = 1, mm
        B(J) = 0.0
      ENDDO
      END
      SUBROUTINE out(B, x, mm)
      REAL B(*)
      IF (x .GT. 64.0) RETURN
      DO J = 1, mm
        y = B(J)
      ENDDO
      END
";

    #[test]
    fn symbol_kinds() {
        let s = sema_of(OCEAN_LIKE);
        let main = &s.tables["main"];
        assert!(main.is_array("a"));
        assert_eq!(main.array("a").unwrap().rank(), 1);
        assert_eq!(main.scalar_ty("i"), Some(Ty::Integer));
        assert_eq!(main.scalar_ty("x"), Some(Ty::Real));
        let sub = &s.tables["in"];
        assert!(sub.is_array("b"));
        assert!(sub.array("b").unwrap().is_param);
    }

    #[test]
    fn call_graph_and_order() {
        let s = sema_of(OCEAN_LIKE);
        assert_eq!(
            s.call_graph["main"],
            BTreeSet::from(["in".to_string(), "out".to_string()])
        );
        // bottom-up: callees before main
        let pos = |n: &str| s.bottom_up.iter().position(|x| x == n).unwrap();
        assert!(pos("in") < pos("main"));
        assert!(pos("out") < pos("main"));
    }

    #[test]
    fn recursion_rejected() {
        let p = parse_program(
            "
      SUBROUTINE a()
      call b()
      END
      SUBROUTINE b()
      call a()
      END
",
        )
        .unwrap();
        let e = analyze(&p).unwrap_err();
        assert!(e.message.contains("recursive"));
    }

    #[test]
    fn unknown_callee_rejected() {
        let p = parse_program("      PROGRAM t\n      call nope(x)\n      END\n").unwrap();
        assert!(analyze(&p).is_err());
    }

    #[test]
    fn arity_checked() {
        let p = parse_program(
            "
      PROGRAM t
      call s(x)
      END
      SUBROUTINE s(a, b)
      RETURN
      END
",
        )
        .unwrap();
        let e = analyze(&p).unwrap_err();
        assert!(e.message.contains("args"));
    }

    #[test]
    fn parameters_and_common() {
        let s = sema_of(
            "
      PROGRAM t
      PARAMETER (size = 64)
      COMMON /blk/ w, q
      REAL w(100)
      x = size
      END
",
        );
        let t = &s.tables["t"];
        assert!(t.constant("size").is_some());
        assert_eq!(t.common_block("w"), Some("blk"));
        assert_eq!(t.common_block("q"), Some("blk"));
        assert!(t.is_array("w"));
        assert!(!t.is_array("q"));
    }

    #[test]
    fn common_layout_offsets() {
        let s = sema_of(
            "
      PROGRAM t
      COMMON /blk/ a, q, b
      REAL a(10), b(5)
      a(1) = q
      b(1) = 0.0
      END
",
        );
        let t = &s.tables["t"];
        let a = t.storage("a").unwrap();
        let q = t.storage("q").unwrap();
        let b = t.storage("b").unwrap();
        assert_eq!(a.class, StorageClass::Common("blk".into()));
        assert_eq!((a.offset, a.extent), (Some(0), Some(40)));
        assert_eq!((q.offset, q.extent), (Some(40), Some(4)));
        assert_eq!((b.offset, b.extent), (Some(44), Some(20)));
        assert!(!t.storage_overlaps("a", "b"));
        assert!(t.storage_partners("q").is_empty());
    }

    #[test]
    fn equivalence_overlay_offsets() {
        let s = sema_of(
            "
      PROGRAM t
      REAL x(10), y(4), z(3)
      EQUIVALENCE (x(3), y(1)), (z(1), x(9))
      x(1) = 0.0
      END
",
        );
        let t = &s.tables["t"];
        let x = t.storage("x").unwrap();
        let y = t.storage("y").unwrap();
        let z = t.storage("z").unwrap();
        assert_eq!(x.class, StorageClass::Equiv("x".into()));
        assert_eq!(x.offset, Some(0));
        assert_eq!(y.offset, Some(8)); // y(1) at x(3)
        assert_eq!(z.offset, Some(32)); // z(1) at x(9)
                                        // y spans x(3..6), z spans x(9..11): no overlap between y and z.
        assert!(t.storage_overlaps("x", "y"));
        assert!(t.storage_overlaps("x", "z"));
        assert!(!t.storage_overlaps("y", "z"));
    }

    #[test]
    fn equivalence_into_common_extends_class() {
        let s = sema_of(
            "
      PROGRAM t
      COMMON /c/ a
      REAL a(8), w(4)
      EQUIVALENCE (w(1), a(5))
      w(1) = 0.0
      END
",
        );
        let t = &s.tables["t"];
        let w = t.storage("w").unwrap();
        assert_eq!(w.class, StorageClass::Common("c".into()));
        assert_eq!(w.offset, Some(16));
        assert!(t.storage_overlaps("a", "w"));
    }

    #[test]
    fn unknown_dims_poison_offsets_not_classes() {
        let s = sema_of(
            "
      PROGRAM t
      COMMON /c/ a, b
      REAL a(n), b(5)
      a(1) = 0.0
      END
",
        );
        let t = &s.tables["t"];
        assert_eq!(t.storage("a").unwrap().offset, Some(0));
        let b = t.storage("b").unwrap();
        assert_eq!(b.offset, None, "offset after a runtime-sized member");
        // Unknown placement in one class cannot disprove overlap.
        assert!(t.storage_overlaps("a", "b"));
    }

    #[test]
    fn equivalence_of_dummy_rejected() {
        let p = parse_program(
            "
      SUBROUTINE s(a)
      REAL a(10), w(10)
      EQUIVALENCE (a(1), w(1))
      END
      PROGRAM t
      REAL v(10)
      CALL s(v)
      END
",
        )
        .unwrap();
        let e = analyze(&p).unwrap_err();
        assert!(e.message.contains("dummy"), "{e}");
    }

    #[test]
    fn common_reach_is_transitive() {
        let s = sema_of(
            "
      PROGRAM t
      COMMON /top/ x
      CALL mid()
      x = 0.0
      END
      SUBROUTINE mid()
      CALL leaf()
      END
      SUBROUTINE leaf()
      COMMON /deep/ y
      y = 1.0
      END
",
        );
        assert!(s.common_reach["leaf"].contains("deep"));
        assert!(s.common_reach["mid"].contains("deep"));
        assert!(!s.common_reach["mid"].contains("top"));
        assert!(s.common_reach["t"].contains("top"));
        assert!(s.common_reach["t"].contains("deep"));
    }

    #[test]
    fn intrinsics_not_scalars() {
        let s = sema_of("      PROGRAM t\n      x = max(a, b)\n      END\n");
        let t = &s.tables["t"];
        assert!(t.get("max").is_none());
        assert!(t.get("a").is_some());
    }

    #[test]
    fn implicit_typing_rule() {
        assert_eq!(implicit_ty("i"), Ty::Integer);
        assert_eq!(implicit_ty("n"), Ty::Integer);
        assert_eq!(implicit_ty("kc"), Ty::Integer);
        assert_eq!(implicit_ty("x"), Ty::Real);
        assert_eq!(implicit_ty("a"), Ty::Real);
    }
}
