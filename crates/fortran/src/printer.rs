//! A faithful pretty-printer for the Fortran subset.
//!
//! [`print_program`] turns a parsed [`Program`] back into canonical
//! fixed-form-style source that the parser accepts, and — for any AST the
//! parser itself can produce — reparses to the **identical** AST modulo
//! statement line numbers (pinned by the parse→print→parse property test
//! in `tests/printer_roundtrip.rs`). That identity is what makes emitted
//! transformed source trustworthy: annotations are carried as `!`
//! comment lines (e.g. OpenMP `!$OMP` sentinels), which the lexer drops,
//! so an annotated program relexes to exactly the program the analysis
//! judged.
//!
//! Canonical form: 6-space statement indent growing 2 per block level,
//! labels right-justified in a 5-column field, `ENDDO`-terminated `DO`
//! blocks (label-terminated `DO 10 …` loops print their terminator as
//! the labeled statement the parser already rewrote them to), fully
//! parenthesized expressions, and single-name declaration statements
//! ordered to replay the routine's `types`/`arrays` vectors exactly.
//!
//! Two AST shapes cannot round-trip and are printed as their desugared
//! equivalents: a [`StmtKind::LogicalIf`] wrapping a non-simple
//! statement (unparseable; printed as a block IF) and negative numeric
//! literals (the parser only builds them as unary minus). Neither is
//! constructible by the parser.

use crate::ast::{
    BinOp, DimBound, Expr, LValue, Program, Routine, RoutineKind, Stmt, StmtKind, Ty, UnOp,
};

/// Hooks for decorating printed statements with comment lines.
///
/// [`print_program_annotated`] calls `before`/`after` around every
/// statement (at any nesting depth). Returned lines are printed verbatim
/// at the statement's indentation — annotators emit `!`-comment lines
/// (the lexer drops them), keeping the reparse identity intact. For a
/// `DO` statement, `after` lines land after the closing `ENDDO`.
pub trait Annotator {
    /// Lines to print immediately before `stmt`.
    fn before(&mut self, routine: &Routine, stmt: &Stmt) -> Vec<String> {
        let _ = (routine, stmt);
        Vec::new()
    }
    /// Lines to print immediately after `stmt` (after `ENDDO`/`ENDIF`
    /// for block statements).
    fn after(&mut self, routine: &Routine, stmt: &Stmt) -> Vec<String> {
        let _ = (routine, stmt);
        Vec::new()
    }
}

/// The no-op annotator.
struct Plain;
impl Annotator for Plain {}

/// Prints a whole program in canonical form.
pub fn print_program(p: &Program) -> String {
    print_program_annotated(p, &mut Plain)
}

/// [`print_program`] with per-statement annotation hooks.
pub fn print_program_annotated(p: &Program, ann: &mut dyn Annotator) -> String {
    let mut out = String::new();
    for (k, r) in p.routines.iter().enumerate() {
        if k > 0 {
            out.push('\n');
        }
        print_routine(&mut out, r, ann);
    }
    out
}

/// Prints one routine.
fn print_routine(out: &mut String, r: &Routine, ann: &mut dyn Annotator) {
    match r.kind {
        RoutineKind::Program => put(out, None, 6, &format!("PROGRAM {}", r.name)),
        RoutineKind::Subroutine => {
            let head = if r.params.is_empty() {
                format!("SUBROUTINE {}", r.name)
            } else {
                format!("SUBROUTINE {}({})", r.name, r.params.join(", "))
            };
            put(out, None, 6, &head);
        }
    }
    print_decls(out, r);
    for s in &r.body {
        print_stmt(out, r, s, 6, ann);
    }
    put(out, None, 6, "END");
}

/// Emits the declaration statements so that reparsing replays the
/// routine's `types` and `arrays` vectors in their original order.
///
/// The two vectors are interleaved merges of the original declaration
/// statements: a `REAL a(10)` appended to both, a `REAL a` to `types`
/// only, a `DIMENSION a(10)` (or dims inside `COMMON`) to `arrays`
/// only. A two-pointer merge reconstructs a statement sequence whose
/// replay is order-exact, whichever interleaving produced the vectors —
/// including the `REAL a … DIMENSION a(10)` split, where the dims must
/// be deferred past later typed declarations.
fn print_decls(out: &mut String, r: &Routine) {
    let ty_kw = |ty: Ty| match ty {
        Ty::Integer => "INTEGER",
        Ty::Real => "REAL",
        Ty::Logical => "LOGICAL",
    };
    let mut i = 0; // over r.types
    let mut j = 0; // over r.arrays
    while i < r.types.len() || j < r.arrays.len() {
        if i < r.types.len() && j < r.arrays.len() && r.types[i].0 == r.arrays[j].0 {
            // Typed array declared in one statement: advances both.
            let (name, ty) = &r.types[i];
            put(
                out,
                None,
                6,
                &format!("{} {}({})", ty_kw(*ty), name, dim_list(&r.arrays[j].1)),
            );
            i += 1;
            j += 1;
            continue;
        }
        let t_in_rest_a =
            i < r.types.len() && r.arrays[j..].iter().any(|(n, _)| n == &r.types[i].0);
        if i < r.types.len() && !t_in_rest_a {
            // Scalar (or an array whose dims were already replayed).
            let (name, ty) = &r.types[i];
            put(out, None, 6, &format!("{} {}", ty_kw(*ty), name));
            i += 1;
            continue;
        }
        let a_in_rest_t =
            j < r.arrays.len() && r.types[i..].iter().any(|(n, _)| n == &r.arrays[j].0);
        if j < r.arrays.len() && !a_in_rest_t {
            // Untyped array, or one typed earlier without dims.
            let (name, dims) = &r.arrays[j];
            put(
                out,
                None,
                6,
                &format!("DIMENSION {}({})", name, dim_list(dims)),
            );
            j += 1;
            continue;
        }
        // Both heads pending but crossed (`REAL a` … `DIMENSION a` after
        // other typed arrays): emit the type now, defer the dims.
        let (name, ty) = &r.types[i];
        put(out, None, 6, &format!("{} {}", ty_kw(*ty), name));
        i += 1;
    }
    for (name, value) in &r.parameters {
        put(
            out,
            None,
            6,
            &format!("PARAMETER ({} = {})", name, expr(value)),
        );
    }
    for (block, names) in &r.commons {
        put(
            out,
            None,
            6,
            &format!("COMMON /{}/ {}", block, names.join(", ")),
        );
    }
    for group in &r.equivalences {
        let items: Vec<String> = group
            .iter()
            .map(|(name, subs)| {
                if subs.is_empty() {
                    name.clone()
                } else {
                    let ss: Vec<String> = subs.iter().map(expr).collect();
                    format!("{}({})", name, ss.join(", "))
                }
            })
            .collect();
        put(out, None, 6, &format!("EQUIVALENCE ({})", items.join(", ")));
    }
}

/// Prints one statement (and its block contents) at indentation `ind`.
fn print_stmt(out: &mut String, r: &Routine, s: &Stmt, ind: usize, ann: &mut dyn Annotator) {
    for l in ann.before(r, s) {
        put(out, None, ind, &l);
    }
    match &s.kind {
        StmtKind::Assign(lv, e) => put(out, s.label, ind, &format!("{} = {}", lvalue(lv), expr(e))),
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            put(out, s.label, ind, &format!("IF ({}) THEN", expr(cond)));
            print_if_tail(out, r, then_body, else_body, ind, ann);
        }
        StmtKind::LogicalIf(cond, inner) => {
            if let Some(text) = simple_stmt_text(&inner.kind) {
                put(out, s.label, ind, &format!("IF ({}) {}", expr(cond), text));
            } else {
                // Unparseable as a logical IF (the parser never builds
                // this shape): print the equivalent block IF.
                put(out, s.label, ind, &format!("IF ({}) THEN", expr(cond)));
                print_stmt(out, r, inner, ind + 2, ann);
                put(out, None, ind, "ENDIF");
            }
        }
        StmtKind::Do {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            let head = match step {
                Some(st) => format!("DO {} = {}, {}, {}", var, expr(lo), expr(hi), expr(st)),
                None => format!("DO {} = {}, {}", var, expr(lo), expr(hi)),
            };
            put(out, s.label, ind, &head);
            for b in body {
                print_stmt(out, r, b, ind + 2, ann);
            }
            put(out, None, ind, "ENDDO");
        }
        StmtKind::Goto(l) => put(out, s.label, ind, &format!("GOTO {l}")),
        StmtKind::Call(..) | StmtKind::Return | StmtKind::Continue | StmtKind::Stop => {
            let text = simple_stmt_text(&s.kind).expect("simple statement");
            put(out, s.label, ind, &text);
        }
    }
    for l in ann.after(r, s) {
        put(out, None, ind, &l);
    }
}

/// Prints the THEN/ELSE bodies and terminator of a block IF whose header
/// is already out. A singleton unlabeled `If` in the ELSE branch prints
/// as an `ELSEIF` chain — exactly the shape the parser desugars it from.
fn print_if_tail(
    out: &mut String,
    r: &Routine,
    then_body: &[Stmt],
    else_body: &[Stmt],
    ind: usize,
    ann: &mut dyn Annotator,
) {
    for b in then_body {
        print_stmt(out, r, b, ind + 2, ann);
    }
    match else_body {
        [] => put(out, None, ind, "ENDIF"),
        [nested] if nested.label.is_none() => {
            if let StmtKind::If {
                cond,
                then_body: tb,
                else_body: eb,
            } = &nested.kind
            {
                // Let annotators see the desugared statement even though
                // it prints as a chain link.
                for l in ann.before(r, nested) {
                    put(out, None, ind, &l);
                }
                put(out, None, ind, &format!("ELSEIF ({}) THEN", expr(cond)));
                print_if_tail(out, r, tb, eb, ind, ann);
                for l in ann.after(r, nested) {
                    put(out, None, ind, &l);
                }
            } else {
                put(out, None, ind, "ELSE");
                print_stmt(out, r, nested, ind + 2, ann);
                put(out, None, ind, "ENDIF");
            }
        }
        _ => {
            put(out, None, ind, "ELSE");
            for b in else_body {
                print_stmt(out, r, b, ind + 2, ann);
            }
            put(out, None, ind, "ENDIF");
        }
    }
}

/// Renders the statements a logical IF can carry; `None` for block
/// statements.
fn simple_stmt_text(kind: &StmtKind) -> Option<String> {
    Some(match kind {
        StmtKind::Assign(lv, e) => format!("{} = {}", lvalue(lv), expr(e)),
        StmtKind::Goto(l) => format!("GOTO {l}"),
        StmtKind::Call(name, args) => {
            if args.is_empty() {
                format!("CALL {name}")
            } else {
                let rendered: Vec<String> = args.iter().map(expr).collect();
                format!("CALL {}({})", name, rendered.join(", "))
            }
        }
        StmtKind::Return => "RETURN".to_string(),
        StmtKind::Continue => "CONTINUE".to_string(),
        StmtKind::Stop => "STOP".to_string(),
        _ => return None,
    })
}

/// Writes one source line: a 5-column label field when labeled,
/// `ind` spaces otherwise.
fn put(out: &mut String, label: Option<u32>, ind: usize, text: &str) {
    match label {
        Some(l) => {
            out.push_str(&format!("{l:>5} "));
            // Pad on toward the nesting indent so labeled statements keep
            // their block alignment when it is deeper than the label field.
            for _ in 6..ind {
                out.push(' ');
            }
        }
        None => {
            for _ in 0..ind {
                out.push(' ');
            }
        }
    }
    out.push_str(text);
    out.push('\n');
}

fn dim_list(dims: &[DimBound]) -> String {
    dims.iter()
        .map(|d| match d {
            DimBound::Upper(e) => expr(e),
            DimBound::Both(a, b) => format!("{}:{}", expr(a), expr(b)),
            DimBound::Assumed => "*".to_string(),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Var(n) => n.clone(),
        LValue::Element(n, subs) => {
            let ss: Vec<String> = subs.iter().map(expr).collect();
            format!("{}({})", n, ss.join(", "))
        }
    }
}

/// Renders an expression fully parenthesized (precedence-proof) with
/// reparseable literals.
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Real(v) => real_literal(*v),
        Expr::Logical(true) => ".TRUE.".to_string(),
        Expr::Logical(false) => ".FALSE.".to_string(),
        Expr::Var(n) => n.clone(),
        Expr::Index(n, subs) => {
            let ss: Vec<String> = subs.iter().map(expr).collect();
            format!("{}({})", n, ss.join(", "))
        }
        Expr::Bin(op, a, b) => {
            let sym = match op {
                BinOp::Add => " + ",
                BinOp::Sub => " - ",
                BinOp::Mul => " * ",
                BinOp::Div => " / ",
                BinOp::Pow => " ** ",
                BinOp::Lt => " .LT. ",
                BinOp::Le => " .LE. ",
                BinOp::Gt => " .GT. ",
                BinOp::Ge => " .GE. ",
                BinOp::Eq => " .EQ. ",
                BinOp::Ne => " .NE. ",
                BinOp::And => " .AND. ",
                BinOp::Or => " .OR. ",
            };
            format!("({}{}{})", expr(a), sym, expr(b))
        }
        Expr::Un(UnOp::Neg, a) => format!("(-{})", expr(a)),
        Expr::Un(UnOp::Not, a) => format!("(.NOT. {})", expr(a)),
    }
}

/// A real literal the lexer tokenizes back to the same `f64`. Rust's
/// shortest-round-trip `Display` already preserves the value; this only
/// patches the forms the lexer cannot take bare: an integral value gains
/// `.0`, and an exponent form without a fraction gains one (`1e30` →
/// `1.0e30`).
fn real_literal(v: f64) -> String {
    let s = v.to_string();
    if let Some(epos) = s.find(['e', 'E']) {
        if s[..epos].contains('.') {
            s
        } else {
            format!("{}.0{}", &s[..epos], &s[epos..])
        }
    } else if s.contains('.') {
        s
    } else {
        format!("{s}.0")
    }
}

/// A copy of the program with every statement's source line zeroed —
/// the normalization under which parse→print→parse is an identity
/// (printed source has its own line numbering).
pub fn strip_lines(p: &Program) -> Program {
    let mut p = p.clone();
    for r in &mut p.routines {
        for s in &mut r.body {
            strip_stmt(s);
        }
    }
    p
}

fn strip_stmt(s: &mut Stmt) {
    s.line = 0;
    match &mut s.kind {
        StmtKind::If {
            then_body,
            else_body,
            ..
        } => {
            for b in then_body.iter_mut().chain(else_body.iter_mut()) {
                strip_stmt(b);
            }
        }
        StmtKind::LogicalIf(_, inner) => strip_stmt(inner),
        StmtKind::Do { body, .. } => {
            for b in body {
                strip_stmt(b);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn roundtrip(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed source fails to parse: {e}\n{printed}"));
        assert_eq!(
            strip_lines(&p1),
            strip_lines(&p2),
            "round-trip changed the AST\n{printed}"
        );
    }

    #[test]
    fn roundtrips_declaration_interleavings() {
        roundtrip(
            "
      PROGRAM t
      REAL a
      DIMENSION x(5)
      REAL b(10)
      DIMENSION a(10)
      INTEGER i
      PARAMETER (n = 64)
      COMMON /blk/ q, r
      DIMENSION q(8)
      a(1) = 0.0
      END
",
        );
    }

    #[test]
    fn roundtrips_common_inline_dims() {
        roundtrip(
            "
      PROGRAM t
      COMMON /b/ w(10), z
      REAL y(4)
      EQUIVALENCE (y(1), z)
      w(1) = 1.0
      END
",
        );
    }

    #[test]
    fn roundtrips_statements_and_labels() {
        roundtrip(
            "
      PROGRAM t
      REAL a(10)
      INTEGER i, m
      m = 3
      DO 10 i = 1, 10
        a(i) = float(i) * 2.0
        IF (a(i) .GT. 5.0) GOTO 10
        a(i) = -a(i) ** 2
   10 CONTINUE
      DO i = 1, 10, 2
        IF (i .EQ. 3) THEN
          a(i) = 0.0
        ELSE IF (i .EQ. 5) THEN
          a(i) = 1.0
        ELSE
          CALL sub(a, i)
        ENDIF
      ENDDO
      IF (.NOT. (m .GT. 0 .AND. m .LT. 9)) STOP
      END

      SUBROUTINE sub(a, i)
      REAL a(*)
      INTEGER i
      a(i) = 7.5
      RETURN
      END
",
        );
    }

    #[test]
    fn roundtrips_labeled_enddo_and_goto() {
        roundtrip(
            "
      PROGRAM t
      REAL a(5)
      INTEGER i
      DO i = 1, 5
        IF (i .EQ. 2) GO TO 20
        a(i) = 1.0
   20 ENDDO
      END
",
        );
    }

    #[test]
    fn real_literals_reparse_exactly() {
        for v in [0.0, 1.0, 0.5, 1.5e-12, 3.25e30, 123456789.125] {
            let s = real_literal(v);
            let toks = crate::lexer::lex(&s).unwrap();
            match &toks[0].kind {
                crate::lexer::TokenKind::Real(r) => {
                    assert_eq!(r.to_bits(), v.to_bits(), "{s}")
                }
                other => panic!("{s} lexed to {other:?}"),
            }
        }
    }

    #[test]
    fn annotations_are_comments() {
        struct Omp;
        impl Annotator for Omp {
            fn before(&mut self, _r: &Routine, s: &Stmt) -> Vec<String> {
                match &s.kind {
                    StmtKind::Do { .. } => vec!["!$OMP PARALLEL DO".to_string()],
                    _ => Vec::new(),
                }
            }
            fn after(&mut self, _r: &Routine, s: &Stmt) -> Vec<String> {
                match &s.kind {
                    StmtKind::Do { .. } => vec!["!$OMP END PARALLEL DO".to_string()],
                    _ => Vec::new(),
                }
            }
        }
        let src = "
      PROGRAM t
      REAL a(10)
      INTEGER i
      DO i = 1, 10
        a(i) = 1.0
      ENDDO
      END
";
        let p1 = parse_program(src).unwrap();
        let annotated = print_program_annotated(&p1, &mut Omp);
        assert!(annotated.contains("!$OMP PARALLEL DO"));
        let p2 = parse_program(&annotated).unwrap();
        assert_eq!(strip_lines(&p1), strip_lines(&p2));
    }
}
