//! `trace_check` — validates a Chrome trace-event JSON file.
//!
//! ```text
//! trace_check FILE [SPAN_NAME...]
//! ```
//!
//! Exits 0 when `FILE` parses as `{"traceEvents": [...]}` with
//! well-formed events (every event has a string `name`, a `ph` of
//! `"X"`, `"i"` or `"M"`, and integer `pid`/`tid`; complete events
//! carry `ts` and `dur`, instants carry `ts`), escaping is sound (no
//! raw control byte inside any JSON string, and the document survives
//! a serialize→reparse round trip unchanged in shape), and every
//! `SPAN_NAME` argument appears as a complete span. CI's `trace-smoke`
//! job runs it on `panorama --trace-out` and `panoramad --trace-out`
//! output; the escaping checks are what keep adversarial span names
//! (quotes, backslashes, newlines, non-ASCII) from producing a file
//! Perfetto rejects.

use serde::Value;
use std::process::ExitCode;

/// Scans raw JSON text for a control byte (< 0x20) inside a string
/// literal — legal JSON must escape those as `\n`, `\uXXXX`, etc.
/// Returns the byte offset of the first violation.
fn control_byte_in_string(text: &str) -> Option<usize> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, b) in text.bytes().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_string => escaped = true,
            b'"' => in_string = !in_string,
            b if in_string && b < 0x20 => return Some(i),
            _ => {}
        }
    }
    None
}

/// Validates the trace document, returning a summary line on success.
fn validate(path: &str, text: &str, required: &[String]) -> Result<String, String> {
    if let Some(at) = control_byte_in_string(text) {
        return Err(format!(
            "{path}: raw control byte 0x{:02x} inside a JSON string at offset {at} (unescaped)",
            text.as_bytes()[at]
        ));
    }
    let doc: Value =
        serde_json::from_str(text).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    // Round trip: re-serializing the parsed document and reparsing it
    // must preserve it exactly — escaping that only parses one way
    // (e.g. a lone surrogate another consumer rejects) fails here.
    let reserialized =
        serde_json::to_string(&doc).map_err(|e| format!("{path}: cannot re-serialize: {e}"))?;
    let reparsed: Value = serde_json::from_str(&reserialized)
        .map_err(|e| format!("{path}: round trip failed to reparse: {e}"))?;
    if reparsed != doc {
        return Err(format!("{path}: round trip changed the document"));
    }
    let Some(Value::Array(events)) = doc.get("traceEvents") else {
        return Err(format!("{path}: missing \"traceEvents\" array"));
    };
    if events.is_empty() {
        return Err(format!("{path}: \"traceEvents\" is empty"));
    }
    let mut spans: Vec<&str> = Vec::new();
    let mut instants = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let bad = |what: &str| format!("{path}: event {i}: {what}");
        let Some(name) = ev.get("name").and_then(Value::as_str) else {
            return Err(bad("missing string \"name\""));
        };
        let Some(ph) = ev.get("ph").and_then(Value::as_str) else {
            return Err(bad("missing string \"ph\""));
        };
        for key in ["pid", "tid"] {
            if ev.get(key).and_then(Value::as_u64).is_none() {
                return Err(bad(&format!("missing integer \"{key}\"")));
            }
        }
        match ph {
            "X" => {
                for key in ["ts", "dur"] {
                    if ev.get(key).and_then(Value::as_u64).is_none() {
                        return Err(bad(&format!("complete event missing \"{key}\"")));
                    }
                }
                spans.push(name);
            }
            "i" => {
                if ev.get("ts").and_then(Value::as_u64).is_none() {
                    return Err(bad("instant event missing \"ts\""));
                }
                instants += 1;
            }
            "M" => {}
            other => return Err(bad(&format!("unknown phase {other:?}"))),
        }
    }
    for want in required {
        if !spans.iter().any(|s| s == want) {
            return Err(format!("{path}: no span named {want:?}"));
        }
    }
    Ok(format!(
        "trace_check: {path}: {} events ({} spans, {instants} instants) ok",
        events.len(),
        spans.len()
    ))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("trace_check: usage: trace_check FILE [SPAN_NAME...]");
        return ExitCode::FAILURE;
    };
    let required: Vec<String> = args.collect();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&path, &text, &required) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("trace_check: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A chrome trace produced from spans whose names try to break the
    /// JSON encoder: quotes, backslashes, newlines, tabs, non-ASCII
    /// and an embedded NUL.
    fn adversarial_trace() -> String {
        let collector = {
            let scope = trace::CollectorScope::install(trace::Collector::new());
            for name in [
                "quote \" in name",
                "back\\slash",
                "new\nline and tab\t",
                "emoji 🔥 and ünïcode",
                "nul \u{0} byte",
            ] {
                let span = trace::span(name);
                trace::add("count \"x\"\\", 1);
                trace::event("instant \"e\"", || "detail \\ \n".to_string());
                drop(span);
            }
            scope.finish().expect("collector installed")
        };
        trace::chrome_trace(&[("worker \"0\"\\".to_string(), &collector)])
    }

    #[test]
    fn adversarial_names_pass_validation() {
        let text = adversarial_trace();
        let summary = validate("test", &text, &["back\\slash".to_string()]).unwrap();
        assert!(summary.contains("ok"));
        // Every adversarial byte really was escaped.
        assert_eq!(control_byte_in_string(&text), None);
    }

    #[test]
    fn raw_control_bytes_are_rejected() {
        // A literal newline inside a string is illegal JSON even if a
        // lenient parser accepts it.
        let bad =
            "{\"traceEvents\": [{\"name\": \"a\nb\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1}]}";
        assert!(control_byte_in_string(bad).is_some());
        assert!(validate("test", bad, &[]).is_err());
        // The same name properly escaped passes the scan.
        let good = bad.replace('\n', "\\n");
        assert_eq!(control_byte_in_string(&good), None);
    }

    #[test]
    fn escapes_do_not_confuse_the_scanner() {
        // `\\` then `"` — the quote closes the string; a control byte
        // *outside* strings (the newline separator) is fine.
        let text = "{\"a\": \"b\\\\\",\n \"c\": 1}";
        assert_eq!(control_byte_in_string(text), None);
        // `\"` keeps the string open, so the newline is inside it.
        let text = "{\"a\": \"b\\\"\n\"}";
        assert!(control_byte_in_string(text).is_some());
    }

    #[test]
    fn missing_span_and_malformed_events_fail() {
        let text = adversarial_trace();
        assert!(validate("test", &text, &["nosuch".to_string()])
            .unwrap_err()
            .contains("no span named"));
        let no_ph = "{\"traceEvents\": [{\"name\": \"a\", \"pid\": 1, \"tid\": 1}]}";
        assert!(validate("test", no_ph, &[]).unwrap_err().contains("ph"));
    }
}
