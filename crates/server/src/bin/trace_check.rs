//! `trace_check` — validates a Chrome trace-event JSON file.
//!
//! ```text
//! trace_check FILE [SPAN_NAME...]
//! ```
//!
//! Exits 0 when `FILE` parses as `{"traceEvents": [...]}` with
//! well-formed events (every event has a string `name`, a `ph` of
//! `"X"`, `"i"` or `"M"`, and integer `pid`/`tid`; complete events
//! carry `ts` and `dur`, instants carry `ts`), and every `SPAN_NAME`
//! argument appears as a complete span. CI's `trace-smoke` job runs it
//! on `panorama --trace-out` and `panoramad --trace-out` output.

use serde::Value;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_check: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        return fail("usage: trace_check FILE [SPAN_NAME...]");
    };
    let required: Vec<String> = args.collect();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let doc: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => return fail(&format!("{path}: not valid JSON: {e}")),
    };
    let Some(Value::Array(events)) = doc.get("traceEvents") else {
        return fail(&format!("{path}: missing \"traceEvents\" array"));
    };
    if events.is_empty() {
        return fail(&format!("{path}: \"traceEvents\" is empty"));
    }
    let mut spans: Vec<&str> = Vec::new();
    let mut instants = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let bad = |what: &str| format!("{path}: event {i}: {what}");
        let Some(name) = ev.get("name").and_then(Value::as_str) else {
            return fail(&bad("missing string \"name\""));
        };
        let Some(ph) = ev.get("ph").and_then(Value::as_str) else {
            return fail(&bad("missing string \"ph\""));
        };
        for key in ["pid", "tid"] {
            if ev.get(key).and_then(Value::as_u64).is_none() {
                return fail(&bad(&format!("missing integer \"{key}\"")));
            }
        }
        match ph {
            "X" => {
                for key in ["ts", "dur"] {
                    if ev.get(key).and_then(Value::as_u64).is_none() {
                        return fail(&bad(&format!("complete event missing \"{key}\"")));
                    }
                }
                spans.push(name);
            }
            "i" => {
                if ev.get("ts").and_then(Value::as_u64).is_none() {
                    return fail(&bad("instant event missing \"ts\""));
                }
                instants += 1;
            }
            "M" => {}
            other => return fail(&bad(&format!("unknown phase {other:?}"))),
        }
    }
    for want in &required {
        if !spans.iter().any(|s| s == want) {
            return fail(&format!("{path}: no span named {want:?}"));
        }
    }
    println!(
        "trace_check: {path}: {} events ({} spans, {instants} instants) ok",
        events.len(),
        spans.len()
    );
    ExitCode::SUCCESS
}
