//! The `panoramad` daemon binary.
//!
//! ```text
//! panoramad [OPTIONS]
//!
//! OPTIONS:
//!   --jobs N            worker threads (default: available cores, max 8)
//!   --socket PATH       serve a Unix socket instead of stdin/stdout
//!   --no-cache          disable the routine-summary cache
//!   --cache-capacity N  cap the cache at N routine entries (FIFO)
//!   --cache-dir PATH    back the cache with a crash-safe persistent
//!                       tier in PATH, shared across restarts (and, via
//!                       an advisory lock, across processes); corrupt
//!                       records are quarantined and IO faults degrade
//!                       to memory-only — never to failed requests
//!   --cache-budget-bytes N
//!                       evict oldest disk segments beyond N total
//!                       bytes (default 256 MiB)
//!   --fuel N            default per-request propagation-step budget
//!   --deadline-ms N     default per-request wall-clock deadline
//!                       (default 60000; requests override both via
//!                       "fuel"/"timeout_ms" fields)
//!   --metrics           print the metrics summary to stderr on shutdown
//!   --trace-out PATH    record every request's spans, one Chrome trace
//!                       process track per worker, and write the
//!                       trace-event JSON to PATH on shutdown (load it
//!                       in Perfetto or chrome://tracing)
//!   --postmortem PATH   dump the flight-recorder ring (the last 64
//!                       requests: source digest, outcome, precision
//!                       ledger, span tree) to PATH whenever a request
//!                       panics or degrades, and on {"cmd": "dump"}
//! ```
//!
//! Protocol: one JSON request per line, one JSON response per line, in
//! request order (see `panoramad::protocol`). Stdin mode exits at EOF or
//! `{"cmd": "shutdown"}`; socket mode serves connections until one sends
//! the shutdown command.

use panoramad::{Config, Daemon};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: panoramad [--jobs N] [--socket PATH] [--no-cache]\n\
         \x20                [--cache-capacity N] [--cache-dir PATH]\n\
         \x20                [--cache-budget-bytes N] [--fuel N] [--deadline-ms N]\n\
         \x20                [--metrics] [--trace-out PATH] [--postmortem PATH]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut config = Config::default();
    let mut socket: Option<String> = None;
    let mut metrics = false;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> usize {
            match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => n,
                None => {
                    eprintln!("{name} needs a positive integer");
                    usage();
                }
            }
        };
        match arg.as_str() {
            "--jobs" => config.jobs = num("--jobs").max(1),
            "--cache-capacity" => config.cache = Some(Some(num("--cache-capacity"))),
            "--no-cache" => config.cache = None,
            "--cache-dir" => match args.next() {
                Some(p) => config.cache_dir = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("--cache-dir needs a path");
                    usage();
                }
            },
            "--cache-budget-bytes" => {
                config.cache_budget_bytes = Some(num("--cache-budget-bytes") as u64)
            }
            "--fuel" => config.limits.steps = Some(num("--fuel") as u64),
            "--deadline-ms" => config.limits.deadline_ms = Some(num("--deadline-ms") as u64),
            "--socket" => match args.next() {
                Some(p) => socket = Some(p),
                None => {
                    eprintln!("--socket needs a path");
                    usage();
                }
            },
            "--metrics" => metrics = true,
            "--postmortem" => match args.next() {
                Some(p) => config.postmortem = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("--postmortem needs a path");
                    usage();
                }
            },
            "--trace-out" => match args.next() {
                Some(p) => trace_out = Some(p),
                None => {
                    eprintln!("--trace-out needs a path");
                    usage();
                }
            },
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown option {other}");
                usage();
            }
        }
    }

    let registry = trace_out.as_ref().map(|_| Arc::new(trace::Registry::new()));
    let mut daemon = Daemon::new(config);
    if let Some(reg) = &registry {
        daemon = daemon.with_trace_registry(Arc::clone(reg));
    }
    let served = match &socket {
        Some(path) => daemon.serve_socket(std::path::Path::new(path)),
        None => {
            // `StdoutLock` is not `Send`; the unlocked handle locks
            // per write, which is fine — the emitter already serializes.
            let stdin = std::io::stdin().lock();
            daemon.serve(stdin, std::io::stdout()).map(|_| ())
        }
    };
    if metrics {
        eprint!(
            "{}",
            daemon
                .metrics()
                .render(daemon.cache_counters(), daemon.disk_snapshot())
        );
    }
    if let (Some(path), Some(reg)) = (&trace_out, &registry) {
        if let Err(e) = std::fs::write(path, reg.chrome_trace()) {
            eprintln!("panoramad: cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("panoramad: {e}");
            ExitCode::FAILURE
        }
    }
}
