//! The NDJSON wire protocol.
//!
//! One JSON object per line in, one JSON object per line out, matched by
//! the client-chosen `id` and emitted **in request order** regardless of
//! which worker finishes first.
//!
//! Requests:
//!
//! ```json
//! {"id": 1, "source": "      PROGRAM t\n      ...", "opts": {"forall_ext": true}, "oracle": true}
//! {"id": 2, "source": "      ...", "trace": true}
//! {"id": 3, "source": "      ...", "emit": true}
//! {"id": 4, "source": "      ...", "precision": true}
//! {"id": "probe", "cmd": "stats"}
//! {"id": "prom", "cmd": "metrics"}
//! {"id": "hb", "cmd": "health"}
//! {"id": "pm", "cmd": "dump"}
//! {"cmd": "shutdown"}
//! ```
//!
//! Responses (`report` follows DESIGN.md §4d exactly — the same schema
//! the `panorama --json` CLI prints; `"trace": true` requests carry the
//! request's span tree under a `trace` key, DESIGN.md §4f):
//!
//! ```json
//! {"id": 1, "ok": true, "report": {"schema_version": 1, ...}}
//! {"id": 2, "ok": true, "report": {...}, "trace": {"spans": [...]}}
//! {"id": "probe", "ok": true, "stats": {...}}
//! {"id": "prom", "ok": true, "metrics": "# HELP panorama_requests_total ...\n..."}
//! {"id": "hb", "ok": true, "health": {"status": "ok", "uptime_ms": 12, ...}}
//! {"id": "pm", "ok": true, "flight": {"records": [...], ...}}
//! {"id": 3, "ok": false, "error": "parse: ..."}
//! ```
//!
//! A `"precision": true` analyze request runs under the precision
//! ledger (DESIGN.md §4j); its report gains the additive `"precision"`
//! key and, like `"trace": true`, it bypasses the summary cache so the
//! report is byte-identical across job counts and cache state.

use panorama::{FuelLimits, Options};
use serde::Value;

/// Largest accepted `"source"` string, in bytes. Programs beyond this
/// are rejected up front instead of being handed to the analyzer.
pub const MAX_SOURCE_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Analyze a source string.
    Analyze {
        /// Client correlation id, echoed verbatim in the response.
        id: Value,
        /// Fortran source text.
        source: String,
        /// Technique toggles (missing fields keep their defaults).
        opts: Options,
        /// Also run the dynamic race oracle.
        oracle: bool,
        /// Per-request budgets: `"fuel"` caps propagation steps,
        /// `"timeout_ms"` sets a wall-clock deadline. Unset fields fall
        /// back to the daemon-wide defaults.
        limits: FuelLimits,
        /// Embed this request's span tree in the response. Traced
        /// requests bypass the summary cache so the tree is
        /// deterministic (see `panorama::driver::Request::trace_spans`).
        trace: bool,
        /// Also run the panogen emission backend; the report gains an
        /// additive `"transform"` key (loops, clauses, skip diagnostics,
        /// annotated source — DESIGN.md §4h).
        emit: bool,
        /// Account precision losses; the report gains an additive
        /// `"precision"` key (panoledger, DESIGN.md §4j). Bypasses the
        /// summary cache, like `trace`.
        precision: bool,
    },
    /// Snapshot the daemon metrics as JSON.
    Stats {
        /// Client correlation id.
        id: Value,
    },
    /// Export the daemon metrics as Prometheus text.
    Metrics {
        /// Client correlation id.
        id: Value,
    },
    /// Liveness probe: uptime, version, worker count and cache state.
    Health {
        /// Client correlation id.
        id: Value,
    },
    /// Dump the flight-recorder ring inline (and to the `--postmortem`
    /// file when one is configured).
    Dump {
        /// Client correlation id.
        id: Value,
    },
    /// Stop accepting work (socket mode; stdin mode stops at EOF).
    Shutdown,
}

/// Parses one request line. `Err` carries the message for an
/// `{"ok": false}` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = serde_json::from_str(line).map_err(|e| format!("bad request: {e}"))?;
    if value.as_object().is_none() {
        return Err("bad request: expected a JSON object".to_string());
    }
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    match value.get("cmd").and_then(Value::as_str) {
        Some("stats") => return Ok(Request::Stats { id }),
        Some("metrics") => return Ok(Request::Metrics { id }),
        Some("health") => return Ok(Request::Health { id }),
        Some("dump") => return Ok(Request::Dump { id }),
        Some("shutdown") => return Ok(Request::Shutdown),
        Some(other) => return Err(format!("bad request: unknown cmd {other:?}")),
        None => {}
    }
    let Some(source) = value.get("source").and_then(Value::as_str) else {
        return Err("bad request: missing \"source\" (or \"cmd\")".to_string());
    };
    if source.len() > MAX_SOURCE_BYTES {
        return Err(format!(
            "bad request: \"source\" is {} bytes, limit is {MAX_SOURCE_BYTES}",
            source.len()
        ));
    }
    let mut opts = Options::default();
    if let Some(o) = value.get("opts") {
        if o.as_object().is_none() {
            return Err("bad request: \"opts\" must be an object".to_string());
        }
        let flag = |key: &str, default: bool| -> Result<bool, String> {
            match o.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| format!("bad request: \"opts\".{key} must be a boolean")),
            }
        };
        opts.symbolic = flag("symbolic", opts.symbolic)?;
        opts.if_conditions = flag("if_conditions", opts.if_conditions)?;
        opts.interprocedural = flag("interprocedural", opts.interprocedural)?;
        opts.forall_ext = flag("forall_ext", opts.forall_ext)?;
        opts.value_range = flag("value_range", opts.value_range)?;
        opts.content = flag("content", opts.content)?;
    }
    let flag = |key: &str| -> Result<bool, String> {
        match value.get(key) {
            None => Ok(false),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| format!("bad request: \"{key}\" must be a boolean")),
        }
    };
    let oracle = flag("oracle")?;
    let trace = flag("trace")?;
    let emit = flag("emit")?;
    let precision = flag("precision")?;
    let budget = |key: &str| -> Result<Option<u64>, String> {
        match value.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("bad request: \"{key}\" must be a non-negative integer")),
        }
    };
    let mut limits = FuelLimits::unlimited();
    limits.steps = budget("fuel")?;
    limits.deadline_ms = budget("timeout_ms")?;
    Ok(Request::Analyze {
        id,
        source: source.to_string(),
        opts,
        oracle,
        limits,
        trace,
        emit,
        precision,
    })
}

/// Renders a response object as its NDJSON line. Serializing a `Value`
/// cannot fail in practice (every string is already valid UTF-8 and the
/// tree is finite), but a response line must go out in stream position
/// no matter what — a panic here would silently drop the response and
/// desynchronize the client — so the impossible case degrades to a
/// well-formed error line instead of unwinding.
fn response_line(obj: &Value) -> String {
    serde_json::to_string(obj).unwrap_or_else(|e| {
        format!("{{\"id\": null, \"ok\": false, \"error\": \"internal: cannot serialize response: {e}\"}}")
    })
}

/// A successful analysis response line.
pub fn ok_response(id: &Value, report: Value) -> String {
    let obj = Value::Object(vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Value::Bool(true)),
        ("report".to_string(), report),
    ]);
    response_line(&obj)
}

/// A successful analysis response line with the request's span tree
/// attached (the `"trace": true` form).
pub fn traced_response(id: &Value, report: Value, trace: Value) -> String {
    let obj = Value::Object(vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Value::Bool(true)),
        ("report".to_string(), report),
        ("trace".to_string(), trace),
    ]);
    response_line(&obj)
}

/// A Prometheus-text metrics response line.
pub fn metrics_response(id: &Value, text: String) -> String {
    let obj = Value::Object(vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Value::Bool(true)),
        ("metrics".to_string(), Value::Str(text)),
    ]);
    response_line(&obj)
}

/// A health-probe response line.
pub fn health_response(id: &Value, health: Value) -> String {
    let obj = Value::Object(vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Value::Bool(true)),
        ("health".to_string(), health),
    ]);
    response_line(&obj)
}

/// A flight-recorder dump response line.
pub fn dump_response(id: &Value, flight: Value) -> String {
    let obj = Value::Object(vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Value::Bool(true)),
        ("flight".to_string(), flight),
    ]);
    response_line(&obj)
}

/// A stats snapshot response line.
pub fn stats_response(id: &Value, stats: Value) -> String {
    let obj = Value::Object(vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Value::Bool(true)),
        ("stats".to_string(), stats),
    ]);
    response_line(&obj)
}

/// The response line for a request whose worker panicked: the panic is
/// contained, reported in stream position, and the daemon keeps
/// serving. The error is structured so clients can tell an internal
/// fault from a bad request.
pub fn panic_response(id: &Value, message: &str) -> String {
    let obj = Value::Object(vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Value::Bool(false)),
        (
            "error".to_string(),
            Value::Object(vec![
                ("kind".to_string(), Value::Str("internal_panic".to_string())),
                ("message".to_string(), Value::Str(message.to_string())),
            ]),
        ),
    ]);
    response_line(&obj)
}

/// An error response line.
pub fn error_response(id: &Value, message: &str) -> String {
    let obj = Value::Object(vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Str(message.to_string())),
    ]);
    response_line(&obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_analyze_with_opts() {
        let r = parse_request(
            r#"{"id": 7, "source": "      END", "opts": {"forall_ext": true, "symbolic": false, "content": true}, "oracle": true}"#,
        )
        .unwrap();
        let Request::Analyze {
            id,
            source,
            opts,
            oracle,
            limits,
            trace,
            emit,
            precision,
        } = r
        else {
            panic!("not an analyze request");
        };
        assert_eq!(id, Value::Int(7));
        assert_eq!(source, "      END");
        assert!(opts.forall_ext && !opts.symbolic && opts.if_conditions);
        assert!(opts.content, "daemon opts must carry the content toggle");
        assert!(oracle);
        assert!(limits.is_unlimited());
        assert!(!trace);
        assert!(!emit);
        assert!(!precision);
    }

    #[test]
    fn parses_precision_flag() {
        let r = parse_request(r#"{"id": 1, "source": "      END", "precision": true}"#).unwrap();
        let Request::Analyze { precision, .. } = r else {
            panic!("not an analyze request");
        };
        assert!(precision);
        assert!(parse_request(r#"{"id": 1, "source": "      END", "precision": 1}"#).is_err());
    }

    #[test]
    fn parses_emit_flag() {
        let r = parse_request(r#"{"id": 1, "source": "      END", "emit": true}"#).unwrap();
        let Request::Analyze { emit, .. } = r else {
            panic!("not an analyze request");
        };
        assert!(emit);
        assert!(parse_request(r#"{"id": 1, "source": "      END", "emit": "y"}"#).is_err());
    }

    #[test]
    fn parses_trace_flag() {
        let r = parse_request(r#"{"id": 1, "source": "      END", "trace": true}"#).unwrap();
        let Request::Analyze { trace, .. } = r else {
            panic!("not an analyze request");
        };
        assert!(trace);
        assert!(parse_request(r#"{"id": 1, "source": "      END", "trace": 1}"#).is_err());
    }

    #[test]
    fn parses_budget_fields() {
        let r =
            parse_request(r#"{"id": 1, "source": "      END", "fuel": 500, "timeout_ms": 2000}"#)
                .unwrap();
        let Request::Analyze { limits, .. } = r else {
            panic!("not an analyze request");
        };
        assert_eq!(limits.steps, Some(500));
        assert_eq!(limits.deadline_ms, Some(2000));
        assert!(parse_request(r#"{"id": 1, "source": "      END", "fuel": -3}"#).is_err());
        assert!(
            parse_request(r#"{"id": 1, "source": "      END", "timeout_ms": "soon"}"#).is_err()
        );
    }

    #[test]
    fn rejects_oversized_source() {
        let big = "x".repeat(MAX_SOURCE_BYTES + 1);
        let line = serde_json::to_string(&Value::Object(vec![
            ("id".to_string(), Value::Int(1)),
            ("source".to_string(), Value::Str(big)),
        ]))
        .unwrap();
        let err = parse_request(&line).unwrap_err();
        assert!(err.contains("limit"), "{err}");
    }

    #[test]
    fn panic_response_is_structured() {
        let v: Value = serde_json::from_str(&panic_response(&Value::Int(3), "boom")).unwrap();
        assert_eq!(v.get("ok").unwrap(), &Value::Bool(false));
        let err = v.get("error").unwrap();
        assert_eq!(
            err.get("kind").unwrap(),
            &Value::Str("internal_panic".into())
        );
        assert_eq!(err.get("message").unwrap(), &Value::Str("boom".into()));
    }

    #[test]
    fn parses_commands() {
        assert!(matches!(
            parse_request(r#"{"id": "x", "cmd": "stats"}"#),
            Ok(Request::Stats { .. })
        ));
        assert!(matches!(
            parse_request(r#"{"id": "h", "cmd": "health"}"#),
            Ok(Request::Health { .. })
        ));
        assert!(matches!(
            parse_request(r#"{"id": "d", "cmd": "dump"}"#),
            Ok(Request::Dump { .. })
        ));
        assert!(matches!(
            parse_request(r#"{"id": "p", "cmd": "metrics"}"#),
            Ok(Request::Metrics { .. })
        ));
        assert!(matches!(
            parse_request(r#"{"cmd": "shutdown"}"#),
            Ok(Request::Shutdown)
        ));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("[1, 2]").is_err());
        assert!(parse_request(r#"{"id": 1}"#).is_err());
        assert!(parse_request(r#"{"cmd": "nope"}"#).is_err());
        assert!(parse_request(r#"{"id": 1, "source": "x", "oracle": "yes"}"#).is_err());
        assert!(parse_request(r#"{"id": 1, "source": "x", "opts": {"symbolic": 1}}"#).is_err());
    }

    #[test]
    fn responses_round_trip() {
        let id = Value::Str("a".into());
        for line in [
            ok_response(&id, Value::Null),
            traced_response(&id, Value::Null, Value::Object(vec![])),
            metrics_response(&id, "# TYPE x counter\n".to_string()),
            stats_response(&id, Value::Object(vec![])),
            health_response(&id, Value::Object(vec![])),
            dump_response(&id, Value::Object(vec![])),
            error_response(&id, "boom"),
        ] {
            let v = serde_json::from_str(&line).unwrap();
            assert_eq!(v.get("id").unwrap(), &id);
            assert!(v.get("ok").is_some());
        }
    }
}
