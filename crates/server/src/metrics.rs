//! Daemon metrics: request counters, aggregate phase timings, per-phase
//! latency histograms, queue gauges and cache counters, snapshotted by
//! the `{"cmd": "stats"}` request, exported as Prometheus text by
//! `{"cmd": "metrics"}` and dumped at shutdown under `--metrics`.

use dataflow::{CacheCounters, DiskTierSnapshot};
use panorama::PhaseTimes;
use serde::Value;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use trace::ledger::{Cause, PrecisionEvent};

/// One exported Prometheus series family: its canonical name, metric
/// kind and help string. Every family the daemon can emit — on any of
/// its three surfaces (`{"cmd": "metrics"}`, `{"cmd": "stats"}`, the
/// `--metrics` stderr summary) — has exactly one row here; the
/// exposition writer refuses (panics in tests) to emit a sample whose
/// family is missing, which is what keeps the surfaces from drifting
/// apart name by name.
pub struct Series {
    /// Canonical metric family name (`panorama_*`).
    pub name: &'static str,
    /// `counter`, `gauge` or `histogram`.
    pub kind: &'static str,
    /// The `# HELP` text.
    pub help: &'static str,
}

/// The canonical series registry (DESIGN.md §4j). Order is exposition
/// order for the unconditional families; cache/disk families appear
/// only when the corresponding tier exists.
pub const SERIES: &[Series] = &[
    Series {
        name: "panorama_requests_total",
        kind: "counter",
        help: "Requests by outcome (completed/failed/degraded/timeouts/panics/oracle_runs/trace_bypass).",
    },
    Series {
        name: "panorama_lints_total",
        kind: "counter",
        help: "Lints emitted by completed analyses, by stable panolint code.",
    },
    Series {
        name: "panorama_precision_events_total",
        kind: "counter",
        help: "Precision-loss ledger events recorded by requests, by stable cause.",
    },
    Series {
        name: "panorama_precision_events_dropped_total",
        kind: "counter",
        help: "Precision-loss events dropped past the per-request ledger cap.",
    },
    Series {
        name: "panorama_queue_depth",
        kind: "gauge",
        help: "Requests currently queued or being analyzed.",
    },
    Series {
        name: "panorama_queue_peak_depth",
        kind: "gauge",
        help: "Highest queue depth observed.",
    },
    Series {
        name: "panorama_peak_state_size",
        kind: "gauge",
        help: "Largest per-request peak transient GAR state (memory proxy).",
    },
    Series {
        name: "panorama_cache_hits_total",
        kind: "counter",
        help: "Routine-summary cache hits.",
    },
    Series {
        name: "panorama_cache_misses_total",
        kind: "counter",
        help: "Routine-summary cache misses.",
    },
    Series {
        name: "panorama_cache_evictions_total",
        kind: "counter",
        help: "Routine-summary cache evictions.",
    },
    Series {
        name: "panorama_cache_entries",
        kind: "gauge",
        help: "Routine-summary cache entries resident in memory.",
    },
    Series {
        name: "panorama_cache_disk_hits_total",
        kind: "counter",
        help: "Disk-tier cache hits.",
    },
    Series {
        name: "panorama_cache_disk_misses_total",
        kind: "counter",
        help: "Disk-tier cache misses.",
    },
    Series {
        name: "panorama_cache_disk_quarantined_total",
        kind: "counter",
        help: "Disk-tier segments quarantined after corruption.",
    },
    Series {
        name: "panorama_cache_disk_write_errors_total",
        kind: "counter",
        help: "Disk-tier write errors (degraded to memory-only, never failing requests).",
    },
    Series {
        name: "panorama_cache_disk_evictions_total",
        kind: "counter",
        help: "Disk-tier evictions under the byte budget.",
    },
    Series {
        name: "panorama_cache_disk_bytes",
        kind: "gauge",
        help: "Bytes resident in the disk tier.",
    },
    Series {
        name: "panorama_cache_disk_entries",
        kind: "gauge",
        help: "Entries resident in the disk tier.",
    },
    Series {
        name: "panorama_cache_disk_segments",
        kind: "gauge",
        help: "Segment files in the disk tier.",
    },
    Series {
        name: "panorama_cache_disk_disabled",
        kind: "gauge",
        help: "1 when the disk tier is disabled (see stats disk_disabled for the reason).",
    },
    Series {
        name: "panorama_phase_latency_microseconds",
        kind: "histogram",
        help: "Per-phase analysis latency, log2-bucketed microseconds.",
    },
];

/// Looks up a family in [`SERIES`]; emitting an unregistered family is
/// a programming error the drift tests catch.
fn series(name: &str) -> &'static Series {
    SERIES
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("metric family {name} is not in the canonical registry"))
}

/// Appends the `# HELP` / `# TYPE` header for a registered family.
fn header(out: &mut String, name: &str) {
    let s = series(name);
    out.push_str(&format!(
        "# HELP {} {}\n# TYPE {} {}\n",
        s.name, s.help, s.name, s.kind
    ));
}

/// Lints a Prometheus text exposition: legal family/label names, every
/// sample preceded by its family's `# HELP` and `# TYPE`, histogram
/// `le` buckets monotone (in bound and in cumulative count) and ending
/// at `+Inf`. Returns the first violation.
pub fn lint_exposition(text: &str) -> Result<(), String> {
    fn legal_name(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    use std::collections::{BTreeMap, BTreeSet};
    let mut helped: BTreeSet<String> = BTreeSet::new();
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    // (family, label-set-minus-le) -> (last bound, last cumulative
    // count, saw +Inf) for histogram bucket monotonicity.
    let mut buckets: BTreeMap<(String, String), (f64, u64, bool)> = BTreeMap::new();
    for (n, line) in text.lines().enumerate() {
        let ctx = |msg: String| format!("line {}: {msg}", n + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            if !legal_name(name) {
                return Err(ctx(format!("illegal family name in HELP: {name:?}")));
            }
            if rest.trim_end().len() <= name.len() {
                return Err(ctx(format!("empty HELP text for {name}")));
            }
            helped.insert(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !legal_name(name) {
                return Err(ctx(format!("illegal family name in TYPE: {name:?}")));
            }
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                return Err(ctx(format!("illegal metric type {kind:?} for {name}")));
            }
            typed.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: name{labels} value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| ctx(format!("malformed sample: {line:?}")))?;
        let name = &line[..name_end];
        if !legal_name(name) {
            return Err(ctx(format!("illegal sample name: {name:?}")));
        }
        let (labels, value_text) = match line[name_end..].strip_prefix('{') {
            Some(rest) => {
                let close = rest
                    .find('}')
                    .ok_or_else(|| ctx(format!("unterminated label set: {line:?}")))?;
                (&rest[..close], rest[close + 1..].trim())
            }
            None => ("", line[name_end..].trim()),
        };
        for pair in labels.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| ctx(format!("malformed label pair {pair:?}")))?;
            if !legal_name(k) {
                return Err(ctx(format!("illegal label name {k:?}")));
            }
            if !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                return Err(ctx(format!("unquoted label value {v:?}")));
            }
        }
        let value: f64 = value_text
            .parse()
            .map_err(|_| ctx(format!("unparsable sample value {value_text:?}")))?;
        // The family of `x_bucket`/`x_sum`/`x_count` is `x` when `x` is
        // a typed histogram.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                let base = name.strip_suffix(suf)?;
                (typed.get(base).map(String::as_str) == Some("histogram")).then_some(base)
            })
            .unwrap_or(name);
        if !typed.contains_key(family) {
            return Err(ctx(format!("sample {name} has no preceding # TYPE")));
        }
        if !helped.contains(family) {
            return Err(ctx(format!("sample {name} has no preceding # HELP")));
        }
        if name.ends_with("_bucket") && typed.get(family).map(String::as_str) == Some("histogram") {
            let mut le = None;
            let others: Vec<&str> = labels
                .split(',')
                .filter(|p| !p.is_empty())
                .filter(|p| match p.split_once('=') {
                    Some(("le", v)) => {
                        le = Some(v.trim_matches('"').to_string());
                        false
                    }
                    _ => true,
                })
                .collect();
            let le = le.ok_or_else(|| ctx(format!("bucket sample without le: {line:?}")))?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse()
                    .map_err(|_| ctx(format!("unparsable le bound {le:?}")))?
            };
            let key = (family.to_string(), others.join(","));
            let entry = buckets.entry(key).or_insert((f64::NEG_INFINITY, 0, false));
            if bound <= entry.0 {
                return Err(ctx(format!("non-increasing le bounds for {name}")));
            }
            if (value as u64) < entry.1 {
                return Err(ctx(format!("non-monotone cumulative counts for {name}")));
            }
            *entry = (bound, value as u64, le == "+Inf");
        }
    }
    for ((family, labels), (_, _, saw_inf)) in &buckets {
        if !saw_inf {
            return Err(format!(
                "histogram {family}{{{labels}}} bucket series does not end at +Inf"
            ));
        }
    }
    Ok(())
}

/// Histogram bucket count: upper bounds 2⁰..2²⁰ microseconds plus a
/// final +Inf overflow bucket.
const HIST_BUCKETS: usize = 22;

/// A lock-free log2-bucketed latency histogram. Bucket `k < 21` counts
/// observations `v` with `2^(k-1) < v <= 2^k` microseconds (bucket 0
/// holds `v <= 1`); bucket 21 is the +Inf overflow. Covers 1 µs to
/// ~1 s, beyond which the wall-clock deadline dominates anyway.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn bucket_index(us: u64) -> usize {
        if us <= 1 {
            0
        } else {
            ((u64::BITS - (us - 1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// The upper bound of bucket `k`, rendered Prometheus-style.
    fn bound(k: usize) -> String {
        if k == HIST_BUCKETS - 1 {
            "+Inf".to_string()
        } else {
            (1u64 << k).to_string()
        }
    }

    /// Records one observation, in microseconds.
    pub fn record(&self, us: u64) {
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn loaded(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|k| self.buckets[k].load(Ordering::Relaxed))
    }

    /// An upper bound on the `q` quantile (0..=1): the bound of the
    /// first bucket whose cumulative count reaches it, `0` when empty.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        let buckets = self.loaded();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = (q * total as f64).ceil() as u64;
        let mut cum = 0u64;
        for (k, b) in buckets.iter().enumerate() {
            cum += b;
            if cum >= target.max(1) {
                return 1u64 << k.min(HIST_BUCKETS - 2);
            }
        }
        1u64 << (HIST_BUCKETS - 2)
    }

    /// The histogram as a JSON object: non-cumulative bucket counts
    /// keyed by upper bound, plus `sum` and `count`.
    pub fn snapshot(&self) -> Value {
        let buckets = self.loaded();
        let mut fields: Vec<(String, Value)> = buckets
            .iter()
            .enumerate()
            .map(|(k, &c)| (format!("le_{}", Self::bound(k)), Value::UInt(c)))
            .collect();
        fields.push((
            "sum".to_string(),
            Value::UInt(self.sum.load(Ordering::Relaxed)),
        ));
        fields.push(("count".to_string(), Value::UInt(self.count())));
        Value::Object(fields)
    }

    /// Appends the Prometheus exposition lines (cumulative `_bucket`
    /// series, `_sum`, `_count`) for this histogram under `name` with a
    /// `phase` label.
    fn prometheus_into(&self, out: &mut String, name: &str, phase: &str) {
        let buckets = self.loaded();
        let mut cum = 0u64;
        for (k, &b) in buckets.iter().enumerate() {
            cum += b;
            out.push_str(&format!(
                "{name}_bucket{{phase=\"{phase}\",le=\"{}\"}} {cum}\n",
                Self::bound(k)
            ));
        }
        out.push_str(&format!(
            "{name}_sum{{phase=\"{phase}\"}} {}\n",
            self.sum.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "{name}_count{{phase=\"{phase}\"}} {}\n",
            self.count()
        ));
    }
}

/// One latency histogram per analysis phase.
#[derive(Default)]
pub struct PhaseHistograms {
    /// Lex + parse.
    pub parse: Histogram,
    /// Symbol tables + call graph.
    pub sema: Histogram,
    /// HSG construction.
    pub hsg: Histogram,
    /// Conventional pre-filter.
    pub conventional: Histogram,
    /// Dataflow analysis + verdicts.
    pub dataflow: Histogram,
}

impl PhaseHistograms {
    fn phases(&self) -> [(&'static str, &Histogram); 5] {
        [
            ("parse", &self.parse),
            ("sema", &self.sema),
            ("hsg", &self.hsg),
            ("conventional", &self.conventional),
            ("dataflow", &self.dataflow),
        ]
    }
}

/// Shared, lock-free metric counters. One instance lives for the whole
/// daemon; workers update it as requests complete.
#[derive(Default)]
pub struct Metrics {
    /// Requests answered with `ok: true` (stats requests excluded).
    pub completed: AtomicU64,
    /// Requests answered with `ok: false`.
    pub failed: AtomicU64,
    /// Completed requests whose analysis ran out of budget and was
    /// widened to a conservative report (`degraded: true`).
    pub degraded: AtomicU64,
    /// Degraded requests whose budget reason was the wall-clock
    /// deadline (a subset of `degraded`).
    pub timeouts: AtomicU64,
    /// Worker panics contained by the per-job isolation barrier.
    pub panics: AtomicU64,
    /// Completed requests that also ran the race oracle.
    pub oracle_runs: AtomicU64,
    /// Requests currently queued or being analyzed.
    pub queue_depth: AtomicUsize,
    /// Highest queue depth observed.
    pub peak_queue_depth: AtomicUsize,
    /// Largest per-request peak transient GAR state (memory proxy).
    pub peak_state_size: AtomicUsize,
    /// Traced requests (`"trace": true`) that skipped the warm summary
    /// cache to keep the span tree deterministic. Distinct from cache
    /// misses: the cache was available but deliberately bypassed.
    pub trace_bypass: AtomicU64,
    /// Lints emitted by completed analyses, one counter per stable
    /// `panolint` code (index = position in [`panorama::LintCode::ALL`]).
    pub lints: [AtomicU64; panorama::LintCode::ALL.len()],
    /// Precision-loss ledger events recorded by requests, one counter
    /// per stable cause (index = position in [`Cause::ALL`]).
    pub precision: [AtomicU64; Cause::ALL.len()],
    /// Precision events dropped past the per-request ledger cap.
    pub precision_dropped: AtomicU64,
    /// Aggregate per-phase analysis time, in microseconds.
    pub parse_micros: AtomicU64,
    /// Semantic analysis time.
    pub sema_micros: AtomicU64,
    /// HSG construction time.
    pub hsg_micros: AtomicU64,
    /// Conventional pre-filter time.
    pub conventional_micros: AtomicU64,
    /// Dataflow analysis + verdict time.
    pub dataflow_micros: AtomicU64,
    /// Per-phase latency distributions (log2-bucketed microseconds),
    /// one observation per completed analysis.
    pub phase_hist: PhaseHistograms,
}

impl Metrics {
    /// Records a request entering the queue.
    pub fn enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a request leaving the system (answered, either way).
    pub fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Folds one completed analysis into the aggregates.
    pub fn record_analysis(&self, times: &PhaseTimes, peak_state_size: usize, oracle: bool) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if oracle {
            self.oracle_runs.fetch_add(1, Ordering::Relaxed);
        }
        self.peak_state_size
            .fetch_max(peak_state_size, Ordering::Relaxed);
        let add = |counter: &AtomicU64, hist: &Histogram, d: std::time::Duration| {
            let us = d.as_micros() as u64;
            counter.fetch_add(us, Ordering::Relaxed);
            hist.record(us);
        };
        add(&self.parse_micros, &self.phase_hist.parse, times.parse);
        add(&self.sema_micros, &self.phase_hist.sema, times.sema);
        add(&self.hsg_micros, &self.phase_hist.hsg, times.hsg);
        add(
            &self.conventional_micros,
            &self.phase_hist.conventional,
            times.conventional,
        );
        add(
            &self.dataflow_micros,
            &self.phase_hist.dataflow,
            times.dataflow,
        );
    }

    /// Records a failed request.
    pub fn record_failure(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a completed analysis's lints into the per-code counters.
    pub fn record_lints(&self, lints: &[panorama::Lint]) {
        for l in lints {
            if let Some(k) = panorama::LintCode::ALL.iter().position(|c| *c == l.code) {
                self.lints[k].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records a completed-but-degraded analysis.
    pub fn record_degraded(&self, reason: Option<panorama::DegradeReason>) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
        if reason == Some(panorama::DegradeReason::Deadline) {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds one request's precision ledger into the per-cause
    /// counters. Every request contributes (the ledger is always on in
    /// the daemon), so the counters cover untraced and unaccounted
    /// requests too.
    pub fn record_precision(&self, events: &[PrecisionEvent], dropped: u64) {
        for e in events {
            if let Some(k) = Cause::ALL.iter().position(|c| *c == e.cause) {
                self.precision[k].fetch_add(1, Ordering::Relaxed);
            }
        }
        if dropped > 0 {
            self.precision_dropped.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Records a traced request that bypassed the warm summary cache.
    pub fn record_trace_bypass(&self) {
        self.trace_bypass.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a worker panic that was caught and turned into an
    /// `internal_panic` response (or a synthesized one at finish).
    pub fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// The stats snapshot as a JSON object (the `"stats"` payload of a
    /// `{"cmd": "stats"}` response).
    pub fn snapshot(&self, cache: Option<CacheCounters>, disk: Option<DiskTierSnapshot>) -> Value {
        let load = |c: &AtomicU64| Value::UInt(c.load(Ordering::Relaxed));
        let cache_obj = match cache {
            None => Value::Null,
            Some(c) => {
                let mut fields = vec![
                    ("hits".to_string(), Value::UInt(c.hits)),
                    ("misses".to_string(), Value::UInt(c.misses)),
                    ("entries".to_string(), Value::UInt(c.entries as u64)),
                    ("evictions".to_string(), Value::UInt(c.evictions)),
                    ("hit_ratio".to_string(), Value::Float(c.hit_ratio())),
                ];
                if let Some(d) = &disk {
                    fields.extend([
                        ("disk_hits".to_string(), Value::UInt(d.disk_hits)),
                        ("disk_misses".to_string(), Value::UInt(d.disk_misses)),
                        ("quarantined".to_string(), Value::UInt(d.quarantined)),
                        ("write_errors".to_string(), Value::UInt(d.write_errors)),
                        ("bytes_on_disk".to_string(), Value::UInt(d.bytes_on_disk)),
                        ("disk_entries".to_string(), Value::UInt(d.entries as u64)),
                        ("disk_segments".to_string(), Value::UInt(d.segments as u64)),
                        ("disk_evictions".to_string(), Value::UInt(d.evictions)),
                        (
                            "disk_disabled".to_string(),
                            match &d.disabled {
                                None => Value::Null,
                                Some(reason) => Value::Str(reason.clone()),
                            },
                        ),
                    ]);
                }
                Value::Object(fields)
            }
        };
        Value::Object(vec![
            (
                "requests".to_string(),
                Value::Object(vec![
                    ("completed".to_string(), load(&self.completed)),
                    ("failed".to_string(), load(&self.failed)),
                    ("degraded".to_string(), load(&self.degraded)),
                    ("timeouts".to_string(), load(&self.timeouts)),
                    ("panics".to_string(), load(&self.panics)),
                    ("oracle_runs".to_string(), load(&self.oracle_runs)),
                    ("trace_bypass".to_string(), load(&self.trace_bypass)),
                ]),
            ),
            (
                "lints".to_string(),
                Value::Object(
                    panorama::LintCode::ALL
                        .iter()
                        .enumerate()
                        .map(|(k, c)| (c.code().to_string(), load(&self.lints[k])))
                        .collect(),
                ),
            ),
            (
                "precision".to_string(),
                Value::Object(vec![
                    (
                        "events".to_string(),
                        Value::Object(
                            Cause::ALL
                                .iter()
                                .enumerate()
                                .map(|(k, c)| (c.as_str().to_string(), load(&self.precision[k])))
                                .collect(),
                        ),
                    ),
                    ("events_dropped".to_string(), load(&self.precision_dropped)),
                ]),
            ),
            ("cache".to_string(), cache_obj),
            (
                "queue".to_string(),
                Value::Object(vec![
                    (
                        "depth".to_string(),
                        Value::UInt(self.queue_depth.load(Ordering::Relaxed) as u64),
                    ),
                    (
                        "peak_depth".to_string(),
                        Value::UInt(self.peak_queue_depth.load(Ordering::Relaxed) as u64),
                    ),
                ]),
            ),
            (
                "peak_state_size".to_string(),
                Value::UInt(self.peak_state_size.load(Ordering::Relaxed) as u64),
            ),
            (
                "phase_micros".to_string(),
                Value::Object(vec![
                    ("parse".to_string(), load(&self.parse_micros)),
                    ("sema".to_string(), load(&self.sema_micros)),
                    ("hsg".to_string(), load(&self.hsg_micros)),
                    ("conventional".to_string(), load(&self.conventional_micros)),
                    ("dataflow".to_string(), load(&self.dataflow_micros)),
                ]),
            ),
            (
                "phase_histograms_us".to_string(),
                Value::Object(
                    self.phase_hist
                        .phases()
                        .iter()
                        .map(|(name, h)| (name.to_string(), h.snapshot()))
                        .collect(),
                ),
            ),
        ])
    }

    /// The metrics in Prometheus text exposition format (the `"metrics"`
    /// payload of a `{"cmd": "metrics"}` response).
    pub fn prometheus(
        &self,
        cache: Option<CacheCounters>,
        disk: Option<DiskTierSnapshot>,
    ) -> String {
        let mut out = String::new();
        header(&mut out, "panorama_requests_total");
        for (outcome, c) in [
            ("completed", &self.completed),
            ("failed", &self.failed),
            ("degraded", &self.degraded),
            ("timeouts", &self.timeouts),
            ("panics", &self.panics),
            ("oracle_runs", &self.oracle_runs),
            ("trace_bypass", &self.trace_bypass),
        ] {
            out.push_str(&format!(
                "panorama_requests_total{{outcome=\"{outcome}\"}} {}\n",
                c.load(Ordering::Relaxed)
            ));
        }
        header(&mut out, "panorama_lints_total");
        for (k, code) in panorama::LintCode::ALL.iter().enumerate() {
            out.push_str(&format!(
                "panorama_lints_total{{code=\"{}\"}} {}\n",
                code.code(),
                self.lints[k].load(Ordering::Relaxed)
            ));
        }
        header(&mut out, "panorama_precision_events_total");
        for (k, cause) in Cause::ALL.iter().enumerate() {
            out.push_str(&format!(
                "panorama_precision_events_total{{cause=\"{}\"}} {}\n",
                cause.as_str(),
                self.precision[k].load(Ordering::Relaxed)
            ));
        }
        header(&mut out, "panorama_precision_events_dropped_total");
        out.push_str(&format!(
            "panorama_precision_events_dropped_total {}\n",
            self.precision_dropped.load(Ordering::Relaxed)
        ));
        for (name, v) in [
            (
                "panorama_queue_depth",
                self.queue_depth.load(Ordering::Relaxed) as u64,
            ),
            (
                "panorama_queue_peak_depth",
                self.peak_queue_depth.load(Ordering::Relaxed) as u64,
            ),
            (
                "panorama_peak_state_size",
                self.peak_state_size.load(Ordering::Relaxed) as u64,
            ),
        ] {
            header(&mut out, name);
            out.push_str(&format!("{name} {v}\n"));
        }
        if let Some(c) = cache {
            for (name, v) in [
                ("panorama_cache_hits_total", c.hits),
                ("panorama_cache_misses_total", c.misses),
                ("panorama_cache_evictions_total", c.evictions),
                ("panorama_cache_entries", c.entries as u64),
            ] {
                header(&mut out, name);
                out.push_str(&format!("{name} {v}\n"));
            }
        }
        if let Some(d) = disk {
            for (name, v) in [
                ("panorama_cache_disk_hits_total", d.disk_hits),
                ("panorama_cache_disk_misses_total", d.disk_misses),
                ("panorama_cache_disk_quarantined_total", d.quarantined),
                ("panorama_cache_disk_write_errors_total", d.write_errors),
                ("panorama_cache_disk_evictions_total", d.evictions),
                ("panorama_cache_disk_bytes", d.bytes_on_disk),
                ("panorama_cache_disk_entries", d.entries as u64),
                ("panorama_cache_disk_segments", d.segments as u64),
                (
                    "panorama_cache_disk_disabled",
                    u64::from(d.disabled.is_some()),
                ),
            ] {
                header(&mut out, name);
                out.push_str(&format!("{name} {v}\n"));
            }
        }
        header(&mut out, "panorama_phase_latency_microseconds");
        for (phase, h) in self.phase_hist.phases() {
            h.prometheus_into(&mut out, "panorama_phase_latency_microseconds", phase);
        }
        out
    }

    /// Renders the shutdown summary printed to stderr under `--metrics`.
    pub fn render(&self, cache: Option<CacheCounters>, disk: Option<DiskTierSnapshot>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "panoramad: {} completed, {} failed, {} oracle runs, peak queue {}\n",
            self.completed.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
            self.oracle_runs.load(Ordering::Relaxed),
            self.peak_queue_depth.load(Ordering::Relaxed),
        ));
        out.push_str(&format!(
            "panoramad: {} degraded ({} deadline timeouts), {} worker panics contained\n",
            self.degraded.load(Ordering::Relaxed),
            self.timeouts.load(Ordering::Relaxed),
            self.panics.load(Ordering::Relaxed),
        ));
        match cache {
            Some(c) => out.push_str(&format!(
                "panoramad: cache {} hits / {} misses ({:.0}% hit ratio), {} entries, {} evictions\n",
                c.hits,
                c.misses,
                100.0 * c.hit_ratio(),
                c.entries,
                c.evictions,
            )),
            None => out.push_str("panoramad: cache disabled\n"),
        }
        if let Some(d) = disk {
            out.push_str(&format!(
                "panoramad: disk cache {} hits / {} misses, {} quarantined, {} write errors, {} bytes in {} segments\n",
                d.disk_hits, d.disk_misses, d.quarantined, d.write_errors, d.bytes_on_disk, d.segments,
            ));
            if let Some(reason) = &d.disabled {
                out.push_str(&format!("panoramad: disk cache disabled: {reason}\n"));
            }
        }
        let lint_counts: Vec<String> = panorama::LintCode::ALL
            .iter()
            .enumerate()
            .map(|(k, c)| format!("{}={}", c.code(), self.lints[k].load(Ordering::Relaxed)))
            .collect();
        out.push_str(&format!("panoramad: lints {}\n", lint_counts.join(" ")));
        let precision_counts: Vec<String> = Cause::ALL
            .iter()
            .enumerate()
            .map(|(k, c)| {
                format!(
                    "{}={}",
                    c.as_str(),
                    self.precision[k].load(Ordering::Relaxed)
                )
            })
            .collect();
        out.push_str(&format!(
            "panoramad: precision events {} dropped={}\n",
            precision_counts.join(" "),
            self.precision_dropped.load(Ordering::Relaxed),
        ));
        out.push_str(&format!(
            "panoramad: phase micros parse={} sema={} hsg={} conventional={} dataflow={}, peak state {} GAR units\n",
            self.parse_micros.load(Ordering::Relaxed),
            self.sema_micros.load(Ordering::Relaxed),
            self.hsg_micros.load(Ordering::Relaxed),
            self.conventional_micros.load(Ordering::Relaxed),
            self.dataflow_micros.load(Ordering::Relaxed),
            self.peak_state_size.load(Ordering::Relaxed),
        ));
        if self.phase_hist.dataflow.count() > 0 {
            let bounds: Vec<String> = self
                .phase_hist
                .phases()
                .iter()
                .map(|(name, h)| {
                    format!(
                        "{name}<={}/{}",
                        h.quantile_bound(0.5),
                        h.quantile_bound(0.95)
                    )
                })
                .collect();
            out.push_str(&format!(
                "panoramad: phase latency p50/p95 bounds (us) {}\n",
                bounds.join(" ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_gauges_track_peak() {
        let m = Metrics::default();
        m.enqueued();
        m.enqueued();
        m.dequeued();
        m.enqueued();
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 2);
        assert_eq!(m.peak_queue_depth.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn snapshot_shape() {
        let m = Metrics::default();
        m.record_analysis(&PhaseTimes::default(), 42, true);
        m.record_failure();
        m.record_degraded(Some(panorama::DegradeReason::Deadline));
        m.record_degraded(Some(panorama::DegradeReason::FuelExhausted));
        m.record_panic();
        let s = m.snapshot(
            Some(CacheCounters {
                hits: 3,
                misses: 1,
                entries: 2,
                evictions: 0,
            }),
            None,
        );
        assert_eq!(
            s.get("requests").unwrap().get("completed").unwrap(),
            &Value::UInt(1)
        );
        assert_eq!(
            s.get("requests").unwrap().get("failed").unwrap(),
            &Value::UInt(1)
        );
        assert_eq!(
            s.get("requests").unwrap().get("degraded").unwrap(),
            &Value::UInt(2)
        );
        assert_eq!(
            s.get("requests").unwrap().get("timeouts").unwrap(),
            &Value::UInt(1)
        );
        assert_eq!(
            s.get("requests").unwrap().get("panics").unwrap(),
            &Value::UInt(1)
        );
        assert_eq!(s.get("peak_state_size").unwrap(), &Value::UInt(42));
        assert_eq!(
            s.get("cache").unwrap().get("hits").unwrap(),
            &Value::UInt(3)
        );
        let m2 = Metrics::default();
        assert!(m2.snapshot(None, None).get("cache").unwrap().is_null());
        assert!(!m2.render(None, None).is_empty());
    }

    #[test]
    fn disk_tier_shows_up_in_all_three_surfaces() {
        let m = Metrics::default();
        let counters = CacheCounters {
            hits: 1,
            misses: 1,
            entries: 1,
            evictions: 0,
        };
        let disk = DiskTierSnapshot {
            disk_hits: 5,
            disk_misses: 2,
            quarantined: 1,
            write_errors: 3,
            bytes_on_disk: 4096,
            segments: 2,
            entries: 7,
            evictions: 1,
            disabled: Some("disk is on fire".to_string()),
        };
        let s = m.snapshot(Some(counters), Some(disk.clone()));
        let cache = s.get("cache").unwrap();
        assert_eq!(cache.get("disk_hits").unwrap(), &Value::UInt(5));
        assert_eq!(cache.get("disk_misses").unwrap(), &Value::UInt(2));
        assert_eq!(cache.get("quarantined").unwrap(), &Value::UInt(1));
        assert_eq!(cache.get("write_errors").unwrap(), &Value::UInt(3));
        assert_eq!(cache.get("bytes_on_disk").unwrap(), &Value::UInt(4096));
        assert_eq!(
            cache.get("disk_disabled").unwrap(),
            &Value::Str("disk is on fire".to_string())
        );
        let text = m.prometheus(Some(counters), Some(disk.clone()));
        assert!(text.contains("panorama_cache_disk_hits_total 5\n"));
        assert!(text.contains("panorama_cache_disk_quarantined_total 1\n"));
        assert!(text.contains("panorama_cache_disk_write_errors_total 3\n"));
        assert!(text.contains("panorama_cache_disk_bytes 4096\n"));
        assert!(text.contains("panorama_cache_disk_disabled 1\n"));
        let rendered = m.render(Some(counters), Some(disk));
        assert!(rendered.contains("disk cache 5 hits / 2 misses"));
        assert!(rendered.contains("disk cache disabled: disk is on fire"));
        // No disk tier → no disk series, and the memory-only cache
        // object carries no disk keys.
        assert!(!m
            .prometheus(Some(counters), None)
            .contains("panorama_cache_disk_"));
        let s2 = m.snapshot(Some(counters), None);
        assert!(s2.get("cache").unwrap().get("disk_hits").is_none());
    }

    fn event(cause: Cause) -> PrecisionEvent {
        PrecisionEvent {
            cause,
            routine: "r".to_string(),
            var: "v".to_string(),
            line: 1,
            detail: String::new(),
        }
    }

    #[test]
    fn precision_counters_reach_all_three_surfaces() {
        let m = Metrics::default();
        m.record_precision(
            &[
                event(Cause::FuelWiden),
                event(Cause::FuelWiden),
                event(Cause::AliasDegrade),
            ],
            3,
        );
        let snap = m.snapshot(None, None);
        let prec = snap.get("precision").unwrap();
        assert_eq!(
            prec.get("events").unwrap().get("fuel_widen").unwrap(),
            &Value::UInt(2)
        );
        assert_eq!(
            prec.get("events").unwrap().get("alias_degrade").unwrap(),
            &Value::UInt(1)
        );
        assert_eq!(
            prec.get("events").unwrap().get("lower_skip").unwrap(),
            &Value::UInt(0)
        );
        assert_eq!(prec.get("events_dropped").unwrap(), &Value::UInt(3));
        let text = m.prometheus(None, None);
        assert!(text.contains("panorama_precision_events_total{cause=\"fuel_widen\"} 2\n"));
        assert!(text.contains("panorama_precision_events_total{cause=\"alias_degrade\"} 1\n"));
        assert!(text.contains("panorama_precision_events_dropped_total 3\n"));
        let rendered = m.render(None, None);
        assert!(rendered.contains("precision events fuel_widen=2 alias_degrade=1"));
        assert!(rendered.contains("dropped=3"));
    }

    #[test]
    fn full_exposition_passes_the_linter() {
        // Populate everything — cache, disk tier, histograms, precision,
        // lints — and lint the complete exposition. Every family must
        // carry HELP + TYPE and histogram buckets must be well-formed.
        let m = Metrics::default();
        let times = PhaseTimes {
            dataflow: std::time::Duration::from_micros(300),
            ..PhaseTimes::default()
        };
        m.record_analysis(&times, 7, true);
        m.record_precision(&[event(Cause::ContentRefused)], 1);
        let counters = CacheCounters {
            hits: 3,
            misses: 1,
            entries: 2,
            evictions: 0,
        };
        let disk = DiskTierSnapshot {
            disk_hits: 5,
            disk_misses: 2,
            quarantined: 1,
            write_errors: 3,
            bytes_on_disk: 4096,
            segments: 2,
            entries: 7,
            evictions: 1,
            disabled: None,
        };
        let text = m.prometheus(Some(counters), Some(disk));
        lint_exposition(&text).unwrap();
        // Naming-drift audit: every family in the exposition is in the
        // canonical registry, with the registered kind.
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().unwrap();
                let kind = parts.next().unwrap();
                assert_eq!(series(name).kind, kind, "kind drift for {name}");
            }
        }
    }

    #[test]
    fn registry_names_are_legal_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for s in SERIES {
            assert!(s.name.starts_with("panorama_"), "bad prefix: {}", s.name);
            assert!(
                s.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "illegal character in {}",
                s.name
            );
            assert!(!s.help.is_empty(), "empty help for {}", s.name);
            assert!(
                ["counter", "gauge", "histogram"].contains(&s.kind),
                "bad kind for {}",
                s.name
            );
            assert!(seen.insert(s.name), "duplicate registry row: {}", s.name);
        }
    }

    #[test]
    fn stats_keys_match_prometheus_label_vocabulary() {
        // The stats snapshot and the Prometheus exposition must spell
        // shared concepts identically: precision causes, lint codes and
        // request outcomes come from single sources of truth.
        let m = Metrics::default();
        let snap = m.snapshot(None, None);
        let text = m.prometheus(None, None);
        let Some(Value::Object(events)) = snap.get("precision").unwrap().get("events").cloned()
        else {
            panic!("precision.events is not an object");
        };
        for (cause, _) in &events {
            assert!(
                text.contains(&format!(
                    "panorama_precision_events_total{{cause=\"{cause}\"}}"
                )),
                "stats cause {cause} missing from Prometheus"
            );
        }
        let Some(Value::Object(reqs)) = snap.get("requests").cloned() else {
            panic!("requests is not an object");
        };
        for (outcome, _) in &reqs {
            assert!(
                text.contains(&format!("panorama_requests_total{{outcome=\"{outcome}\"}}")),
                "stats outcome {outcome} missing from Prometheus"
            );
        }
    }

    #[test]
    fn linter_rejects_malformed_expositions() {
        // Sample without TYPE.
        assert!(lint_exposition("panorama_x_total 1\n").is_err());
        // TYPE without HELP.
        assert!(lint_exposition("# TYPE panorama_x_total counter\npanorama_x_total 1\n").is_err());
        // Bad metric type.
        assert!(lint_exposition("# HELP x h\n# TYPE x gouge\nx 1\n").is_err());
        // Unquoted label value.
        assert!(lint_exposition("# HELP x h\n# TYPE x counter\nx{a=b} 1\n").is_err());
        // Histogram whose buckets never reach +Inf.
        let no_inf = "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(lint_exposition(no_inf).is_err());
        // Histogram with non-monotone cumulative counts.
        let non_mono = "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n";
        assert!(lint_exposition(non_mono).is_err());
        // Histogram with decreasing bounds.
        let bad_bounds = "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\n";
        assert!(lint_exposition(bad_bounds).is_err());
        // A healthy minimal exposition passes.
        let good = "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n";
        lint_exposition(good).unwrap();
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1 << 20), 20);
        assert_eq!(Histogram::bucket_index((1 << 20) + 1), HIST_BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::default();
        for us in [1, 2, 3, 100, 5_000_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 5);
        let snap = h.snapshot();
        assert_eq!(snap.get("le_1").unwrap(), &Value::UInt(1));
        assert_eq!(snap.get("le_2").unwrap(), &Value::UInt(1));
        assert_eq!(snap.get("le_4").unwrap(), &Value::UInt(1));
        assert_eq!(snap.get("le_128").unwrap(), &Value::UInt(1));
        assert_eq!(snap.get("le_+Inf").unwrap(), &Value::UInt(1));
        assert_eq!(snap.get("sum").unwrap(), &Value::UInt(5_000_106));
        assert_eq!(snap.get("count").unwrap(), &Value::UInt(5));
        // Quantile bounds: p50 of {1,2,3,100,5M} lands in the le_4
        // bucket (cumulative 3 of 5), p95 in the overflow, reported as
        // the largest finite bound.
        assert_eq!(h.quantile_bound(0.5), 4);
        assert_eq!(h.quantile_bound(0.95), 1 << 20);
        assert_eq!(Histogram::default().quantile_bound(0.5), 0);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let m = Metrics::default();
        let times = PhaseTimes {
            dataflow: std::time::Duration::from_micros(300),
            ..PhaseTimes::default()
        };
        m.record_analysis(&times, 7, false);
        m.record_failure();
        let text = m.prometheus(
            Some(CacheCounters {
                hits: 3,
                misses: 1,
                entries: 2,
                evictions: 0,
            }),
            None,
        );
        assert!(text.contains("panorama_requests_total{outcome=\"completed\"} 1\n"));
        assert!(text.contains("panorama_requests_total{outcome=\"failed\"} 1\n"));
        assert!(text.contains("panorama_cache_hits_total 3\n"));
        assert!(text.contains("# TYPE panorama_phase_latency_microseconds histogram\n"));
        assert!(text.contains(
            "panorama_phase_latency_microseconds_bucket{phase=\"dataflow\",le=\"512\"} 1\n"
        ));
        assert!(text.contains(
            "panorama_phase_latency_microseconds_bucket{phase=\"dataflow\",le=\"+Inf\"} 1\n"
        ));
        assert!(text.contains("panorama_phase_latency_microseconds_sum{phase=\"dataflow\"} 300\n"));
        assert!(text.contains("panorama_phase_latency_microseconds_count{phase=\"dataflow\"} 1\n"));
        // Buckets are cumulative: every bucket at or above 512 µs
        // carries the observation.
        assert!(text.contains(
            "panorama_phase_latency_microseconds_bucket{phase=\"dataflow\",le=\"1024\"} 1\n"
        ));
        // No cache → no cache series.
        assert!(!m.prometheus(None, None).contains("panorama_cache_"));
        // The snapshot carries the same histograms.
        let snap = m.snapshot(None, None);
        let hist = snap
            .get("phase_histograms_us")
            .unwrap()
            .get("dataflow")
            .unwrap();
        assert_eq!(hist.get("count").unwrap(), &Value::UInt(1));
    }
}
