//! Daemon metrics: request counters, aggregate phase timings, queue
//! gauges and cache counters, snapshotted by the `{"cmd": "stats"}`
//! request and dumped at shutdown under `--metrics`.

use dataflow::CacheCounters;
use panorama::PhaseTimes;
use serde::Value;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shared, lock-free metric counters. One instance lives for the whole
/// daemon; workers update it as requests complete.
#[derive(Default)]
pub struct Metrics {
    /// Requests answered with `ok: true` (stats requests excluded).
    pub completed: AtomicU64,
    /// Requests answered with `ok: false`.
    pub failed: AtomicU64,
    /// Completed requests whose analysis ran out of budget and was
    /// widened to a conservative report (`degraded: true`).
    pub degraded: AtomicU64,
    /// Degraded requests whose budget reason was the wall-clock
    /// deadline (a subset of `degraded`).
    pub timeouts: AtomicU64,
    /// Worker panics contained by the per-job isolation barrier.
    pub panics: AtomicU64,
    /// Completed requests that also ran the race oracle.
    pub oracle_runs: AtomicU64,
    /// Requests currently queued or being analyzed.
    pub queue_depth: AtomicUsize,
    /// Highest queue depth observed.
    pub peak_queue_depth: AtomicUsize,
    /// Largest per-request peak transient GAR state (memory proxy).
    pub peak_state_size: AtomicUsize,
    /// Lints emitted by completed analyses, one counter per stable
    /// `panolint` code (index = position in [`panorama::LintCode::ALL`]).
    pub lints: [AtomicU64; 6],
    /// Aggregate per-phase analysis time, in microseconds.
    pub parse_micros: AtomicU64,
    /// Semantic analysis time.
    pub sema_micros: AtomicU64,
    /// HSG construction time.
    pub hsg_micros: AtomicU64,
    /// Conventional pre-filter time.
    pub conventional_micros: AtomicU64,
    /// Dataflow analysis + verdict time.
    pub dataflow_micros: AtomicU64,
}

impl Metrics {
    /// Records a request entering the queue.
    pub fn enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a request leaving the system (answered, either way).
    pub fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Folds one completed analysis into the aggregates.
    pub fn record_analysis(&self, times: &PhaseTimes, peak_state_size: usize, oracle: bool) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if oracle {
            self.oracle_runs.fetch_add(1, Ordering::Relaxed);
        }
        self.peak_state_size
            .fetch_max(peak_state_size, Ordering::Relaxed);
        let add = |counter: &AtomicU64, d: std::time::Duration| {
            counter.fetch_add(d.as_micros() as u64, Ordering::Relaxed);
        };
        add(&self.parse_micros, times.parse);
        add(&self.sema_micros, times.sema);
        add(&self.hsg_micros, times.hsg);
        add(&self.conventional_micros, times.conventional);
        add(&self.dataflow_micros, times.dataflow);
    }

    /// Records a failed request.
    pub fn record_failure(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a completed analysis's lints into the per-code counters.
    pub fn record_lints(&self, lints: &[panorama::Lint]) {
        for l in lints {
            if let Some(k) = panorama::LintCode::ALL.iter().position(|c| *c == l.code) {
                self.lints[k].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records a completed-but-degraded analysis.
    pub fn record_degraded(&self, reason: Option<panorama::DegradeReason>) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
        if reason == Some(panorama::DegradeReason::Deadline) {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a worker panic that was caught and turned into an
    /// `internal_panic` response (or a synthesized one at finish).
    pub fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// The stats snapshot as a JSON object (the `"stats"` payload of a
    /// `{"cmd": "stats"}` response).
    pub fn snapshot(&self, cache: Option<CacheCounters>) -> Value {
        let load = |c: &AtomicU64| Value::UInt(c.load(Ordering::Relaxed));
        let cache_obj = match cache {
            None => Value::Null,
            Some(c) => Value::Object(vec![
                ("hits".to_string(), Value::UInt(c.hits)),
                ("misses".to_string(), Value::UInt(c.misses)),
                ("entries".to_string(), Value::UInt(c.entries as u64)),
                ("evictions".to_string(), Value::UInt(c.evictions)),
                ("hit_ratio".to_string(), Value::Float(c.hit_ratio())),
            ]),
        };
        Value::Object(vec![
            (
                "requests".to_string(),
                Value::Object(vec![
                    ("completed".to_string(), load(&self.completed)),
                    ("failed".to_string(), load(&self.failed)),
                    ("degraded".to_string(), load(&self.degraded)),
                    ("timeouts".to_string(), load(&self.timeouts)),
                    ("panics".to_string(), load(&self.panics)),
                    ("oracle_runs".to_string(), load(&self.oracle_runs)),
                ]),
            ),
            (
                "lints".to_string(),
                Value::Object(
                    panorama::LintCode::ALL
                        .iter()
                        .enumerate()
                        .map(|(k, c)| (c.code().to_string(), load(&self.lints[k])))
                        .collect(),
                ),
            ),
            ("cache".to_string(), cache_obj),
            (
                "queue".to_string(),
                Value::Object(vec![
                    (
                        "depth".to_string(),
                        Value::UInt(self.queue_depth.load(Ordering::Relaxed) as u64),
                    ),
                    (
                        "peak_depth".to_string(),
                        Value::UInt(self.peak_queue_depth.load(Ordering::Relaxed) as u64),
                    ),
                ]),
            ),
            (
                "peak_state_size".to_string(),
                Value::UInt(self.peak_state_size.load(Ordering::Relaxed) as u64),
            ),
            (
                "phase_micros".to_string(),
                Value::Object(vec![
                    ("parse".to_string(), load(&self.parse_micros)),
                    ("sema".to_string(), load(&self.sema_micros)),
                    ("hsg".to_string(), load(&self.hsg_micros)),
                    ("conventional".to_string(), load(&self.conventional_micros)),
                    ("dataflow".to_string(), load(&self.dataflow_micros)),
                ]),
            ),
        ])
    }

    /// Renders the shutdown summary printed to stderr under `--metrics`.
    pub fn render(&self, cache: Option<CacheCounters>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "panoramad: {} completed, {} failed, {} oracle runs, peak queue {}\n",
            self.completed.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
            self.oracle_runs.load(Ordering::Relaxed),
            self.peak_queue_depth.load(Ordering::Relaxed),
        ));
        out.push_str(&format!(
            "panoramad: {} degraded ({} deadline timeouts), {} worker panics contained\n",
            self.degraded.load(Ordering::Relaxed),
            self.timeouts.load(Ordering::Relaxed),
            self.panics.load(Ordering::Relaxed),
        ));
        match cache {
            Some(c) => out.push_str(&format!(
                "panoramad: cache {} hits / {} misses ({:.0}% hit ratio), {} entries, {} evictions\n",
                c.hits,
                c.misses,
                100.0 * c.hit_ratio(),
                c.entries,
                c.evictions,
            )),
            None => out.push_str("panoramad: cache disabled\n"),
        }
        let lint_counts: Vec<String> = panorama::LintCode::ALL
            .iter()
            .enumerate()
            .map(|(k, c)| format!("{}={}", c.code(), self.lints[k].load(Ordering::Relaxed)))
            .collect();
        out.push_str(&format!("panoramad: lints {}\n", lint_counts.join(" ")));
        out.push_str(&format!(
            "panoramad: phase micros parse={} sema={} hsg={} conventional={} dataflow={}, peak state {} GAR units\n",
            self.parse_micros.load(Ordering::Relaxed),
            self.sema_micros.load(Ordering::Relaxed),
            self.hsg_micros.load(Ordering::Relaxed),
            self.conventional_micros.load(Ordering::Relaxed),
            self.dataflow_micros.load(Ordering::Relaxed),
            self.peak_state_size.load(Ordering::Relaxed),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_gauges_track_peak() {
        let m = Metrics::default();
        m.enqueued();
        m.enqueued();
        m.dequeued();
        m.enqueued();
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 2);
        assert_eq!(m.peak_queue_depth.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn snapshot_shape() {
        let m = Metrics::default();
        m.record_analysis(&PhaseTimes::default(), 42, true);
        m.record_failure();
        m.record_degraded(Some(panorama::DegradeReason::Deadline));
        m.record_degraded(Some(panorama::DegradeReason::FuelExhausted));
        m.record_panic();
        let s = m.snapshot(Some(CacheCounters {
            hits: 3,
            misses: 1,
            entries: 2,
            evictions: 0,
        }));
        assert_eq!(
            s.get("requests").unwrap().get("completed").unwrap(),
            &Value::UInt(1)
        );
        assert_eq!(
            s.get("requests").unwrap().get("failed").unwrap(),
            &Value::UInt(1)
        );
        assert_eq!(
            s.get("requests").unwrap().get("degraded").unwrap(),
            &Value::UInt(2)
        );
        assert_eq!(
            s.get("requests").unwrap().get("timeouts").unwrap(),
            &Value::UInt(1)
        );
        assert_eq!(
            s.get("requests").unwrap().get("panics").unwrap(),
            &Value::UInt(1)
        );
        assert_eq!(s.get("peak_state_size").unwrap(), &Value::UInt(42));
        assert_eq!(
            s.get("cache").unwrap().get("hits").unwrap(),
            &Value::UInt(3)
        );
        let m2 = Metrics::default();
        assert!(m2.snapshot(None).get("cache").unwrap().is_null());
        assert!(!m2.render(None).is_empty());
    }
}
