//! The daemon flight recorder (DESIGN.md §4j).
//!
//! Every analyze request leaves one bounded [`FlightRecord`] behind:
//! a digest of the source (never the source itself — requests can be
//! megabytes), the outcome, the precision-ledger events and the span
//! tree. The ring keeps the most recent [`DEFAULT_CAPACITY`] records,
//! so when a worker panics or a run degrades, the post-mortem shows
//! what the daemon was doing *leading up to* the fault, not just the
//! fault itself. The ring is dumped to the `--postmortem` file on an
//! `internal_panic` or degraded outcome and on `{"cmd": "dump"}`.

use serde::Value;
use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};
use trace::ledger::PrecisionEvent;

/// Records kept in the ring; older ones fall off the front.
pub const DEFAULT_CAPACITY: usize = 64;

/// One request's black-box entry.
#[derive(Clone, Debug)]
pub struct FlightRecord {
    /// Monotonic sequence number, assigned by the recorder.
    pub seq: u64,
    /// Client correlation id, echoed from the request.
    pub id: Value,
    /// FNV-64 hex digest of the source text.
    pub digest: String,
    /// Source length in bytes.
    pub source_bytes: u64,
    /// `ok`, `degraded`, `timeout`, `failed` or `internal_panic`.
    pub outcome: String,
    /// The budget reason behind a `degraded`/`timeout` outcome.
    pub degrade_reason: Option<String>,
    /// The error or panic message of a `failed`/`internal_panic` one.
    pub error: Option<String>,
    /// Precision-ledger events recorded while the request ran.
    pub events: Vec<PrecisionEvent>,
    /// Ledger events dropped past its hard cap.
    pub events_dropped: u64,
    /// The request's span tree (`{"spans": [...]}`, DESIGN.md §4f).
    pub spans: Value,
}

impl FlightRecord {
    fn json(&self) -> Value {
        Value::Object(vec![
            ("seq".to_string(), Value::UInt(self.seq)),
            ("id".to_string(), self.id.clone()),
            ("digest".to_string(), Value::Str(self.digest.clone())),
            ("source_bytes".to_string(), Value::UInt(self.source_bytes)),
            ("outcome".to_string(), Value::Str(self.outcome.clone())),
            (
                "degrade_reason".to_string(),
                self.degrade_reason
                    .as_ref()
                    .map_or(Value::Null, |r| Value::Str(r.clone())),
            ),
            (
                "error".to_string(),
                self.error
                    .as_ref()
                    .map_or(Value::Null, |e| Value::Str(e.clone())),
            ),
            (
                "precision_events".to_string(),
                Value::Array(
                    self.events
                        .iter()
                        .map(|e| {
                            Value::Object(vec![
                                (
                                    "cause".to_string(),
                                    Value::Str(e.cause.as_str().to_string()),
                                ),
                                ("routine".to_string(), Value::Str(e.routine.clone())),
                                ("var".to_string(), Value::Str(e.var.clone())),
                                ("line".to_string(), Value::UInt(u64::from(e.line))),
                                ("detail".to_string(), Value::Str(e.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "precision_events_dropped".to_string(),
                Value::UInt(self.events_dropped),
            ),
            ("spans".to_string(), self.spans.clone()),
        ])
    }
}

struct Inner {
    records: VecDeque<FlightRecord>,
    next_seq: u64,
    total: u64,
}

/// The bounded ring of recent [`FlightRecord`]s. Shared by every worker
/// through one mutex; the critical sections are short (push/pop and
/// serialization), and requests touch it once each.
pub struct FlightRecorder {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the `capacity` most recent records.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Mutex::new(Inner {
                records: VecDeque::new(),
                next_seq: 0,
                total: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the lock cannot corrupt the ring (the
        // push below is not panic-prone past allocation); recording
        // must keep working after a contained worker panic.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one record (its `seq` field is assigned here), evicting
    /// the oldest past capacity.
    pub fn record(&self, mut rec: FlightRecord) {
        let mut inner = self.lock();
        rec.seq = inner.next_seq;
        inner.next_seq += 1;
        inner.total += 1;
        inner.records.push_back(rec);
        while inner.records.len() > self.capacity {
            inner.records.pop_front();
        }
    }

    /// Records currently in the ring.
    pub fn len(&self) -> usize {
        self.lock().records.len()
    }

    /// Whether nothing has been recorded (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The post-mortem dump: ring capacity, lifetime record count and
    /// the retained records oldest-first.
    pub fn dump(&self) -> Value {
        let inner = self.lock();
        Value::Object(vec![
            ("capacity".to_string(), Value::UInt(self.capacity as u64)),
            ("recorded_total".to_string(), Value::UInt(inner.total)),
            (
                "records".to_string(),
                Value::Array(inner.records.iter().map(FlightRecord::json).collect()),
            ),
        ])
    }

    /// Serializes [`FlightRecorder::dump`] to `path`. Used for the
    /// `--postmortem` file; callers treat failures as diagnostics, not
    /// request errors.
    pub fn dump_to_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        let dump = self.dump();
        let text = serde_json::to_string_pretty(&dump)
            .map_err(|e| std::io::Error::other(format!("serialize flight dump: {e}")))?;
        std::fs::write(path, text + "\n")
    }
}

/// FNV-1a 64-bit, rendered as 16 hex digits — a stable, dependency-free
/// request digest for correlating flight records with client logs.
pub fn source_digest(source: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in source.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::ledger::Cause;

    fn rec(outcome: &str) -> FlightRecord {
        FlightRecord {
            seq: 0,
            id: Value::Int(1),
            digest: source_digest("      END\n"),
            source_bytes: 10,
            outcome: outcome.to_string(),
            degrade_reason: None,
            error: None,
            events: vec![PrecisionEvent {
                cause: Cause::FuelWiden,
                routine: "t".to_string(),
                var: "i".to_string(),
                line: 4,
                detail: "segment widened".to_string(),
            }],
            events_dropped: 0,
            spans: Value::Null,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let fr = FlightRecorder::new(3);
        for _ in 0..5 {
            fr.record(rec("ok"));
        }
        assert_eq!(fr.len(), 3);
        let dump = fr.dump();
        assert_eq!(dump.get("recorded_total").unwrap().as_u64(), Some(5));
        let Some(Value::Array(records)) = dump.get("records").cloned() else {
            panic!("records is not an array");
        };
        let seqs: Vec<u64> = records
            .iter()
            .map(|r| r.get("seq").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest records must fall off");
    }

    #[test]
    fn dump_round_trips_through_json() {
        let fr = FlightRecorder::new(8);
        fr.record(rec("internal_panic"));
        let text = serde_json::to_string(&fr.dump()).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        let record = &back.get("records").unwrap().as_array().unwrap()[0];
        assert_eq!(
            record.get("outcome").unwrap().as_str(),
            Some("internal_panic")
        );
        let ev = &record.get("precision_events").unwrap().as_array().unwrap()[0];
        assert_eq!(ev.get("cause").unwrap().as_str(), Some("fuel_widen"));
        assert_eq!(ev.get("line").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn digest_is_stable_fnv1a() {
        // FNV-1a reference vectors.
        assert_eq!(source_digest(""), "cbf29ce484222325");
        assert_eq!(source_digest("a"), "af63dc4c8601ec8c");
        assert_ne!(source_digest("x"), source_digest("y"));
    }
}
